"""E2 -- Scalability: delivery ratio and per-packet cost vs. network size.

HVDB vs. flooding vs. SGM on 60 / 120 / 200 nodes (constant density: the
area grows with the node count).  The claim being probed: backbone-based
multicast keeps its delivery ratio as the network grows while its
data-plane cost per packet stays far below flooding's O(N).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

NODE_COUNTS = [60, 120, 200]
PROTOCOLS = ["hvdb", "flooding", "sgm"]
DENSITY_AREA_PER_NODE = 150.0 * 150.0     # m^2 per node (constant density)
DURATION = 90.0


def config_for(protocol: str, n_nodes: int, seed: int = 7) -> ScenarioConfig:
    area = math.sqrt(n_nodes * DENSITY_AREA_PER_NODE)
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        area_size=area,
        radio_range=250.0,
        max_speed=4.0,
        group_size=max(8, n_nodes // 10),
        traffic_interval=1.0,
        traffic_start=30.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        seed=seed,
    )


def run_e2() -> List[Dict]:
    rows: List[Dict] = []
    for n_nodes in NODE_COUNTS:
        for protocol in PROTOCOLS:
            result = run_scenario(config_for(protocol, n_nodes), duration=DURATION)
            delivery = result.report.delivery
            overhead = result.report.overhead
            rows.append(
                {
                    "nodes": n_nodes,
                    "protocol": protocol,
                    "pdr": round(delivery.delivery_ratio, 3),
                    "delay_ms": round(delivery.mean_delay * 1000, 1),
                    "data_tx_per_pkt": round(
                        overhead.data_packets / max(1, delivery.packets_originated), 1
                    ),
                    "ctrl_tx": overhead.control_packets,
                    "tx_per_delivery": round(overhead.transmissions_per_delivered, 1),
                }
            )
    return rows


def test_e2_scalability_pdr(benchmark):
    rows = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    print_table(rows, "E2: delivery ratio and cost vs. network size (constant density)")
    by_key = {(r["nodes"], r["protocol"]): r for r in rows}
    for n_nodes in NODE_COUNTS:
        hvdb = by_key[(n_nodes, "hvdb")]
        flood = by_key[(n_nodes, "flooding")]
        # flooding's data cost per packet grows like N; HVDB stays well below it
        assert flood["data_tx_per_pkt"] > 0.7 * n_nodes
        assert hvdb["data_tx_per_pkt"] < 0.6 * flood["data_tx_per_pkt"]
        # HVDB still delivers the majority of packets at every size
        assert hvdb["pdr"] > 0.55


if __name__ == "__main__":
    print_table(run_e2(), "E2: delivery ratio and cost vs. network size (constant density)")
