"""E2 -- Scalability: delivery ratio and per-packet cost vs. network size.

HVDB vs. flooding vs. SGM on 60 / 120 / 200 nodes (constant density: the
area grows with the node count).  The claim being probed: backbone-based
multicast keeps its delivery ratio as the network grows while its
data-plane cost per packet stays far below flooding's O(N).

The scenario grid is the registered sweep ``e2_scalability`` (see
``repro.experiments.specs``); this file only derives the report columns.
"""

from __future__ import annotations

from typing import Dict, List

from common import print_table, run_spec

NODE_COUNTS = [60, 120, 200]


def run_e2() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e2_scalability"):
        metrics = result.metrics
        rows.append(
            {
                "nodes": result.params["n_nodes"],
                "protocol": result.params["protocol"],
                "pdr": round(metrics["pdr"], 3),
                "delay_ms": round(metrics["mean_delay"] * 1000, 1),
                "data_tx_per_pkt": round(
                    metrics["data_pkts"] / max(1, metrics["packets_originated"]), 1
                ),
                "ctrl_tx": metrics["ctrl_pkts"],
                "tx_per_delivery": round(metrics["tx_per_delivery"], 1),
            }
        )
    return rows


def test_e2_scalability_pdr(benchmark):
    rows = benchmark.pedantic(run_e2, rounds=1, iterations=1)
    print_table(rows, "E2: delivery ratio and cost vs. network size (constant density)")
    by_key = {(r["nodes"], r["protocol"]): r for r in rows}
    for n_nodes in NODE_COUNTS:
        hvdb = by_key[(n_nodes, "hvdb")]
        flood = by_key[(n_nodes, "flooding")]
        # flooding's data cost per packet grows like N; HVDB stays well below it
        assert flood["data_tx_per_pkt"] > 0.7 * n_nodes
        assert hvdb["data_tx_per_pkt"] < 0.6 * flood["data_tx_per_pkt"]
        # HVDB still delivers the majority of packets at every size
        assert hvdb["pdr"] > 0.55


if __name__ == "__main__":
    print_table(run_e2(), "E2: delivery ratio and cost vs. network size (constant density)")
