"""A1 -- Ablation: hypercube dimension k.

The paper suggests small dimensions ("e.g., 3, 4, 5, or 6").  Larger k
means fewer, larger hypercubes (a shallower mesh tier but longer
hypercube-tier routes and bigger per-cube summary fan-out); smaller k means
more mesh nodes.  The ablation keeps the physical network fixed and varies
only the logical dimension.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

#: dimension -> VC grid that tiles into whole blocks of that dimension
GRIDS = {2: (8, 8), 3: (8, 8), 4: (8, 8), 6: (8, 8)}
DURATION = 90.0


def config_for(dimension: int) -> ScenarioConfig:
    cols, rows = GRIDS[dimension]
    return ScenarioConfig(
        protocol="hvdb",
        n_nodes=110,
        area_size=1500.0,
        radio_range=250.0,
        max_speed=3.0,
        group_size=12,
        traffic_interval=1.0,
        traffic_start=30.0,
        vc_cols=cols,
        vc_rows=rows,
        dimension=dimension,
        seed=47,
    )


def run_a1() -> List[Dict]:
    rows: List[Dict] = []
    for dimension in sorted(GRIDS):
        result = run_scenario(config_for(dimension), duration=DURATION)
        stack = result.scenario.stack
        summary = stack.model.backbone_summary()
        delivery = result.report.delivery
        stats = result.report.protocol_stats
        rows.append(
            {
                "dimension_k": dimension,
                "hypercubes": int(summary["possible_hypercubes"]),
                "pdr": round(delivery.delivery_ratio, 3),
                "delay_ms": round(delivery.mean_delay * 1000, 1),
                "ctrl_pkts": result.report.overhead.control_packets,
                "mesh_forwards": stats["data_forwarded_mesh"],
                "cube_forwards": stats["data_forwarded_cube"],
            }
        )
    return rows


def test_a1_dimension_ablation(benchmark):
    rows = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    print_table(rows, "A1: hypercube dimension ablation (same physical network)")
    by_dim = {r["dimension_k"]: r for r in rows}
    # smaller dimension -> more hypercubes -> more mesh-tier forwarding
    assert by_dim[2]["hypercubes"] > by_dim[6]["hypercubes"]
    assert by_dim[2]["mesh_forwards"] >= by_dim[6]["mesh_forwards"]
    # all dimensions remain functional
    assert all(r["pdr"] > 0.4 for r in rows)


if __name__ == "__main__":
    print_table(run_a1(), "A1: hypercube dimension ablation")
