"""A1 -- Ablation: hypercube dimension k.

The paper suggests small dimensions ("e.g., 3, 4, 5, or 6").  Larger k
means fewer, larger hypercubes (a shallower mesh tier but longer
hypercube-tier routes and bigger per-cube summary fan-out); smaller k means
more mesh nodes.  The ablation keeps the physical network fixed and varies
only the logical dimension.

The scenario grid is the registered sweep ``a1_dimension``; the
``possible_hypercubes`` column comes from the sweep's collector (it needs
the live HVDB model, so it runs inside the worker -- see
``repro.experiments.specs``).
"""

from __future__ import annotations

from typing import Dict, List

from common import print_table, run_spec


def run_a1() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("a1_dimension"):
        metrics = result.metrics
        rows.append(
            {
                "dimension_k": result.params["hvdb.dimension"],
                "hypercubes": int(metrics["possible_hypercubes"]),
                "pdr": round(metrics["pdr"], 3),
                "delay_ms": round(metrics["mean_delay"] * 1000, 1),
                "ctrl_pkts": metrics["ctrl_pkts"],
                "mesh_forwards": metrics["data_forwarded_mesh"],
                "cube_forwards": metrics["data_forwarded_cube"],
            }
        )
    return rows


def test_a1_dimension_ablation(benchmark):
    rows = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    print_table(rows, "A1: hypercube dimension ablation (same physical network)")
    by_dim = {r["dimension_k"]: r for r in rows}
    # smaller dimension -> more hypercubes -> more mesh-tier forwarding
    assert by_dim[2]["hypercubes"] > by_dim[6]["hypercubes"]
    assert by_dim[2]["mesh_forwards"] >= by_dim[6]["mesh_forwards"]
    # all dimensions remain functional
    assert all(r["pdr"] > 0.4 for r in rows)


if __name__ == "__main__":
    print_table(run_a1(), "A1: hypercube dimension ablation")
