"""E4 -- Load balancing across the backbone.

"Due to the regularity and symmetry properties of hypercubes ... no single
node is more loaded than any other nodes, and no problem of bottlenecks
exists, which is likely to occur in tree-based architectures" (Section 5).

The experiment runs multi-source multicast traffic and reports the
distribution of forwarding load (Jain index, coefficient of variation,
peak-to-mean) over all nodes and over the backbone nodes, for HVDB and for
the tree-based baselines (SGM, DSM).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.baselines.dsm import DsmConfig
from repro.core.protocol import HVDBConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig
from repro.metrics.fairness import compute_load_balance

from common import print_table

DURATION = 100.0
PROTOCOLS = ["hvdb", "sgm", "dsm"]


def base_config(protocol: str) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=120,
        area_size=1500.0,
        radio_range=250.0,
        max_speed=3.0,
        n_groups=2,
        group_size=12,
        sources_per_group=3,       # multi-source traffic stresses hot spots
        traffic_interval=1.0,
        traffic_start=35.0,
        hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        dsm=DsmConfig(position_period=20.0),
        seed=19,
    )


def run_e4() -> List[Dict]:
    rows: List[Dict] = []
    for protocol in PROTOCOLS:
        result = run_scenario(base_config(protocol), duration=DURATION)
        overall = result.report.load_balance
        # "backbone" for the baselines = the nodes that actually forwarded data
        backbone_nodes = result.scenario.backbone_nodes()
        if backbone_nodes is None:
            backbone_nodes = [
                node_id
                for node_id, node in result.scenario.network.nodes.items()
                if node.stats.sent_data_packets > 0
            ]
        backbone = compute_load_balance(result.scenario.network, backbone_nodes)
        rows.append(
            {
                "protocol": protocol,
                "pdr": round(result.report.delivery.delivery_ratio, 3),
                "jain_all": round(overall.jain, 3),
                "cov_all": round(overall.cov, 2),
                "peak_to_mean_all": round(overall.peak_to_mean_ratio, 2),
                "jain_backbone": round(backbone.jain, 3),
                "peak_to_mean_backbone": round(backbone.peak_to_mean_ratio, 2),
                "max_load": overall.max_load,
            }
        )
    return rows


def test_e4_load_balance(benchmark):
    rows = benchmark.pedantic(run_e4, rounds=1, iterations=1)
    print_table(rows, "E4: forwarding-load distribution (higher Jain / lower peak-to-mean = better balanced)")
    by_protocol = {r["protocol"]: r for r in rows}
    hvdb = by_protocol["hvdb"]
    # the backbone must not degenerate into a single hotspot
    assert hvdb["jain_backbone"] > 0.4
    assert hvdb["peak_to_mean_backbone"] < 6.0
    # HVDB spreads forwarding at least as evenly as the tree-based baselines
    assert hvdb["jain_backbone"] >= min(
        by_protocol["sgm"]["jain_backbone"], by_protocol["dsm"]["jain_backbone"]
    ) - 0.05


if __name__ == "__main__":
    print_table(run_e4(), "E4: forwarding-load distribution")
