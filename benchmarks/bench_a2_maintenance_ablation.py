"""A2 -- Ablation: proactive-maintenance intensity.

Varies the route-beacon / summary periods (Figure 4 / Figure 5 timers) and
the local-route horizon ``k`` to expose the freshness-vs-overhead
trade-off: faster timers cost more control transmissions but track CH
churn better.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.protocol import HVDBParameters
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

DURATION = 90.0

VARIANTS = {
    "fast (1.5x rate)": HVDBParameters(
        local_membership_period=2.0,
        mnt_summary_period=4.0,
        ht_summary_period=8.0,
        route_beacon_period=2.0,
    ),
    "default": HVDBParameters(),
    "slow (0.5x rate)": HVDBParameters(
        local_membership_period=6.0,
        mnt_summary_period=12.0,
        ht_summary_period=24.0,
        route_beacon_period=6.0,
    ),
    "k=2 horizon": HVDBParameters(max_logical_hops=2),
    "k=6 horizon": HVDBParameters(max_logical_hops=6),
}


def config_for(params: HVDBParameters) -> ScenarioConfig:
    return ScenarioConfig(
        protocol="hvdb",
        n_nodes=100,
        area_size=1400.0,
        radio_range=250.0,
        max_speed=4.0,
        group_size=10,
        traffic_interval=1.0,
        traffic_start=30.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        hvdb_params=params,
        seed=53,
    )


def run_a2() -> List[Dict]:
    rows: List[Dict] = []
    for name, params in VARIANTS.items():
        result = run_scenario(config_for(params), duration=DURATION)
        delivery = result.report.delivery
        overhead = result.report.overhead
        rows.append(
            {
                "variant": name,
                "pdr": round(delivery.delivery_ratio, 3),
                "delay_ms": round(delivery.mean_delay * 1000, 1),
                "ctrl_pkts": overhead.control_packets,
                "ctrl_B_per_node_s": round(overhead.control_bytes_per_node_per_second, 1),
            }
        )
    return rows


def test_a2_maintenance_ablation(benchmark):
    rows = benchmark.pedantic(run_a2, rounds=1, iterations=1)
    print_table(rows, "A2: proactive-maintenance intensity ablation")
    by_name = {r["variant"]: r for r in rows}
    # faster timers cost strictly more control traffic than slower ones
    assert by_name["fast (1.5x rate)"]["ctrl_pkts"] > by_name["slow (0.5x rate)"]["ctrl_pkts"]
    # every variant still delivers
    assert all(r["pdr"] > 0.3 for r in rows)


if __name__ == "__main__":
    print_table(run_a2(), "A2: proactive-maintenance intensity ablation")
