"""A2 -- Ablation: proactive-maintenance intensity.

Varies the route-beacon / summary periods (Figure 4 / Figure 5 timers) and
the local-route horizon ``k`` to expose the freshness-vs-overhead
trade-off: faster timers cost more control transmissions but track CH
churn better.

The scenario grid is the registered sweep ``a2_maintenance``: a label
axis couples each variant name to its ``HVDBParameters`` so the swept
parameter stays a readable string -- see ``repro.experiments.specs``
(``A2_VARIANTS``).
"""

from __future__ import annotations

from typing import Dict, List

from common import print_table, run_spec


def run_a2() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("a2_maintenance"):
        metrics = result.metrics
        rows.append(
            {
                "variant": result.params["variant"],
                "pdr": round(metrics["pdr"], 3),
                "delay_ms": round(metrics["mean_delay"] * 1000, 1),
                "ctrl_pkts": metrics["ctrl_pkts"],
                "ctrl_B_per_node_s": round(metrics["ctrl_bytes_per_node_per_s"], 1),
            }
        )
    return rows


def test_a2_maintenance_ablation(benchmark):
    rows = benchmark.pedantic(run_a2, rounds=1, iterations=1)
    print_table(rows, "A2: proactive-maintenance intensity ablation")
    by_name = {r["variant"]: r for r in rows}
    # faster timers cost strictly more control traffic than slower ones
    assert by_name["fast (1.5x rate)"]["ctrl_pkts"] > by_name["slow (0.5x rate)"]["ctrl_pkts"]
    # every variant still delivers
    assert all(r["pdr"] > 0.3 for r in rows)


if __name__ == "__main__":
    print_table(run_a2(), "A2: proactive-maintenance intensity ablation")
