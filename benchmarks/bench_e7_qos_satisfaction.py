"""E7 -- QoS satisfaction vs. offered load.

Fraction of deliveries meeting a 250 ms end-to-end delay bound as the
number of concurrent CBR sessions grows.  Exercises the QoS machinery of
Section 2.3 / 4.1: per-route delay/bandwidth state and delay-bounded
delivery accounting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.qos import QoSRequirement, qos_satisfaction_ratio
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

SESSION_COUNTS = [1, 3, 6, 10]
DELAY_BOUND = QoSRequirement(max_delay=0.25)
DURATION = 90.0


def config_for(sessions: int) -> ScenarioConfig:
    return ScenarioConfig(
        protocol="hvdb",
        n_nodes=100,
        area_size=1400.0,
        radio_range=250.0,
        max_speed=3.0,
        n_groups=1,
        group_size=10,
        sources_per_group=sessions,
        traffic_interval=0.5,
        traffic_start=30.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        qos_requirements={1: DELAY_BOUND},
        seed=41,
    )


def run_e7() -> List[Dict]:
    rows: List[Dict] = []
    for sessions in SESSION_COUNTS:
        result = run_scenario(config_for(sessions), duration=DURATION)
        network = result.scenario.network
        delays = [d for record in network.deliveries.values() for d in record.delays()]
        delivery = result.report.delivery
        rows.append(
            {
                "sessions": sessions,
                "offered_pkts_per_s": round(sessions / 0.5, 1),
                "pdr": round(delivery.delivery_ratio, 3),
                "mean_delay_ms": round(delivery.mean_delay * 1000, 1),
                "p95_delay_ms": round(delivery.p95_delay * 1000, 1),
                "qos_satisfaction": round(qos_satisfaction_ratio(delays, DELAY_BOUND), 3),
                "qos_rejections": result.report.protocol_stats.get("qos_rejections", 0),
            }
        )
    return rows


def test_e7_qos_satisfaction(benchmark):
    rows = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    print_table(rows, "E7: QoS satisfaction (<=250 ms) vs. number of concurrent sessions")
    # light load satisfies the delay bound for nearly every delivery
    assert rows[0]["qos_satisfaction"] > 0.8
    # satisfaction does not increase as load grows (monotone-ish degradation)
    assert rows[-1]["qos_satisfaction"] <= rows[0]["qos_satisfaction"] + 0.05


if __name__ == "__main__":
    print_table(run_e7(), "E7: QoS satisfaction vs. offered load")
