"""E7 -- QoS satisfaction vs. offered load.

Fraction of deliveries meeting a 250 ms end-to-end delay bound as the
number of concurrent CBR sessions grows.  Exercises the QoS machinery of
Section 2.3 / 4.1: per-route delay/bandwidth state and delay-bounded
delivery accounting.

The scenario grid is the registered sweep ``e7_qos_load``; the
``qos_satisfaction`` column comes from the sweep's registered collector
(which needs the live scenario's delivery ledger, so it runs inside the
worker -- see ``repro.experiments.specs``).
"""

from __future__ import annotations

from typing import Dict, List

from common import print_table, run_spec


def run_e7() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e7_qos_load"):
        metrics = result.metrics
        sessions = result.params["sources_per_group"]
        rows.append(
            {
                "sessions": sessions,
                "offered_pkts_per_s": round(sessions / 0.5, 1),
                "pdr": round(metrics["pdr"], 3),
                "mean_delay_ms": round(metrics["mean_delay"] * 1000, 1),
                "p95_delay_ms": round(metrics["p95_delay"] * 1000, 1),
                "qos_satisfaction": round(metrics["qos_satisfaction"], 3),
                "qos_rejections": metrics.get("qos_rejections", 0),
            }
        )
    return rows


def test_e7_qos_satisfaction(benchmark):
    rows = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    print_table(rows, "E7: QoS satisfaction (<=250 ms) vs. number of concurrent sessions")
    # light load satisfies the delay bound for nearly every delivery
    assert rows[0]["qos_satisfaction"] > 0.8
    # satisfaction does not increase as load grows (monotone-ish degradation)
    assert rows[-1]["qos_satisfaction"] <= rows[0]["qos_satisfaction"] + 0.05


if __name__ == "__main__":
    print_table(run_e7(), "E7: QoS satisfaction vs. offered load")
