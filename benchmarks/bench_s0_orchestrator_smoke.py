"""S0 -- Orchestrator smoke benchmark.

Runs the registered ``smoke`` sweep (a tiny 2-axis grid x 3 seeds over
the flooding baseline) through the full parallel path -- grid expansion,
multiprocessing workers, disk cache, CSV/JSON export -- and times it.
This is the `make bench-smoke` target: a seconds-long end-to-end check
that the experiment substrate itself works, as opposed to the E*/A*/F*
benchmarks which regenerate the paper's figures in minutes.
"""

from __future__ import annotations

import os
import tempfile
from typing import List

from repro.experiments.orchestrator import (
    RunResult,
    export_csv,
    export_json,
    load_csv,
    load_json,
    run_sweep,
)
from repro.experiments.specs import get_spec

from common import print_table

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", os.cpu_count() or 1)) or 1


def run_s0(cache_dir: str) -> List[RunResult]:
    return run_sweep(get_spec("smoke"), workers=max(2, WORKERS), cache_dir=cache_dir)


def test_s0_orchestrator_smoke(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        results = benchmark.pedantic(run_s0, args=(cache_dir,), rounds=1, iterations=1)
        spec = get_spec("smoke")
        assert len(results) == spec.run_count
        assert all(r.metrics["packets_originated"] > 0 for r in results)

        # a second pass is served entirely from the cache
        again = run_sweep(spec, workers=2, cache_dir=cache_dir)
        assert all(r.from_cache for r in again)
        assert [r.metrics for r in again] == [r.metrics for r in results]

        # artifacts round-trip
        csv_path = os.path.join(tmp, "smoke.csv")
        json_path = os.path.join(tmp, "smoke.json")
        export_csv(results, csv_path)
        export_json(results, json_path, spec=spec)
        assert len(load_csv(csv_path)) == spec.run_count
        assert [r.metrics for r in load_json(json_path)] == [r.metrics for r in results]

    print_table(
        [r.row() for r in results[:6]],
        f"S0: orchestrator smoke sweep ({spec.run_count} runs, {max(2, WORKERS)} workers)",
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        rows = [r.row() for r in run_s0(os.path.join(tmp, "cache"))]
    print_table(rows, "S0: orchestrator smoke sweep")
