"""E1 -- Hypercube structural properties (basis of the availability claim).

Regenerates, for dimensions 3-6 and increasing node-failure fractions:

* the number of node-disjoint paths between antipodal nodes,
* the diameter of the (damaged) hypercube,
* the fraction of node pairs that remain connected.

Paper claims being checked (Section 2.1): an n-cube offers n node-disjoint
paths and survives up to n-1 failures; its diameter is n.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.hypercube.paths import node_disjoint_paths
from repro.hypercube.topology import Hypercube, IncompleteHypercube

from common import print_table

DIMENSIONS = [3, 4, 5, 6]
FAILURE_FRACTIONS = [0.0, 0.125, 0.25, 0.375, 0.5]
TRIALS = 5


def run_e1(seed: int = 1) -> List[Dict]:
    rng = random.Random(seed)
    rows: List[Dict] = []
    for dimension in DIMENSIONS:
        size = 1 << dimension
        complete = Hypercube(dimension)
        baseline_paths = len(node_disjoint_paths(complete, 0, size - 1))
        for fraction in FAILURE_FRACTIONS:
            failures = int(round(fraction * size))
            surviving_paths = 0.0
            diameters = 0.0
            connected_pairs = 0.0
            for _ in range(TRIALS):
                cube = IncompleteHypercube(dimension)
                # never remove the pair we measure between
                candidates = [lab for lab in range(size) if lab not in (0, size - 1)]
                for victim in rng.sample(candidates, min(failures, len(candidates))):
                    cube.remove_node(victim)
                surviving_paths += len(node_disjoint_paths(cube, 0, size - 1))
                diameters += cube.diameter()
                nodes = list(cube.nodes())
                pairs = 0
                reachable_pairs = 0
                for i, a in enumerate(nodes):
                    reach = cube.reachable_from(a)
                    for b in nodes[i + 1:]:
                        pairs += 1
                        if b in reach:
                            reachable_pairs += 1
                connected_pairs += (reachable_pairs / pairs) if pairs else 1.0
            rows.append(
                {
                    "dimension": dimension,
                    "failed_nodes_%": round(fraction * 100),
                    "disjoint_paths": round(surviving_paths / TRIALS, 1),
                    "paths_complete_cube": baseline_paths,
                    "diameter": round(diameters / TRIALS, 1),
                    "connected_pairs_%": round(100.0 * connected_pairs / TRIALS, 1),
                }
            )
    return rows


def test_e1_hypercube_properties(benchmark):
    rows = benchmark.pedantic(run_e1, rounds=1, iterations=1)
    # the headline claims: n disjoint paths and diameter n with no failures
    for dimension in DIMENSIONS:
        intact = next(r for r in rows if r["dimension"] == dimension and r["failed_nodes_%"] == 0)
        assert intact["disjoint_paths"] == dimension
        assert intact["diameter"] == dimension
        assert intact["connected_pairs_%"] == 100.0
    print_table(rows, "E1: hypercube fault tolerance, diameter and connectivity under node failures")


if __name__ == "__main__":
    print_table(run_e1(), "E1: hypercube fault tolerance, diameter and connectivity under node failures")
