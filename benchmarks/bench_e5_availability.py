"""E5 -- Availability under cluster-head failures.

"If the current logical route is broken, multiple candidate logical routes
become available immediately to sustain the service without QoS being
degraded" (Section 5).  The experiment destroys an increasing fraction of
the cluster heads halfway through a session and reports delivery before /
during / after the failure, the availability ratio and the recovery time,
for HVDB and for flooding (the resilience upper bound).

The scenario grid is the registered sweep ``e5_availability``: the
mid-run failure is a registered ``during_run`` hook swept as a grid axis,
and the before/during/after windows come from the sweep's collector
(which needs the live delivery ledger, so it runs inside the worker --
see ``repro.experiments.specs``).
"""

from __future__ import annotations

from typing import Dict, List

from common import hook_suffix, print_table, run_spec


def run_e5() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e5_availability"):
        metrics = result.metrics
        rows.append(
            {
                "protocol": result.params["protocol"],
                "failed_CH_%": int(hook_suffix(result.params["during_run"])),
                "pdr_before": round(metrics["pdr_before"], 3),
                "pdr_during": round(metrics["pdr_during"], 3),
                "pdr_after": round(metrics["pdr_after"], 3),
                "availability": round(metrics["availability"], 3),
                "recovery_s": (
                    round(metrics["recovery_s"], 1) if metrics["recovered"] else "never"
                ),
                "failovers": metrics.get("failovers", 0),
            }
        )
    return rows


def test_e5_availability(benchmark):
    rows = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    print_table(rows, "E5: availability under cluster-head failures (failure injected at t=60s)")
    hvdb_rows = [r for r in rows if r["protocol"] == "hvdb"]
    for row in hvdb_rows:
        # the session survives: traffic keeps being delivered during the failure
        assert row["pdr_during"] > 0.3
        # and recovers after clustering re-elects heads
        assert row["pdr_after"] > 0.5 * row["pdr_before"]


if __name__ == "__main__":
    print_table(run_e5(), "E5: availability under cluster-head failures")
