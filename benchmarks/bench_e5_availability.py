"""E5 -- Availability under cluster-head failures.

"If the current logical route is broken, multiple candidate logical routes
become available immediately to sustain the service without QoS being
degraded" (Section 5).  The experiment destroys an increasing fraction of
the cluster heads halfway through a session and reports delivery before /
during / after the failure, the availability ratio and the recovery time,
for HVDB and for flooding (the resilience upper bound).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig
from repro.metrics.availability import compute_availability

from common import print_table

DURATION = 120.0
FAIL_FRACTIONS = [0.1, 0.2, 0.4]
PROTOCOLS = ["hvdb", "flooding"]


def base_config(protocol: str) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=110,
        area_size=1500.0,
        radio_range=270.0,
        max_speed=2.0,
        group_size=12,
        traffic_interval=0.5,
        traffic_start=25.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        seed=29,
    )


def make_failure_hook(fraction: float):
    def hook(scenario):
        if scenario.stack is not None:
            pool = scenario.stack.model.cluster_heads()
        else:
            pool = sorted(scenario.network.nodes.keys())
        count = max(1, int(fraction * len(pool)))
        victims = pool[:: max(1, len(pool) // count)][:count]
        scenario.network.fail_nodes(victims)

    return hook


def run_e5() -> List[Dict]:
    rows: List[Dict] = []
    for protocol in PROTOCOLS:
        for fraction in FAIL_FRACTIONS:
            result = run_scenario(
                base_config(protocol),
                duration=DURATION,
                during_run=make_failure_hook(fraction),
            )
            availability = compute_availability(
                result.scenario.network,
                failure_time=DURATION / 2.0,
                failure_duration=20.0,
                window=10.0,
            )
            stats = result.report.protocol_stats
            rows.append(
                {
                    "protocol": protocol,
                    "failed_CH_%": round(fraction * 100),
                    "pdr_before": round(availability.pre_failure_ratio, 3),
                    "pdr_during": round(availability.during_failure_ratio, 3),
                    "pdr_after": round(availability.post_failure_ratio, 3),
                    "availability": round(availability.availability, 3),
                    "recovery_s": (
                        round(availability.recovery_time, 1)
                        if availability.recovery_time != float("inf")
                        else "never"
                    ),
                    "failovers": stats.get("failovers", 0),
                }
            )
    return rows


def test_e5_availability(benchmark):
    rows = benchmark.pedantic(run_e5, rounds=1, iterations=1)
    print_table(rows, "E5: availability under cluster-head failures (failure injected at t=60s)")
    hvdb_rows = [r for r in rows if r["protocol"] == "hvdb"]
    for row in hvdb_rows:
        # the session survives: traffic keeps being delivered during the failure
        assert row["pdr_during"] > 0.3
        # and recovers after clustering re-elects heads
        assert row["pdr_after"] > 0.5 * row["pdr_before"]


if __name__ == "__main__":
    print_table(run_e5(), "E5: availability under cluster-head failures")
