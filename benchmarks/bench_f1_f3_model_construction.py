"""F1-F3 -- The paper's structural figures as executable artefacts.

* Figure 1: the three-tier HVDB built from a clustered network
  (mobile-node tier -> hypercube tier -> mesh tier).
* Figure 2: the 8x8 virtual-circle grid partitioned into four
  4-dimensional logical hypercube regions.
* Figure 3: the HNID labelling of one 4-dimensional logical hypercube.

The benchmark times model construction from a 200-node clustered snapshot
and asserts the structural invariants the figures depict.
"""

from __future__ import annotations

from typing import Dict, List

from repro.clustering.service import ClusteringService
from repro.core.hvdb import HVDBModel
from repro.core.identifiers import LogicalAddressSpace
from repro.geo.area import Area
from repro.geo.grid import VirtualCircleGrid
from repro.hypercube.labels import label_to_bits
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.simulation.mac import IdealMac
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.radio import UnitDiskRadio

from common import print_table

N_NODES = 200


def build_clustered_network(seed: int = 3):
    area = Area(1000.0, 1000.0)
    ids = list(range(N_NODES))
    mobility = RandomWaypointMobility(area, ids, min_speed=1.0, max_speed=5.0, seed=seed)
    network = Network(
        NetworkConfig(area=area, radio=UnitDiskRadio(250.0), mac=IdealMac(), seed=seed), mobility
    )
    for node_id in ids:
        network.add_node(MobileNode(node_id))
    grid = VirtualCircleGrid(area, 8, 8)
    clustering = ClusteringService(network, grid)
    space = LogicalAddressSpace(grid, dimension=4)
    return network, clustering, space


def run_f1_f3() -> List[Dict]:
    network, clustering, space = build_clustered_network()
    model = HVDBModel(space, clustering.snapshot())
    summary = model.backbone_summary()
    rows = [
        {
            "figure": "F1 three tiers",
            "quantity": "mobile nodes / cluster heads / hypercubes / mesh nodes",
            "value": f"{N_NODES} / {int(summary['cluster_heads'])} / "
            f"{int(summary['actual_hypercubes'])} / {int(summary['mesh_nodes'])}",
        },
        {
            "figure": "F2 VC grid",
            "quantity": "virtual circles / VCs per hypercube region / regions",
            "value": f"{len(space.grid)} / {space.block_cols * space.block_rows} / "
            f"{space.hypercube_count()}",
        },
        {
            "figure": "F2 occupancy",
            "quantity": "occupied VC fraction (i.e. actual hypercube nodes)",
            "value": f"{summary['hypercube_occupancy']:.2f}",
        },
        {
            "figure": "F3 labelling",
            "quantity": "HNID of VC rows 0/2 of region 0 (paper layout)",
            "value": " ".join(label_to_bits(space.hnid_of((c, 0)), 4) for c in range(4))
            + " | "
            + " ".join(label_to_bits(space.hnid_of((c, 2)), 4) for c in range(4)),
        },
        {
            "figure": "F1 roles",
            "quantity": "border / inner cluster heads",
            "value": f"{int(summary['border_cluster_heads'])} / {int(summary['inner_cluster_heads'])}",
        },
    ]
    return rows


def test_f1_f3_model_construction(benchmark):
    def construct():
        network, clustering, space = build_clustered_network()
        return HVDBModel(space, clustering.snapshot())

    model = benchmark(construct)
    summary = model.backbone_summary()
    # Figure 1: all three tiers exist
    assert summary["cluster_heads"] > 0
    assert summary["actual_hypercubes"] > 0
    assert summary["mesh_nodes"] > 0
    # Figure 2: 8x8 VCs in four 4-D regions
    assert model.space.hypercube_count() == 4
    # Figure 3: the canonical label layout
    assert label_to_bits(model.space.hnid_of((2, 0)), 4) == "0100"
    assert label_to_bits(model.space.hnid_of((3, 2)), 4) == "1101"
    print_table(run_f1_f3(), "F1-F3: structural reproduction of the paper's figures")


if __name__ == "__main__":
    print_table(run_f1_f3(), "F1-F3: structural reproduction of the paper's figures")
