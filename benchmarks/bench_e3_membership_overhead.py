"""E3 -- Control overhead of the summary-based membership scheme.

Compares the control plane of HVDB (Local-Membership -> MNT-Summary ->
HT-Summary -> MT-Summary, confined to the cluster-head backbone) against
DSM (every node periodically floods its position network-wide) and SPBM
(every node announces membership up a square hierarchy), as a function of
network size and of the number of multicast groups.

Paper claim (Sections 2.2 / 4.2): summarising membership and disseminating
it "to only a portion of nodes in the network" scales better in both the
number of groups and the number of nodes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

DURATION = 80.0
NODE_COUNTS = [60, 120]
GROUP_COUNTS = [1, 4]
PROTOCOLS = ["hvdb", "spbm", "dsm"]


def config_for(protocol: str, n_nodes: int, n_groups: int) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        area_size=1500.0,
        radio_range=250.0,
        max_speed=3.0,
        n_groups=n_groups,
        group_size=8,
        traffic_interval=2.0,
        traffic_start=40.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        dsm_position_period=15.0,
        seed=13,
    )


def run_e3() -> List[Dict]:
    rows: List[Dict] = []
    for n_nodes in NODE_COUNTS:
        for n_groups in GROUP_COUNTS:
            for protocol in PROTOCOLS:
                result = run_scenario(config_for(protocol, n_nodes, n_groups), duration=DURATION)
                overhead = result.report.overhead
                rows.append(
                    {
                        "nodes": n_nodes,
                        "groups": n_groups,
                        "protocol": protocol,
                        "ctrl_pkts": overhead.control_packets,
                        "ctrl_B_per_node_s": round(overhead.control_bytes_per_node_per_second, 1),
                        "pdr": round(result.report.delivery.delivery_ratio, 3),
                    }
                )
    return rows


def test_e3_membership_overhead(benchmark):
    rows = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    print_table(rows, "E3: membership/control overhead vs. network size and group count")
    by_key = {(r["nodes"], r["groups"], r["protocol"]): r for r in rows}
    # DSM's per-node control load grows with N (every node floods to every node);
    # HVDB's per-node control load grows much more slowly.
    dsm_growth = (
        by_key[(120, 1, "dsm")]["ctrl_B_per_node_s"]
        / max(1e-9, by_key[(60, 1, "dsm")]["ctrl_B_per_node_s"])
    )
    hvdb_growth = (
        by_key[(120, 1, "hvdb")]["ctrl_B_per_node_s"]
        / max(1e-9, by_key[(60, 1, "hvdb")]["ctrl_B_per_node_s"])
    )
    assert dsm_growth > hvdb_growth
    # adding groups barely changes HVDB's overhead (summaries are aggregated)
    hvdb_group_growth = (
        by_key[(120, 4, "hvdb")]["ctrl_pkts"] / max(1, by_key[(120, 1, "hvdb")]["ctrl_pkts"])
    )
    assert hvdb_group_growth < 2.0


if __name__ == "__main__":
    print_table(run_e3(), "E3: membership/control overhead vs. network size and group count")
