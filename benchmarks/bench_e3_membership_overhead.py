"""E3 -- Control overhead of the summary-based membership scheme.

Compares the control plane of HVDB (Local-Membership -> MNT-Summary ->
HT-Summary -> MT-Summary, confined to the cluster-head backbone) against
DSM (every node periodically floods its position network-wide) and SPBM
(every node announces membership up a square hierarchy), as a function of
network size and of the number of multicast groups.

Paper claim (Sections 2.2 / 4.2): summarising membership and disseminating
it "to only a portion of nodes in the network" scales better in both the
number of groups and the number of nodes.

The scenario grid is the registered sweep ``e3_membership_overhead`` (see
``repro.experiments.specs``); this file only derives the report columns.
"""

from __future__ import annotations

from typing import Dict, List

from common import print_table, run_spec


def run_e3() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e3_membership_overhead"):
        metrics = result.metrics
        rows.append(
            {
                "nodes": result.params["n_nodes"],
                "groups": result.params["n_groups"],
                "protocol": result.params["protocol"],
                "ctrl_pkts": metrics["ctrl_pkts"],
                "ctrl_B_per_node_s": round(metrics["ctrl_bytes_per_node_per_s"], 1),
                "pdr": round(metrics["pdr"], 3),
            }
        )
    return rows


def test_e3_membership_overhead(benchmark):
    rows = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    print_table(rows, "E3: membership/control overhead vs. network size and group count")
    by_key = {(r["nodes"], r["groups"], r["protocol"]): r for r in rows}
    # DSM's per-node control load grows with N (every node floods to every node);
    # HVDB's per-node control load grows much more slowly.
    dsm_growth = (
        by_key[(120, 1, "dsm")]["ctrl_B_per_node_s"]
        / max(1e-9, by_key[(60, 1, "dsm")]["ctrl_B_per_node_s"])
    )
    hvdb_growth = (
        by_key[(120, 1, "hvdb")]["ctrl_B_per_node_s"]
        / max(1e-9, by_key[(60, 1, "hvdb")]["ctrl_B_per_node_s"])
    )
    assert dsm_growth > hvdb_growth
    # adding groups barely changes HVDB's overhead (summaries are aggregated)
    hvdb_group_growth = (
        by_key[(120, 4, "hvdb")]["ctrl_pkts"] / max(1, by_key[(120, 1, "hvdb")]["ctrl_pkts"])
    )
    assert hvdb_group_growth < 2.0


if __name__ == "__main__":
    print_table(run_e3(), "E3: membership/control overhead vs. network size and group count")
