"""Shared helpers for the benchmark / experiment-regeneration suite.

Every benchmark file exposes a ``run_*`` function that regenerates the rows
of one experiment from DESIGN.md (E1-E8, A1-A2, F1-F6) and a pytest
benchmark that times it.  Running a file directly (``python
benchmarks/bench_e2_scalability_pdr.py``) prints the regenerated table,
which is how the figures in EXPERIMENTS.md were produced.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.metrics.collectors import format_table

#: Durations / sizes are chosen so the full suite finishes in a few minutes
#: on a laptop while preserving the qualitative shape of each result.
DEFAULT_DURATION = 90.0


def print_table(rows: Iterable[Dict], title: str) -> str:
    table = format_table(list(rows), title=title)
    print()
    print(table)
    return table


def pct(value: float) -> float:
    """Round a ratio to a percentage with one decimal."""
    return round(value * 100.0, 1)
