"""Shared helpers for the benchmark / experiment-regeneration suite.

Every benchmark file exposes a ``run_*`` function that regenerates the
rows of one experiment (E1-E8, A1-A2, F1-F6) and a pytest benchmark that
times it.  Running a file directly (``python
benchmarks/bench_e2_scalability_pdr.py``) prints the regenerated table.

The scenario-grid benchmarks are thin: their grids live in
:mod:`repro.experiments.specs` and execution goes through the parallel
orchestrator via :func:`run_spec`.  Environment knobs:

* ``REPRO_BENCH_WORKERS`` -- worker processes (default: CPU count);
* ``REPRO_BENCH_CACHE`` -- cache directory; unset runs uncached so
  benchmark timings stay honest;
* ``REPRO_BENCH_PROGRESS=1`` -- per-run progress lines on stderr.

To split a grid across CI jobs, prime the cache through the CLI
(``python -m repro.experiments run NAME --shard i/n --cache-dir DIR``,
then ``merge``) and run the benchmark with ``REPRO_BENCH_CACHE=DIR`` --
the benchmark assertions need the *full* grid, so sharding never happens
inside ``run_spec`` itself.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional

from repro.experiments.orchestrator import RunResult, run_sweep
from repro.experiments.specs import get_spec
from repro.metrics.collectors import format_table

#: Durations / sizes are chosen so the full suite finishes in a few minutes
#: on a laptop while preserving the qualitative shape of each result.
DEFAULT_DURATION = 90.0


def print_table(rows: Iterable[Dict], title: str) -> str:
    table = format_table(list(rows), title=title)
    print()
    print(table)
    return table


def pct(value: float) -> float:
    """Round a ratio to a percentage with one decimal."""
    return round(value * 100.0, 1)


def hook_suffix(name: str) -> float:
    """Numeric suffix of a registered hook name.

    The converted grids sweep hooks by name (``fail_cluster_heads_20``,
    ``group_churn_0.05``); the benchmark tables recover the swept number
    from the name's last ``_``-separated component.
    """
    return float(name.rsplit("_", 1)[1])


def run_spec(name: str) -> List[RunResult]:
    """Execute the registered sweep ``name`` through the orchestrator."""
    return run_sweep(
        get_spec(name),
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", os.cpu_count() or 1)),
        cache_dir=os.environ.get("REPRO_BENCH_CACHE") or None,
        progress=os.environ.get("REPRO_BENCH_PROGRESS", "") not in ("", "0"),
    )
