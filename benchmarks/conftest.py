"""Benchmark-suite configuration.

Makes the benchmarks runnable from a source checkout without installation
and keeps pytest-benchmark output compact.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if _ROOT not in sys.path:  # pragma: no cover
    sys.path.insert(0, _ROOT)
