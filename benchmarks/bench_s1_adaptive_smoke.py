"""S1 -- Adaptive-replication smoke benchmark.

Runs the registered ``smoke_adaptive`` sweep (the tiny flooding grid
under an ``AdaptiveCI`` policy with a loose target) through the full
sequential-sampling path -- per-point seed rounds, worker pool, disk
cache, convergence report -- and times it.  Asserts the properties the
adaptive loop is sold on: converged points meet the CI target with no
more than ``max_seeds`` replications, the whole run costs no more than
the fixed ``max_seeds`` grid, and a second pass against the warm cache
executes nothing.
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments.orchestrator import AdaptiveResult, run_sweep_adaptive
from repro.experiments.specs import get_spec

from common import print_table

WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", os.cpu_count() or 1)) or 1


def run_s1(cache_dir: str) -> AdaptiveResult:
    return run_sweep_adaptive(
        get_spec("smoke_adaptive"), workers=max(2, WORKERS), cache_dir=cache_dir
    )


def _check(report: AdaptiveResult) -> None:
    policy = get_spec("smoke_adaptive").replication
    assert report.points, "adaptive smoke expanded to zero grid points"
    for point in report.points:
        assert policy.min_seeds <= point.n_seeds <= policy.max_seeds
        if point.status == "converged":
            assert point.half_width <= policy.target_half_width
        else:
            assert point.status == "unconverged"
            assert point.n_seeds == policy.max_seeds
    assert len(report.results) <= report.fixed_equivalent_runs


def test_s1_adaptive_smoke(benchmark):
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        report = benchmark.pedantic(run_s1, args=(cache_dir,), rounds=1, iterations=1)
        _check(report)

        # stopping decisions are a pure function of the cache: a second
        # pass reconstructs the identical run set with zero executions
        again = run_sweep_adaptive(
            get_spec("smoke_adaptive"), workers=2, cache_dir=cache_dir
        )
        assert again.executed == 0
        assert [r.run_id for r in again.results] == [r.run_id for r in report.results]
        assert [p.to_dict() for p in again.points] == [p.to_dict() for p in report.points]

    print_table(
        [p.to_dict() for p in report.points],
        f"S1: adaptive smoke ({len(report.results)} runs vs "
        f"{report.fixed_equivalent_runs} fixed; {len(report.converged)}/"
        f"{len(report.points)} converged)",
    )


if __name__ == "__main__":
    with tempfile.TemporaryDirectory() as tmp:
        report = run_s1(os.path.join(tmp, "cache"))
    _check(report)
    print_table([p.to_dict() for p in report.points], "S1: adaptive smoke")
