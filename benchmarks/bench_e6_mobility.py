"""E6 -- Sensitivity to node mobility.

Delivery ratio, delay and cluster-head churn as the maximum random-waypoint
speed grows from 0 (static) to 20 m/s, for HVDB and flooding.  The paper's
stability argument: mobility-prediction clustering plus the logical (not
physical) backbone keep the structure usable as nodes move.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

SPEEDS = [0.0, 5.0, 10.0, 20.0]
PROTOCOLS = ["hvdb", "flooding"]
DURATION = 90.0


def config_for(protocol: str, speed: float) -> ScenarioConfig:
    return ScenarioConfig(
        protocol=protocol,
        n_nodes=100,
        area_size=1400.0,
        radio_range=250.0,
        max_speed=speed,
        pause_time=2.0,
        group_size=10,
        traffic_interval=1.0,
        traffic_start=30.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        seed=37,
    )


def run_e6() -> List[Dict]:
    rows: List[Dict] = []
    for protocol in PROTOCOLS:
        for speed in SPEEDS:
            result = run_scenario(config_for(protocol, speed), duration=DURATION)
            delivery = result.report.delivery
            stats = result.report.protocol_stats
            rows.append(
                {
                    "protocol": protocol,
                    "max_speed_mps": speed,
                    "pdr": round(delivery.delivery_ratio, 3),
                    "delay_ms": round(delivery.mean_delay * 1000, 1),
                    "ch_handovers": stats.get("cluster_head_changes", "-"),
                    "failovers": stats.get("failovers", "-"),
                }
            )
    return rows


def test_e6_mobility(benchmark):
    rows = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    print_table(rows, "E6: delivery and churn vs. maximum node speed (random waypoint)")
    hvdb = {r["max_speed_mps"]: r for r in rows if r["protocol"] == "hvdb"}
    # static network: the backbone never changes hands and delivery is useful
    # (a static placement can leave a few receivers permanently in coverage
    # holes, so the static PDR is not necessarily the highest of the sweep)
    assert hvdb[0.0]["ch_handovers"] == 0
    assert hvdb[0.0]["pdr"] > 0.6
    # churn grows with speed
    assert hvdb[20.0]["ch_handovers"] >= hvdb[5.0]["ch_handovers"]
    # even at 20 m/s the protocol still delivers a useful fraction
    assert hvdb[20.0]["pdr"] > 0.35


if __name__ == "__main__":
    print_table(run_e6(), "E6: delivery and churn vs. maximum node speed")
