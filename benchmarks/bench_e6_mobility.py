"""E6 -- Sensitivity to node mobility.

Delivery ratio, delay and cluster-head churn as the maximum random-waypoint
speed grows from 0 (static) to 20 m/s, for HVDB and flooding.  The paper's
stability argument: mobility-prediction clustering plus the logical (not
physical) backbone keep the structure usable as nodes move.

The scenario grid is the registered sweep ``e6_mobility`` (see
``repro.experiments.specs``); this file only derives the report columns.
"""

from __future__ import annotations

from typing import Dict, List

from common import print_table, run_spec


def run_e6() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e6_mobility"):
        metrics = result.metrics
        rows.append(
            {
                "protocol": result.params["protocol"],
                "max_speed_mps": result.params["max_speed"],
                "pdr": round(metrics["pdr"], 3),
                "delay_ms": round(metrics["mean_delay"] * 1000, 1),
                "ch_handovers": metrics.get("cluster_head_changes", "-"),
                "failovers": metrics.get("failovers", "-"),
            }
        )
    return rows


def test_e6_mobility(benchmark):
    rows = benchmark.pedantic(run_e6, rounds=1, iterations=1)
    print_table(rows, "E6: delivery and churn vs. maximum node speed (random waypoint)")
    hvdb = {r["max_speed_mps"]: r for r in rows if r["protocol"] == "hvdb"}
    # static network: the backbone never changes hands and delivery is useful
    # (a static placement can leave a few receivers permanently in coverage
    # holes, so the static PDR is not necessarily the highest of the sweep)
    assert hvdb[0.0]["ch_handovers"] == 0
    assert hvdb[0.0]["pdr"] > 0.6
    # churn grows with speed
    assert hvdb[20.0]["ch_handovers"] >= hvdb[5.0]["ch_handovers"]
    # even at 20 m/s the protocol still delivers a useful fraction
    assert hvdb[20.0]["pdr"] > 0.35


if __name__ == "__main__":
    print_table(run_e6(), "E6: delivery and churn vs. maximum node speed")
