"""F4-F6 -- Per-operation cost of the paper's three algorithms.

Micro-benchmarks of the executable counterparts of Figures 4, 5 and 6 on a
realistic backbone (a 4-dimensional incomplete hypercube with 75% of its
nodes present):

* F4: one proactive route-maintenance round (beacon integration into the
  local logical route table);
* F5: one summary round (Local-Membership -> MNT-Summary -> HT-Summary ->
  MT-Summary) plus designated-broadcaster selection;
* F6: mesh-tier + hypercube-tier multicast tree computation and packet
  fan-out simulation over the trees.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.core.membership import (
    BroadcasterCriterion,
    HTSummary,
    LocalMembership,
    MNTSummary,
    MTSummary,
    select_designated_broadcaster,
)
from repro.core.multicast_routing import compute_hypercube_tree, compute_mesh_tree
from repro.core.route_maintenance import LinkQoS, LogicalRoute, LogicalRouteTable
from repro.hypercube.mesh import MeshGrid
from repro.hypercube.topology import IncompleteHypercube

from common import print_table

DIMENSION = 4
RNG = random.Random(61)


def make_cube() -> IncompleteHypercube:
    labels = list(range(1 << DIMENSION))
    present = RNG.sample(labels, int(0.75 * len(labels)))
    return IncompleteHypercube(DIMENSION, present)


def figure4_round(cube: IncompleteHypercube) -> int:
    """One full proactive-maintenance round over every CH of the cube."""
    tables = {hnid: LogicalRouteTable(hnid, max_logical_hops=4) for hnid in cube.nodes()}
    # 1-logical-hop exchange
    for hnid, table in tables.items():
        for neighbor in cube.neighbors(hnid):
            table.update_neighbor(neighbor, LinkQoS(0.01, 1e6, 0.0))
    # advertisement integration (the "update on beacon receipt" step), twice
    # so k-hop routes build up
    accepted = 0
    for _ in range(2):
        advertisements = {hnid: table.advertisement() for hnid, table in tables.items()}
        for hnid, table in tables.items():
            for neighbor in cube.neighbors(hnid):
                accepted += table.integrate_advertisement(neighbor, advertisements[neighbor], 0.0)
    return accepted


def figure5_round(cube: IncompleteHypercube) -> int:
    """One summary round for 4 groups with 40 reporting members."""
    hnids = sorted(cube.nodes())
    reports = [
        LocalMembership(i, {RNG.randint(1, 4) for _ in range(RNG.randint(0, 2))})
        for i in range(40)
    ]
    per_ch = {hnid: [] for hnid in hnids}
    for i, report in enumerate(reports):
        per_ch[hnids[i % len(hnids)]].append(report)
    summaries = {
        hnid: MNTSummary.from_local_reports(hnid, hnid, 0, per_ch[hnid]) for hnid in hnids
    }
    ht = HTSummary.from_mnt_summaries(0, summaries.values())
    neighbors = {hnid: cube.neighbors(hnid) for hnid in hnids}
    designated = select_designated_broadcaster(
        summaries, BroadcasterCriterion.NEIGHBORHOOD_MEMBERS, neighbors
    )
    mt = MTSummary()
    mt.update_from_ht(ht, (0, 0))
    return designated if designated is not None else -1


def figure6_round(cube: IncompleteHypercube) -> int:
    """Mesh-tier + hypercube-tier tree computation and fan-out walk."""
    mesh = MeshGrid(4, 4)
    mt = MTSummary()
    for coord in [(3, 3), (0, 3), (3, 0), (2, 1)]:
        mt.update_from_ht(HTSummary(0, {1: {0}}), coord)
    mesh_tree = compute_mesh_tree(mesh, (0, 0), mt, group=1)
    members = set(RNG.sample(sorted(cube.node_set()), min(6, len(cube))))
    root = next(iter(cube.nodes()))
    cube_tree = compute_hypercube_tree(cube, root, HTSummary(0, {1: members}), group=1)
    # walk both trees (the forwarding fan-out of Figure 6 steps 3-5)
    forwarded = 0
    stack = [mesh_tree.root]
    while stack:
        node = stack.pop()
        kids = mesh_tree.children_of(node)
        forwarded += len(kids)
        stack.extend(kids)
    stack = [cube_tree.root]
    while stack:
        node = stack.pop()
        kids = cube_tree.children_of(node)
        forwarded += len(kids)
        stack.extend(kids)
    return forwarded


def run_f4_f6() -> List[Dict]:
    cube = make_cube()
    return [
        {"algorithm": "F4 proactive route maintenance", "result": figure4_round(cube)},
        {"algorithm": "F5 summary-based membership update", "result": figure5_round(cube)},
        {"algorithm": "F6 multicast tree computation + fan-out", "result": figure6_round(cube)},
    ]


def test_f4_route_maintenance(benchmark):
    cube = make_cube()
    accepted = benchmark(figure4_round, cube)
    assert accepted > 0


def test_f5_membership_summaries(benchmark):
    cube = make_cube()
    designated = benchmark(figure5_round, cube)
    assert designated >= 0


def test_f6_multicast_trees(benchmark):
    cube = make_cube()
    forwarded = benchmark(figure6_round, cube)
    assert forwarded > 0
    print_table(run_f4_f6(), "F4-F6: one round of each protocol algorithm")


if __name__ == "__main__":
    print_table(run_f4_f6(), "F4-F6: one round of each protocol algorithm")
