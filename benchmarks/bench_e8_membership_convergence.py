"""E8 -- Membership convergence under group churn.

Members join and leave the multicast group during the run; the experiment
measures how delivery tracks the changing membership and how much
membership control traffic each churn rate costs, plus a comparison of the
designated-broadcaster criteria of Section 4.2.

The scenario grids are the registered sweeps ``e8_churn`` (churn rate
swept as a registered ``before_run`` hook axis, membership-change counts
from the sweep's collector) and ``e8_criteria`` (a label axis coupling
each criterion to its ``HVDBParameters``) -- see
``repro.experiments.specs``.
"""

from __future__ import annotations

from typing import Dict, List

from common import hook_suffix, print_table, run_spec


def run_e8_churn() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e8_churn"):
        metrics = result.metrics
        rows.append(
            {
                "churn_per_s": hook_suffix(result.params["before_run"]),
                "membership_changes": metrics["membership_changes"],
                "pdr": round(metrics["pdr"], 3),
                "ctrl_pkts": metrics["ctrl_pkts"],
                "ht_broadcasts": metrics["ht_summaries_broadcast"],
            }
        )
    return rows


def run_e8_criteria() -> List[Dict]:
    rows: List[Dict] = []
    for result in run_spec("e8_criteria"):
        metrics = result.metrics
        rows.append(
            {
                "criterion": result.params["criterion"],
                "pdr": round(metrics["pdr"], 3),
                "ht_broadcasts": metrics["ht_summaries_broadcast"],
                "ctrl_pkts": metrics["ctrl_pkts"],
            }
        )
    return rows


def test_e8_membership_convergence(benchmark):
    rows = benchmark.pedantic(run_e8_churn, rounds=1, iterations=1)
    print_table(rows, "E8a: delivery and overhead vs. group churn rate")
    # churn costs delivery but the protocol keeps tracking the membership
    assert rows[0]["pdr"] >= rows[-1]["pdr"] - 0.05
    assert all(r["pdr"] > 0.3 for r in rows)


def test_e8_broadcaster_criteria(benchmark):
    rows = benchmark.pedantic(run_e8_criteria, rounds=1, iterations=1)
    print_table(rows, "E8b: designated-broadcaster criteria comparison (churn 0.1/s)")
    assert all(r["ht_broadcasts"] > 0 for r in rows)


if __name__ == "__main__":
    print_table(run_e8_churn(), "E8a: delivery and overhead vs. group churn rate")
    print_table(run_e8_criteria(), "E8b: designated-broadcaster criteria comparison")
