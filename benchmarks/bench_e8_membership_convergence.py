"""E8 -- Membership convergence under group churn.

Members join and leave the multicast group during the run; the experiment
measures how delivery tracks the changing membership and how much
membership control traffic each churn rate costs, plus a comparison of the
designated-broadcaster criteria of Section 4.2.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.membership import BroadcasterCriterion
from repro.core.protocol import HVDBParameters
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig

from common import print_table

CHURN_RATES = [0.0, 0.05, 0.2]      # membership changes per second
DURATION = 100.0


def base_config(criterion: BroadcasterCriterion = BroadcasterCriterion.NEIGHBORHOOD_MEMBERS) -> ScenarioConfig:
    return ScenarioConfig(
        protocol="hvdb",
        n_nodes=90,
        area_size=1400.0,
        radio_range=260.0,
        max_speed=2.0,
        group_size=10,
        traffic_interval=1.0,
        traffic_start=30.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        hvdb_params=HVDBParameters(broadcaster_criterion=criterion),
        seed=43,
    )


def churn_hook(rate: float):
    def hook(scenario):
        if rate > 0:
            scenario.groups.start_churn(1, rate=rate, min_members=3)

    return hook


def run_e8_churn() -> List[Dict]:
    rows: List[Dict] = []
    for rate in CHURN_RATES:
        result = run_scenario(
            base_config(), duration=DURATION, before_run=churn_hook(rate)
        )
        delivery = result.report.delivery
        overhead = result.report.overhead
        changes = len(result.scenario.groups.history) - 10   # initial joins excluded
        rows.append(
            {
                "churn_per_s": rate,
                "membership_changes": max(0, changes),
                "pdr": round(delivery.delivery_ratio, 3),
                "ctrl_pkts": overhead.control_packets,
                "ht_broadcasts": result.report.protocol_stats["ht_summaries_broadcast"],
            }
        )
    return rows


def run_e8_criteria() -> List[Dict]:
    rows: List[Dict] = []
    for criterion in BroadcasterCriterion:
        result = run_scenario(
            base_config(criterion), duration=DURATION, before_run=churn_hook(0.1)
        )
        rows.append(
            {
                "criterion": criterion.value,
                "pdr": round(result.report.delivery.delivery_ratio, 3),
                "ht_broadcasts": result.report.protocol_stats["ht_summaries_broadcast"],
                "ctrl_pkts": result.report.overhead.control_packets,
            }
        )
    return rows


def test_e8_membership_convergence(benchmark):
    rows = benchmark.pedantic(run_e8_churn, rounds=1, iterations=1)
    print_table(rows, "E8a: delivery and overhead vs. group churn rate")
    # churn costs delivery but the protocol keeps tracking the membership
    assert rows[0]["pdr"] >= rows[-1]["pdr"] - 0.05
    assert all(r["pdr"] > 0.3 for r in rows)


def test_e8_broadcaster_criteria(benchmark):
    rows = benchmark.pedantic(run_e8_criteria, rounds=1, iterations=1)
    print_table(rows, "E8b: designated-broadcaster criteria comparison (churn 0.1/s)")
    assert all(r["ht_broadcasts"] > 0 for r in rows)


if __name__ == "__main__":
    print_table(run_e8_churn(), "E8a: delivery and overhead vs. group churn rate")
    print_table(run_e8_criteria(), "E8b: designated-broadcaster criteria comparison")
