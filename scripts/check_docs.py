#!/usr/bin/env python
"""Documentation consistency checks (the `make docs-check` target).

Fails (exit code 1) if documentation has drifted from the code:

1. required docs exist (README.md plus the docs/ suite: architecture
   overview, orchestrator, executors, sharding-and-ci,
   protocol-registry, experiments-guide);
2. every intra-repo markdown link in README/docs resolves (the docs
   suite cross-references itself page to page; a split or rename must
   not leave dangling links);
3. README documents every CLI subcommand the shipped parser actually
   has, and the docs/ pages collectively document every subcommand too;
4. every ``python -m repro.experiments <sub> <sweep>`` command quoted in
   a doc uses a real subcommand and a registered sweep name, and every
   ``make <target>`` mentioned exists in the Makefile -- the
   experiments-guide walkthrough must stay copy-pasteable;
5. every module under ``src/repro`` has a module docstring;
6. every package ``__init__`` resolves its declared ``__all__`` (imports
   that silently rot are the most common docstring drift);
7. every submodule a package docstring mentions (``:mod:`repro...```)
   actually exists;
8. docs mention no repo files that do not exist (DESIGN.md-style drift).

``--links`` runs only the intra-repo link check (the dedicated CI step).
"""

from __future__ import annotations

import ast
import importlib
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

ERRORS: list = []

#: the docs suite every checkout must ship
REQUIRED_DOCS = (
    "README.md",
    "docs/architecture.md",
    "docs/orchestrator.md",
    "docs/executors.md",
    "docs/networked-executor.md",
    "docs/result-store.md",
    "docs/sharding-and-ci.md",
    "docs/protocol-registry.md",
    "docs/physical-layer.md",
    "docs/experiments-guide.md",
    "ROADMAP.md",
    "CHANGES.md",
)

#: subcommands that take a sweep name as their first positional argument
SWEEP_TAKING = ("run", "resume", "export", "merge", "perf")


def error(message: str) -> None:
    ERRORS.append(message)
    print(f"docs-check: FAIL: {message}")


def doc_pages() -> list:
    """README.md plus every markdown page under docs/, as absolute paths."""
    pages = [os.path.join(ROOT, "README.md")]
    docs_dir = os.path.join(ROOT, "docs")
    if os.path.isdir(docs_dir):
        pages.extend(
            os.path.join(docs_dir, name)
            for name in sorted(os.listdir(docs_dir))
            if name.endswith(".md")
        )
    return [p for p in pages if os.path.isfile(p)]


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as fh:
        return fh.read()


def _rel(path: str) -> str:
    return os.path.relpath(path, ROOT)


def check_required_docs() -> None:
    for rel in REQUIRED_DOCS:
        if not os.path.isfile(os.path.join(ROOT, rel)):
            error(f"required doc missing: {rel}")


_LINK = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)\)")


def check_intra_repo_links() -> None:
    """Every relative markdown link in README/docs must resolve."""
    for path in doc_pages():
        for target in _LINK.findall(_read(path)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel_target = target.split("#", 1)[0]
            if not rel_target:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), rel_target)
            )
            if not os.path.exists(resolved):
                error(f"{_rel(path)} links to {target!r} which does not exist")


def _cli_subcommands() -> list:
    from repro.experiments.__main__ import _build_parser

    parser = _build_parser()
    for action in parser._actions:  # argparse keeps subparsers here
        if hasattr(action, "choices") and action.choices:
            return list(action.choices)
    return []


def check_readme_matches_cli() -> None:
    readme_path = os.path.join(ROOT, "README.md")
    if not os.path.isfile(readme_path):
        return
    readme = _read(readme_path)
    for command in _cli_subcommands():
        if f"python -m repro.experiments {command}" not in readme:
            error(f"README does not document CLI subcommand {command!r}")
    for target in ("make test", "make bench-smoke", "make docs-check"):
        if target not in readme:
            error(f"README does not mention {target!r}")


def check_docs_cover_cli() -> None:
    """The docs/ pages, collectively, document every CLI subcommand."""
    pages = [p for p in doc_pages() if os.path.basename(os.path.dirname(p)) == "docs"]
    if not pages:
        return
    corpus = "\n".join(_read(p) for p in pages)
    for command in _cli_subcommands():
        if f"python -m repro.experiments {command}" not in corpus:
            error(f"no docs/ page documents CLI subcommand {command!r}")


#: a quoted CLI command; separators are same-line only, so prose after a
#: line break ("...experiments run` to execute\nsmoke tests") is never
#: mis-parsed as a sweep argument
_CLI_REF = re.compile(r"python -m repro\.experiments[ \t]+([\w-]+)(?:[ \t]+(?!-)([\w.-]+))?")
_MAKE_INLINE = re.compile(r"`make ([a-zA-Z][\w-]*)")
_MAKE_COMMAND = re.compile(r"^\s*\$?\s*make ([a-zA-Z][\w-]*)")


def _make_refs(text: str) -> list:
    """Make targets referenced in code contexts of a markdown page.

    Inline code (```make x```) and command lines inside fenced code
    blocks count; prose that merely starts a line with "make sure ..."
    does not.
    """
    refs = _MAKE_INLINE.findall(text)
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            match = _MAKE_COMMAND.match(line)
            if match:
                refs.append(match.group(1))
    return refs
_MAKE_TARGET = re.compile(r"^([a-zA-Z][\w-]*):", re.MULTILINE)


def check_quoted_commands() -> None:
    """Quoted CLI/make commands must reference things that exist.

    The experiments-guide sells its commands as copy-pasteable; a renamed
    sweep or dropped make target must fail this check, not a reader.
    """
    subcommands = set(_cli_subcommands())
    from repro.experiments.specs import SPECS

    makefile = os.path.join(ROOT, "Makefile")
    targets = set(_MAKE_TARGET.findall(_read(makefile))) if os.path.isfile(makefile) else set()

    for path in doc_pages():
        text = _read(path)
        for sub, arg in _CLI_REF.findall(text):
            if sub not in subcommands:
                error(
                    f"{_rel(path)} quotes unknown subcommand "
                    f"'python -m repro.experiments {sub}'"
                )
            elif arg and sub in SWEEP_TAKING and arg not in SPECS:
                error(
                    f"{_rel(path)} quotes 'python -m repro.experiments {sub} "
                    f"{arg}' but {arg!r} is not a registered sweep"
                )
        for target in _make_refs(text):
            if target not in targets:
                error(f"{_rel(path)} mentions 'make {target}' which is not a Makefile target")


def iter_modules() -> list:
    modules = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(SRC, "repro")):
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, SRC)
                name = rel[: -len(".py")].replace(os.sep, ".")
                if name.endswith(".__init__"):
                    name = name[: -len(".__init__")]
                modules.append((name, path))
    return sorted(modules)


def check_module_docstrings() -> None:
    for name, path in iter_modules():
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        if not ast.get_docstring(tree):
            error(f"module {name} has no docstring")


def check_package_exports() -> None:
    for name, path in iter_modules():
        if not path.endswith("__init__.py"):
            continue
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            if not hasattr(module, symbol):
                error(f"{name}.__all__ lists {symbol!r} but it does not resolve")
        # submodules the docstring advertises must exist
        for ref in re.findall(r":mod:`(repro[.\w]*)`", module.__doc__ or ""):
            try:
                importlib.import_module(ref)
            except ImportError:
                error(f"{name} docstring mentions :mod:`{ref}` which does not import")


def check_no_phantom_files() -> None:
    pattern = re.compile(r"\b([A-Z]{2,}[A-Z_]*\.md)\b")
    for path in doc_pages():
        for mentioned in set(pattern.findall(_read(path))):
            if not os.path.isfile(os.path.join(ROOT, mentioned)):
                error(f"{_rel(path)} mentions {mentioned} which does not exist in the repo")


def main(argv: list) -> int:
    if "--links" in argv:
        check_intra_repo_links()
        if ERRORS:
            print(f"docs-check: {len(ERRORS)} broken link(s)")
            return 1
        print(f"docs-check: OK ({len(doc_pages())} pages, intra-repo links resolve)")
        return 0
    check_required_docs()
    check_intra_repo_links()
    check_readme_matches_cli()
    check_docs_cover_cli()
    check_quoted_commands()
    check_module_docstrings()
    check_package_exports()
    check_no_phantom_files()
    if ERRORS:
        print(f"docs-check: {len(ERRORS)} problem(s)")
        return 1
    modules = len(iter_modules())
    pages = len(doc_pages())
    print(
        f"docs-check: OK ({modules} modules, {pages} doc pages; links, "
        "CLI docs, quoted commands and exports consistent)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
