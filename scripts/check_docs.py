#!/usr/bin/env python
"""Documentation consistency checks (the `make docs-check` target).

Fails (exit code 1) if documentation has drifted from the code:

1. required docs exist (README.md, docs/architecture.md);
2. README documents every CLI subcommand the shipped parser actually has,
   and every registered sweep-spec/make-target mentioned exists;
3. every module under ``src/repro`` has a module docstring;
4. every package ``__init__`` resolves its declared ``__all__`` (imports
   that silently rot are the most common docstring drift);
5. every submodule a package docstring mentions (``:mod:`repro...```)
   actually exists;
6. docs mention no repo files that do not exist (DESIGN.md-style drift).
"""

from __future__ import annotations

import ast
import importlib
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
sys.path.insert(0, SRC)

ERRORS: list = []


def error(message: str) -> None:
    ERRORS.append(message)
    print(f"docs-check: FAIL: {message}")


def check_required_docs() -> None:
    for rel in ("README.md", "docs/architecture.md", "ROADMAP.md", "CHANGES.md"):
        if not os.path.isfile(os.path.join(ROOT, rel)):
            error(f"required doc missing: {rel}")


def check_readme_matches_cli() -> None:
    readme_path = os.path.join(ROOT, "README.md")
    if not os.path.isfile(readme_path):
        return
    with open(readme_path, encoding="utf-8") as fh:
        readme = fh.read()

    from repro.experiments.__main__ import _build_parser

    parser = _build_parser()
    subcommands = []
    for action in parser._actions:  # argparse keeps subparsers here
        if hasattr(action, "choices") and action.choices:
            subcommands = list(action.choices)
    for command in subcommands:
        if f"python -m repro.experiments {command}" not in readme:
            error(f"README does not document CLI subcommand {command!r}")

    for target in ("make test", "make bench-smoke", "make docs-check"):
        if target not in readme:
            error(f"README does not mention {target!r}")


def iter_modules() -> list:
    modules = []
    for dirpath, _dirnames, filenames in os.walk(os.path.join(SRC, "repro")):
        for filename in filenames:
            if filename.endswith(".py"):
                path = os.path.join(dirpath, filename)
                rel = os.path.relpath(path, SRC)
                name = rel[: -len(".py")].replace(os.sep, ".")
                if name.endswith(".__init__"):
                    name = name[: -len(".__init__")]
                modules.append((name, path))
    return sorted(modules)


def check_module_docstrings() -> None:
    for name, path in iter_modules():
        with open(path, encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), filename=path)
        if not ast.get_docstring(tree):
            error(f"module {name} has no docstring")


def check_package_exports() -> None:
    for name, path in iter_modules():
        if not path.endswith("__init__.py"):
            continue
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            if not hasattr(module, symbol):
                error(f"{name}.__all__ lists {symbol!r} but it does not resolve")
        # submodules the docstring advertises must exist
        for ref in re.findall(r":mod:`(repro[.\w]*)`", module.__doc__ or ""):
            try:
                importlib.import_module(ref)
            except ImportError:
                error(f"{name} docstring mentions :mod:`{ref}` which does not import")


def check_no_phantom_files() -> None:
    pattern = re.compile(r"\b([A-Z]{2,}[A-Z_]*\.md)\b")
    for rel in ("README.md", "docs/architecture.md"):
        path = os.path.join(ROOT, rel)
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for mentioned in set(pattern.findall(text)):
            if not os.path.isfile(os.path.join(ROOT, mentioned)):
                error(f"{rel} mentions {mentioned} which does not exist in the repo")


def main() -> int:
    check_required_docs()
    check_readme_matches_cli()
    check_module_docstrings()
    check_package_exports()
    check_no_phantom_files()
    if ERRORS:
        print(f"docs-check: {len(ERRORS)} problem(s)")
        return 1
    modules = len(iter_modules())
    print(f"docs-check: OK ({modules} modules, docstrings/exports/CLI docs consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
