"""Compare cold-load throughput of the json and sqlite result stores.

Synthesizes a few hundred cached runs (fabricated ``RunResult`` records
keyed by the real cache keys of an inflated smoke grid -- no simulation
executed), writes them through both backends, and times one batched
``scan`` over every key from each (the store-layer call warm replays,
``merge`` and ``perf`` sit on).  The point of the sqlite backend is
that a full scan is one file open + a few batched ``IN`` queries
instead of N ``open()``/``json.load`` calls, so the ratio should
comfortably favour sqlite as N grows; machines and filesystems vary too
much for a hard threshold, so the ratio is **logged, not asserted**
(the byte-equality and zero-exec invariants in ``make store-smoke`` are
the correctness gates).

Usage::

    PYTHONPATH=src python scripts/store_bench.py [--runs 200] [--repeat 3]
"""

import argparse
import dataclasses
import shutil
import sys
import tempfile
import time

from repro.experiments.orchestrator import (
    RunResult,
    expand_spec,
    load_cached_results,
)
from repro.experiments.specs import get_spec
from repro.experiments.stores import make_store


def synthesize_runs(n_runs: int):
    """(cache_key, RunResult) pairs for an inflated smoke grid."""
    spec = get_spec("smoke")
    n_points = len(expand_spec(spec)) // len(spec.seeds)
    seeds_needed = max(1, -(-n_runs // n_points))
    spec = dataclasses.replace(spec, seeds=tuple(range(1, seeds_needed + 1)))
    runs = expand_spec(spec)[:n_runs]
    pairs = []
    for i, run in enumerate(runs):
        pairs.append(
            (
                run.cache_key(),
                RunResult(
                    run_id=run.run_id,
                    params=dict(run.params),
                    seed=run.seed,
                    duration=run.duration,
                    metrics={"pdr": 0.9, "mean_delay": 0.1, "ctrl_pkts": i},
                    wall_time=0.01 * (i + 1),
                ),
            )
        )
    return spec, pairs


def time_scan(target: str, keys, repeat: int) -> float:
    """Best-of-N wall time of one batched ``scan`` over all keys.

    Timed at the store layer: ``load_cached_results`` spends most of its
    time recomputing content-hash cache keys (identical work for every
    backend), which would mask the persistence cost being compared.
    """
    best = float("inf")
    store = make_store(target)
    try:
        for _ in range(repeat):
            start = time.perf_counter()
            loaded = sum(1 for _key, result in store.scan(keys) if result is not None)
            elapsed = time.perf_counter() - start
            if loaded != len(keys):
                raise SystemExit(
                    f"store_bench: {target} returned {loaded}/{len(keys)} entries"
                )
            best = min(best, elapsed)
    finally:
        store.close()
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=200, help="cached runs to synthesize")
    parser.add_argument("--repeat", type=int, default=3, help="timed repetitions (best-of)")
    args = parser.parse_args(argv)

    spec, pairs = synthesize_runs(args.runs)
    workdir = tempfile.mkdtemp(prefix="store-bench-")
    try:
        targets = {
            "json": f"{workdir}/json-cache",
            "sqlite": f"sqlite:{workdir}/cache.db",
        }
        for target in targets.values():
            store = make_store(target)
            for key, result in pairs:
                store.put(key, result)
            store.close()
        keys = [key for key, _result in pairs]
        timings = {
            name: time_scan(target, keys, args.repeat)
            for name, target in targets.items()
        }
        # a full replay through the orchestrator must see every entry
        results, missing = load_cached_results(spec, targets["sqlite"])
        if missing or len(results) != len(pairs):
            raise SystemExit("store_bench: sqlite replay incomplete")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    ratio = timings["json"] / timings["sqlite"] if timings["sqlite"] > 0 else float("inf")
    print(
        f"store_bench: {len(pairs)} cached runs, best of {args.repeat}: "
        f"json {timings['json'] * 1000:.1f} ms, "
        f"sqlite {timings['sqlite'] * 1000:.1f} ms "
        f"(json/sqlite ratio {ratio:.2f}x; informational, not asserted)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
