#!/usr/bin/env python
"""CI churn drill for the networked (tcp) executor (`make net-smoke`).

Drives the smoke grid through a tcp coordinator with two *externally
attached* `python -m repro.experiments worker --connect` processes --
the multi-machine topology on one box -- and SIGKILLs one of them
mid-sweep. To make the kill land mid-run deterministically, the grid
runs with a longer simulated duration (about a second of wall time per
run) and the workers attach in sequence: the victim drains alone until
the driver has recorded at least one run, dies by SIGKILL while leasing
the next, and only then does the survivor attach to finish the sweep.

The gate asserts the churn-tolerance contract end to end:

* the driver still drains the whole grid and exits 0 (the killed
  worker's leases are reclaimed and its runs re-executed), reporting
  the churn in its run summary;
* the CSV artifact is byte-identical to a process-executor run of the
  same grid (the backend, churn included, never changes a result);
* the surviving worker detaches cleanly when the sweep closes;
* a warm-cache re-run under tcp executes zero runs (and never binds).

Everything runs under .ci/net-smoke; exits non-zero with a diagnosis on
the first violated invariant.
"""

import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time

SMOKE_DIR = os.path.join(".ci", "net-smoke")
PYTHON = sys.executable
RUNS_IN_SMOKE = 12  # the smoke grid: 2 group sizes x 2 node counts x 3 seeds
DURATION = "1200"   # sim-seconds; ~1s wall per run, so the kill lands mid-sweep


def log(message):
    print(f"[net-smoke] {message}", flush=True)


def fail(message):
    print(f"[net-smoke] FAIL: {message}", file=sys.stderr, flush=True)
    sys.exit(1)


def cli(*args):
    return [PYTHON, "-m", "repro.experiments", *args]


def free_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def main():
    shutil.rmtree(SMOKE_DIR, ignore_errors=True)
    os.makedirs(SMOKE_DIR, exist_ok=True)

    log("reference run (process executor)")
    subprocess.run(
        cli(
            "run", "smoke", "--duration", DURATION, "--executor", "process",
            "--cache-dir", os.path.join(SMOKE_DIR, "ref-cache"),
            "--out", os.path.join(SMOKE_DIR, "ref"),
        ),
        check=True,
    )

    port = free_port()
    address = f"127.0.0.1:{port}"
    log(f"tcp driver on {address}, --workers 0 (external workers only)")
    driver = subprocess.Popen(
        cli(
            "run", "smoke", "--duration", DURATION, "--executor", "tcp",
            "--workers", "0", "--host", "127.0.0.1", "--port", str(port),
            "--cache-dir", os.path.join(SMOKE_DIR, "tcp-cache"),
            "--out", os.path.join(SMOKE_DIR, "out"),
        ),
        stderr=subprocess.PIPE,
        text=True,
    )

    # follow the driver's progress stream so the kill can be timed
    driver_lines = []
    recorded = threading.Event()
    progress_re = re.compile(rf"\(\d+/{RUNS_IN_SMOKE}\)")

    def follow():
        for line in driver.stderr:
            driver_lines.append(line)
            sys.stderr.write(line)
            if progress_re.search(line):
                recorded.set()

    follower = threading.Thread(target=follow, daemon=True)
    follower.start()

    def spawn_worker():
        return subprocess.Popen(
            cli("worker", "--connect", address, "--poll-interval", "0.2")
        )

    victim = spawn_worker()
    if not recorded.wait(timeout=120):
        victim.kill()
        driver.kill()
        fail("driver recorded no runs within 120s of the first worker attaching")
    # the victim just streamed a result; give it a fraction of one run's
    # wall time to lease and start its next, then SIGKILL = no close
    # frame, no heartbeat, a dead socket, a lease to reclaim
    time.sleep(0.4)
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    done_at_kill = sum(1 for line in driver_lines if progress_re.search(line))
    log(f"SIGKILLed worker 1 mid-sweep ({done_at_kill}/{RUNS_IN_SMOKE} recorded)")
    if done_at_kill >= RUNS_IN_SMOKE:
        fail("the grid drained before the kill landed; raise DURATION")

    survivor = spawn_worker()
    if driver.wait(timeout=600) is None:  # pragma: no cover - belt and braces
        driver.kill()
        fail("tcp driver did not finish within 600s (grid never drained)")
    follower.join(timeout=30)
    if driver.returncode != 0:
        fail(f"tcp driver exited {driver.returncode} (expected a drained grid)")

    try:
        survivor.wait(timeout=60)
    except subprocess.TimeoutExpired:
        survivor.kill()
        fail("surviving worker did not detach after the sweep closed")
    if survivor.returncode != 0:
        fail(f"surviving worker exited {survivor.returncode}")

    churn = [line.strip() for line in driver_lines if "churn:" in line]
    if not churn:
        fail("driver reported no churn summary despite a SIGKILLed worker")
    log(f"driver reported: {churn[0]}")
    if "1 lost" not in churn[0]:
        fail(f"expected the killed worker in the churn summary: {churn[0]}")
    if "0 lease(s) reclaimed" in churn[0]:
        fail(
            "the victim died without a lease to reclaim (kill landed "
            f"between runs): {churn[0]}"
        )

    ref_csv = os.path.join(SMOKE_DIR, "ref", "smoke.csv")
    tcp_csv = os.path.join(SMOKE_DIR, "out", "smoke.csv")
    with open(ref_csv, "rb") as fh:
        ref_bytes = fh.read()
    with open(tcp_csv, "rb") as fh:
        tcp_bytes = fh.read()
    if ref_bytes != tcp_bytes:
        fail("tcp artifact differs from the process-executor artifact")
    log("artifacts byte-identical across executors (kill included)")

    log("warm-cache re-run under tcp (must execute nothing)")
    warm = subprocess.run(
        cli(
            "run", "smoke", "--duration", DURATION, "--executor", "tcp",
            "--workers", "0", "--port", "0",
            "--cache-dir", os.path.join(SMOKE_DIR, "tcp-cache"),
            "--format", "none",
        ),
        capture_output=True,
        text=True,
    )
    sys.stderr.write(warm.stderr)
    if warm.returncode != 0:
        fail(f"warm tcp re-run exited {warm.returncode}")
    blob = warm.stdout + warm.stderr
    if f"done: {RUNS_IN_SMOKE} cached + 0 executed" not in blob:
        fail("warm tcp re-run executed runs (expected all cached)")

    log(
        "OK (driver drained the grid through a SIGKILL, byte-identical "
        "artifacts, churn reported, clean worker detach, zero-exec warm replay)"
    )


if __name__ == "__main__":
    main()
