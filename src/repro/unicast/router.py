"""Greedy geographic unicast forwarding agent.

Every node runs a :class:`GeoUnicastAgent`.  Protocols hand it an *inner*
packet and a destination node; the agent tunnels the inner packet inside a
geo-routing envelope and forwards it hop by hop using greedy geographic
progress, falling back to a recovery walk around voids.  At the
destination the envelope is removed and the inner packet is delivered to
the destination node's protocol agents exactly as if it had arrived over a
direct link, so upper layers never see the multi-hop detail ("the logical
link between two adjacent logical hypercube nodes possibly consists of
multi-hop physical links", paper Section 3).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.geo.geometry import Point
from repro.simulation.agent import ProtocolAgent
from repro.simulation.packet import Packet

#: Protocol identifier of the geographic unicast agent.
GEO_PROTOCOL = "geo-unicast"

#: Envelope overhead in bytes (destination id + position + mode + visited list).
_ENVELOPE_OVERHEAD = 24


class GeoUnicastAgent(ProtocolAgent):
    """GPSR-like greedy + recovery geographic unicast forwarding."""

    protocol_name = GEO_PROTOCOL

    def __init__(self, max_visited: int = 64) -> None:
        super().__init__()
        self.max_visited = max_visited
        self.sent = 0
        self.delivered = 0
        self.dropped_no_route = 0
        self.forwarded = 0

    # ------------------------------------------------------------------
    # sending API used by upper-layer protocols
    # ------------------------------------------------------------------
    def send(self, inner: Packet, dest_node: int) -> None:
        """Tunnel ``inner`` to ``dest_node`` via geographic forwarding."""
        if dest_node == self.node_id:
            # Local delivery without touching the radio.
            self.node.deliver(inner, self.node_id)
            return
        envelope = Packet(
            kind=inner.kind,
            protocol=GEO_PROTOCOL,
            msg_type="tunnel",
            source=self.node_id,
            group=inner.group,
            destination=dest_node,
            payload=inner,
            headers={
                "dest_node": dest_node,
                "visited": [self.node_id],
                "mode": "greedy",
            },
            size_bytes=inner.size_bytes + _ENVELOPE_OVERHEAD,
            created_at=self.now,
            uid=inner.uid,
            hops=inner.hops,
            logical_hops=inner.logical_hops,
        )
        self.sent += 1
        self._forward(envelope)

    # ------------------------------------------------------------------
    # forwarding
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, from_node: int) -> None:
        if packet.protocol != GEO_PROTOCOL or packet.msg_type != "tunnel":
            return
        dest = packet.headers["dest_node"]
        if dest == self.node_id:
            inner: Packet = packet.payload
            inner.hops = packet.hops
            self.delivered += 1
            self.node.deliver(inner, from_node)
            return
        visited = packet.headers.setdefault("visited", [])
        if self.node_id not in visited:
            visited.append(self.node_id)
        if len(visited) > self.max_visited:
            self.dropped_no_route += 1
            return
        self.forwarded += 1
        self._forward(packet)

    def _forward(self, envelope: Packet) -> None:
        dest = envelope.headers["dest_node"]
        if dest not in self.network.nodes or not self.network.node(dest).alive:
            self.dropped_no_route += 1
            return
        dest_pos = self.network.position_of(dest)
        my_pos = self.network.position_of(self.node_id)
        neighbor_ids = self.network.neighbors_of(self.node_id)
        if dest in neighbor_ids:
            self.node.unicast(dest, envelope)
            return
        neighbors: Dict[int, Point] = {
            nb: self.network.position_of(nb) for nb in neighbor_ids
        }
        visited = set(envelope.headers.get("visited", []))
        from repro.unicast.greedy import greedy_next_hop, recovery_next_hop

        next_hop = greedy_next_hop(my_pos, dest_pos, neighbors, exclude=visited)
        if next_hop is None:
            envelope.headers["mode"] = "recovery"
            next_hop = recovery_next_hop(my_pos, dest_pos, neighbors, visited)
        else:
            envelope.headers["mode"] = "greedy"
        if next_hop is None:
            self.dropped_no_route += 1
            return
        self.node.unicast(next_hop, envelope)
