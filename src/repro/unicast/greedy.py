"""Next-hop selection for location-based unicast forwarding."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.geo.geometry import Point, distance


def greedy_next_hop(
    current: Point,
    destination: Point,
    neighbors: Dict[int, Point],
    exclude: Optional[Set[int]] = None,
) -> Optional[int]:
    """Neighbour that makes the most progress towards ``destination``.

    Returns ``None`` when no neighbour is strictly closer to the
    destination than the current node (the local-maximum / void situation
    greedy forwarding is known for), in which case the caller should switch
    to recovery mode.
    """
    exclude = exclude or set()
    own_distance = distance(current, destination)
    best_id: Optional[int] = None
    best_distance = own_distance
    for node_id, position in neighbors.items():
        if node_id in exclude:
            continue
        d = distance(position, destination)
        if d < best_distance - 1e-12:
            best_distance = d
            best_id = node_id
    return best_id


def recovery_next_hop(
    current: Point,
    destination: Point,
    neighbors: Dict[int, Point],
    visited: Set[int],
) -> Optional[int]:
    """Recovery forwarding when greedy progress is impossible.

    A simplified stand-in for GPSR's perimeter (right-hand rule) mode: pick
    the unvisited neighbour closest to the destination even if it does not
    make strict progress.  Combined with the per-packet visited set this
    walks the packet around voids and provably terminates (every hop
    consumes one unvisited node).
    """
    best_id: Optional[int] = None
    best_distance = float("inf")
    for node_id, position in neighbors.items():
        if node_id in visited:
            continue
        d = distance(position, destination)
        if d < best_distance:
            best_distance = d
            best_id = node_id
    return best_id


def path_stretch(path_positions: Sequence[Point]) -> float:
    """Ratio of the travelled path length to the straight-line distance.

    Used by unit tests and the routing-quality diagnostics; 1.0 means the
    packet travelled along the straight line.
    """
    if len(path_positions) < 2:
        return 1.0
    travelled = sum(
        distance(a, b) for a, b in zip(path_positions, path_positions[1:])
    )
    direct = distance(path_positions[0], path_positions[-1])
    if direct == 0:
        return 1.0
    return travelled / direct
