"""Location-based unicast routing (System S6).

The HVDB multicast routing "assume[s] to use some location-based unicast
routing algorithm to send a packet from one logical hypercube to its next
hop logical hypercube" (paper Section 4.3).  This package provides that
substrate: greedy geographic forwarding with a right-hand-style recovery
detour (GPSR-like), packaged as a protocol agent every node runs.

* :mod:`repro.unicast.greedy` -- pure next-hop selection functions
  (greedy progress, recovery candidate ordering).
* :mod:`repro.unicast.router` -- :class:`GeoUnicastAgent`, the per-node
  forwarding agent plus the tunnelling API protocols use to send a packet
  to a distant node or to a geographic position.
"""

from repro.unicast.greedy import greedy_next_hop, recovery_next_hop
from repro.unicast.router import GeoUnicastAgent, GEO_PROTOCOL

__all__ = [
    "greedy_next_hop",
    "recovery_next_hop",
    "GeoUnicastAgent",
    "GEO_PROTOCOL",
]
