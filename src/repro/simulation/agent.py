"""Protocol agent interface.

Every routing / multicast protocol in this library (the HVDB protocol of
the paper and the baselines) is implemented as a :class:`ProtocolAgent`
attached to a :class:`~repro.simulation.node.MobileNode`.  Agents react to
three stimuli: simulation start, packet reception, and multicast group
membership changes; anything periodic is driven by timers the agent
creates on the shared simulator.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.node import MobileNode
    from repro.simulation.network import Network
    from repro.simulation.packet import Packet


class ProtocolAgent(abc.ABC):
    """Base class for per-node protocol implementations."""

    #: protocol identifier; packets whose ``protocol`` matches are delivered
    #: to this agent (every agent also sees packets with no matching agent).
    protocol_name: str = "agent"

    def __init__(self) -> None:
        self.node: Optional["MobileNode"] = None
        self.network: Optional["Network"] = None

    # ------------------------------------------------------------------
    # wiring (called by MobileNode.attach_agent)
    # ------------------------------------------------------------------
    def bind(self, node: "MobileNode", network: "Network") -> None:
        self.node = node
        self.network = network

    @property
    def simulator(self):
        """The shared simulation kernel (valid after :meth:`bind`)."""
        return self.network.simulator

    @property
    def node_id(self) -> int:
        return self.node.node_id

    @property
    def now(self) -> float:
        return self.network.simulator.now

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once when the network starts the simulation."""

    def on_stop(self) -> None:
        """Called when the simulation is being torn down."""

    @abc.abstractmethod
    def on_packet(self, packet: "Packet", from_node: int) -> None:
        """Called for every packet this node receives."""

    def on_group_join(self, group: int) -> None:
        """Called when this node joins multicast group ``group``."""

    def on_group_leave(self, group: int) -> None:
        """Called when this node leaves multicast group ``group``."""

    def send_multicast(self, group: int, payload: Any, size_bytes: int = 512) -> None:
        """Application-level multicast send; overridden by multicast protocols."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement application multicast"
        )
