"""Mobile nodes.

A :class:`MobileNode` owns its protocol agents, a GPS-like location
service, per-node statistics and a multicast membership set.  All physical
transmission goes through the :class:`~repro.simulation.network.Network`,
which knows positions and neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.geo.geometry import Point, Vector
from repro.geo.location_service import LocationService
from repro.simulation.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.agent import ProtocolAgent
    from repro.simulation.network import Network


@dataclass
class NodeStats:
    """Per-node transmission / reception counters."""

    sent_packets: int = 0
    sent_bytes: int = 0
    received_packets: int = 0
    received_bytes: int = 0
    sent_control_packets: int = 0
    sent_control_bytes: int = 0
    sent_data_packets: int = 0
    sent_data_bytes: int = 0
    forwarded_data_packets: int = 0
    delivered_to_application: int = 0
    dropped_packets: int = 0
    energy_consumed: float = 0.0

    def record_send(self, packet: Packet, tx_energy: float) -> None:
        self.sent_packets += 1
        self.sent_bytes += packet.size_bytes
        self.energy_consumed += tx_energy
        if packet.kind is PacketKind.DATA:
            self.sent_data_packets += 1
            self.sent_data_bytes += packet.size_bytes
            if packet.source != -1:
                self.forwarded_data_packets += 1
        else:
            self.sent_control_packets += 1
            self.sent_control_bytes += packet.size_bytes

    def record_receive(self, packet: Packet, rx_energy: float) -> None:
        self.received_packets += 1
        self.received_bytes += packet.size_bytes
        self.energy_consumed += rx_energy


class MobileNode:
    """One mobile node of the MANET.

    Parameters
    ----------
    node_id:
        Unique integer identifier.
    ch_capable:
        Whether the node has the stronger computation/communication
        capability the paper requires of cluster heads (Section 3,
        assumption 2).  Nodes with ``ch_capable=False`` are never elected
        CH.
    tx_energy, rx_energy:
        Energy units charged per transmission / reception (simple counters
        for the load-balancing and energy experiments).
    """

    def __init__(
        self,
        node_id: int,
        ch_capable: bool = True,
        location_service: Optional[LocationService] = None,
        tx_energy: float = 1.0,
        rx_energy: float = 0.5,
    ) -> None:
        self.node_id = node_id
        self.ch_capable = ch_capable
        self.location_service = location_service or LocationService()
        self.tx_energy = tx_energy
        self.rx_energy = rx_energy
        self.stats = NodeStats()
        self.groups: Set[int] = set()
        self.alive = True
        self._agents: List["ProtocolAgent"] = []
        self._network: Optional["Network"] = None

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_agent(self, agent: "ProtocolAgent") -> None:
        """Attach a protocol agent; requires the node to be in a network."""
        if self._network is None:
            raise RuntimeError("node must be added to a Network before attaching agents")
        agent.bind(self, self._network)
        self._agents.append(agent)

    def bind_network(self, network: "Network") -> None:
        self._network = network

    @property
    def network(self) -> "Network":
        if self._network is None:
            raise RuntimeError("node is not part of a network")
        return self._network

    @property
    def agents(self) -> List["ProtocolAgent"]:
        return list(self._agents)

    def agent(self, protocol_name: str) -> "ProtocolAgent":
        """Return the attached agent with the given protocol name."""
        for agent in self._agents:
            if agent.protocol_name == protocol_name:
                return agent
        raise KeyError(f"node {self.node_id} has no agent {protocol_name!r}")

    def has_agent(self, protocol_name: str) -> bool:
        return any(a.protocol_name == protocol_name for a in self._agents)

    # ------------------------------------------------------------------
    # position
    # ------------------------------------------------------------------
    @property
    def position(self) -> Point:
        return self.network.position_of(self.node_id)

    @property
    def velocity(self) -> Vector:
        return self.network.velocity_of(self.node_id)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def join_group(self, group: int) -> None:
        if group not in self.groups:
            self.groups.add(group)
            for agent in self._agents:
                agent.on_group_join(group)

    def leave_group(self, group: int) -> None:
        if group in self.groups:
            self.groups.discard(group)
            for agent in self._agents:
                agent.on_group_leave(group)

    def is_member(self, group: int) -> bool:
        return group in self.groups

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Mark the node as failed: it stops sending and receiving."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def broadcast(self, packet: Packet) -> None:
        """Transmit ``packet`` to every physical neighbour."""
        if not self.alive:
            return
        self.stats.record_send(packet, self.tx_energy)
        self.network.transmit(self.node_id, packet, destination=None)

    def unicast(self, destination: int, packet: Packet) -> None:
        """Transmit ``packet`` to a single physical neighbour."""
        if not self.alive:
            return
        self.stats.record_send(packet, self.tx_energy)
        self.network.transmit(self.node_id, packet, destination=destination)

    def deliver(self, packet: Packet, from_node: int) -> None:
        """Called by the network when a transmission reaches this node."""
        if not self.alive:
            return
        self.stats.record_receive(packet, self.rx_energy)
        matched = False
        for agent in self._agents:
            if agent.protocol_name == packet.protocol:
                agent.on_packet(packet, from_node)
                matched = True
        if not matched:
            for agent in self._agents:
                agent.on_packet(packet, from_node)

    def deliver_to_application(self, packet: Packet) -> None:
        """Record that a multicast data packet reached this group member."""
        self.stats.delivered_to_application += 1
        self.network.note_delivery(packet, self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MobileNode(id={self.node_id}, ch_capable={self.ch_capable}, alive={self.alive})"
