"""Interference-aware physical layer: SINR/capture radio + CSMA/CA MAC.

The paper evaluates HVDB over an idealized unit-disk radio and an
abstract contention model.  This module ports the physical-layer realism
the ROADMAP calls for -- RSSI from log-distance path loss, per-frame
SINR against the sum of concurrent interferers plus the noise floor, a
capture threshold deciding reception, frame airtime derived from size
and bitrate, binary exponential backoff and an optional per-node
duty-cycle budget -- as *registered components*:

* :class:`SinrRadio` (``register_radio("sinr")``) keeps per-transmission
  bookkeeping of concurrent senders in an :class:`InterferenceMap`
  (backed by the same :class:`~repro.geo.grid.SpatialHash` the neighbour
  table uses) and decodes a frame iff its RSSI clears the receiver
  sensitivity *and* its SINR clears the capture threshold.
* :class:`CsmaCaMac` (``register_mac("csma_ca")``) models carrier-sense
  deferral (DIFS + uniformly drawn backoff slots from a binary
  exponential contention window), frame airtime
  ``phy_overhead + 8 * size / bitrate``, a collision probability from
  slotted contention, and a sliding-window duty-cycle budget that gates
  transmissions per sender.

Both components are parameterised by typed config dataclasses
(:class:`SinrRadioConfig`, :class:`CsmaCaMacConfig`) that live as
``sinr`` / ``csma_ca`` sections on
:class:`~repro.experiments.scenarios.ScenarioConfig`, so sweep grids
address them with dotted axes (``"sinr.capture_db"``,
``"csma_ca.duty_cycle"``) exactly like the per-protocol sections.
Model equations and a unit-disk-vs-SINR comparison recipe are documented
in ``docs/physical-layer.md``; the timing semantics of the interference
bookkeeping (who counts as concurrent) are described on
:meth:`SinrRadio.reception_probability_during`.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.geo.geometry import Point, distance
from repro.geo.grid import SpatialHash
from repro.registry import register_mac, register_radio
from repro.simulation.mac import MacModel, TxPlan
from repro.simulation.radio import RadioModel

#: nominal range used when a radio is built without a ScenarioConfig
DEFAULT_RANGE_M = 250.0


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level in dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level in milliwatts to dBm."""
    if mw <= 0:
        raise ValueError("power must be positive to express in dBm")
    return 10.0 * math.log10(mw)


def sinr_db(signal_dbm: float, interferer_dbms: List[float], noise_floor_dbm: float) -> float:
    """Signal-to-interference-plus-noise ratio in dB.

    The denominator is the *power sum* of every concurrent interferer
    plus the thermal noise floor, so adding an interferer can only lower
    the result (the monotonicity the property suite locks down).
    """
    total_mw = dbm_to_mw(noise_floor_dbm) + sum(dbm_to_mw(v) for v in interferer_dbms)
    return signal_dbm - mw_to_dbm(total_mw)


# ---------------------------------------------------------------------------
# Configuration sections (dotted sweep axes: "sinr.capture_db", ...)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SinrRadioConfig:
    """Parameters of the :class:`SinrRadio` (``ScenarioConfig.sinr``).

    With ``reference_loss_db`` left ``None`` the path loss is
    *calibrated* so that the RSSI at ``ScenarioConfig.radio_range``
    equals ``sensitivity_dbm`` -- the SINR radio then has exactly the
    same connectivity disc as the unit-disk radio it replaces, and every
    difference in results is attributable to interference and capture,
    not to a different topology.
    """

    tx_power_dbm: float = 16.0          #: transmit power
    path_loss_exponent: float = 3.0     #: log-distance exponent (2=free space)
    reference_distance: float = 1.0     #: metres; path loss anchor d0
    reference_loss_db: Optional[float] = None  #: PL(d0); None = calibrate to radio_range
    sensitivity_dbm: float = -90.0      #: minimum decodable RSSI
    noise_floor_dbm: float = -100.0     #: thermal noise power
    capture_db: float = 6.0             #: minimum SINR to decode under interference
    interference_range_factor: float = 1.8  #: interferers counted within factor * range


@dataclass(frozen=True)
class CsmaCaMacConfig:
    """Parameters of the :class:`CsmaCaMac` (``ScenarioConfig.csma_ca``).

    ``duty_cycle`` is the fraction of airtime a node may occupy within
    any trailing ``duty_cycle_window`` seconds; ``1.0`` (the default)
    disables the budget.  The contention window for ``c`` contenders is
    ``cw_min << stage`` with ``stage = min(max_backoff_stage,
    bit_length(c) - 1)``, i.e. the window doubles as the contender count
    doubles, up to the configured maximum stage.
    """

    bitrate_bps: float = 2_000_000.0    #: payload bitrate (classic 802.11 figure)
    phy_overhead_s: float = 192e-6      #: preamble + PLCP header airtime
    base_latency: float = 0.001         #: propagation + processing per hop
    slot_time: float = 20e-6            #: backoff slot
    difs: float = 50e-6                 #: carrier-sense deferral before backoff
    cw_min: int = 16                    #: initial contention window (slots)
    max_backoff_stage: int = 5          #: window doublings cap: cw <= cw_min << stage
    duty_cycle: float = 1.0             #: airtime fraction per window; 1.0 = unlimited
    duty_cycle_window: float = 10.0     #: seconds of trailing window


# ---------------------------------------------------------------------------
# Per-transmission bookkeeping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransmissionRecord:
    """One frame on the air: who transmitted where, over which interval."""

    sender: int
    position: Point
    start: float
    end: float

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end and self.end > start


class InterferenceMap:
    """Active-transmission ledger with spatial-hash interferer lookup.

    :meth:`note` records a frame's on-air interval; :meth:`concurrent`
    answers "which frames overlap this interval within ``radius`` of
    this receiver?".  Lookup reuses :class:`~repro.geo.grid.SpatialHash`
    with the interference radius as the cell size, so the 3x3 cell probe
    is guaranteed to cover every interferer in range; expired records
    (ended before the current time) are pruned as new ones arrive, which
    keeps the ledger at the handful of frames genuinely in flight.
    """

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError("interference cell size must be positive")
        self._cell_size = cell_size
        self._records: List[TransmissionRecord] = []
        self._index: Optional[SpatialHash] = None

    def __len__(self) -> int:
        return len(self._records)

    def note(self, record: TransmissionRecord, now: float) -> None:
        """Record a frame; drops every record already ended at ``now``."""
        if record.end <= record.start:
            raise ValueError("transmission interval must have positive length")
        if self._records and self._records[0].end < now:
            self._records = [r for r in self._records if r.end >= now]
        self._records.append(record)
        self._index = None

    def concurrent(
        self,
        receiver_pos: Point,
        start: float,
        end: float,
        radius: float,
        exclude_sender: Optional[int] = None,
    ) -> List[TransmissionRecord]:
        """Frames overlapping ``[start, end]`` within ``radius`` of the receiver."""
        if not self._records:
            return []
        if self._index is None:
            index: SpatialHash = SpatialHash(self._cell_size)
            for record in self._records:
                index.insert(record, record.position)
            self._index = index
        return [
            record
            for record in self._index.candidates(receiver_pos)
            if record.sender != exclude_sender
            and record.overlaps(start, end)
            and distance(record.position, receiver_pos) <= radius + 1e-9
        ]


# ---------------------------------------------------------------------------
# SINR/capture radio
# ---------------------------------------------------------------------------


class SinrRadio(RadioModel):
    """Log-distance RSSI + SINR capture radio (registered as ``sinr``).

    RSSI at distance ``d`` follows the log-distance path-loss model::

        rssi(d) = tx_power - (PL(d0) + 10 * n * log10(d / d0))

    A frame is decoded iff ``rssi >= sensitivity_dbm`` *and* its SINR
    against the power sum of concurrent interferers plus the noise floor
    clears ``capture_db`` (the capture effect: the strongest of several
    colliding frames can still be received).  A node that is itself
    transmitting during the frame's interval cannot receive it
    (half-duplex).
    """

    interference_aware = True

    def __init__(
        self,
        config: Optional[SinrRadioConfig] = None,
        range_hint: float = DEFAULT_RANGE_M,
    ) -> None:
        config = config or SinrRadioConfig()
        if config.path_loss_exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if config.reference_distance <= 0:
            raise ValueError("reference distance must be positive")
        if config.interference_range_factor < 1.0:
            raise ValueError("interference_range_factor must be >= 1")
        if config.noise_floor_dbm >= config.tx_power_dbm:
            raise ValueError("noise floor must lie below the transmit power")
        if range_hint <= 0:
            raise ValueError("radio range must be positive")
        self.config = config
        n, d0 = config.path_loss_exponent, config.reference_distance
        if config.reference_loss_db is None:
            # calibrate PL(d0) so rssi(range_hint) == sensitivity: identical
            # connectivity disc to the unit-disk radio at the same range
            self.reference_loss_db = (
                config.tx_power_dbm
                - config.sensitivity_dbm
                - 10.0 * n * math.log10(max(range_hint, d0) / d0)
            )
            self._range = float(range_hint)
        else:
            self.reference_loss_db = config.reference_loss_db
            margin = config.tx_power_dbm - self.reference_loss_db - config.sensitivity_dbm
            if margin < 0:
                raise ValueError(
                    "link budget closes nowhere: tx_power - reference_loss "
                    "is already below sensitivity at the reference distance"
                )
            self._range = d0 * 10.0 ** (margin / (10.0 * n))
        self._interference_radius = self._range * config.interference_range_factor
        self._active = InterferenceMap(self._interference_radius)

    # -- link budget ---------------------------------------------------
    @property
    def nominal_range(self) -> float:
        return self._range

    @property
    def interference_radius(self) -> float:
        """Distance within which a concurrent sender counts as an interferer."""
        return self._interference_radius

    def rssi_at(self, d: float) -> float:
        """Received signal strength (dBm) at distance ``d`` metres."""
        d = max(d, self.config.reference_distance)
        path_loss = self.reference_loss_db + 10.0 * self.config.path_loss_exponent * math.log10(
            d / self.config.reference_distance
        )
        return self.config.tx_power_dbm - path_loss

    def in_range(self, a: Point, b: Point) -> bool:
        return distance(a, b) <= self._range + 1e-9

    def reception_probability(self, a: Point, b: Point) -> float:
        """Interference-free reception: the link budget against noise alone."""
        d = distance(a, b)
        if d > self._range + 1e-9:
            return 0.0
        signal = self.rssi_at(d)
        if signal < self.config.sensitivity_dbm - 1e-9:
            return 0.0
        return 1.0 if sinr_db(signal, [], self.config.noise_floor_dbm) >= self.config.capture_db else 0.0

    # -- concurrent-transmission bookkeeping ---------------------------
    def note_transmission(self, sender: int, position: Point, start: float, end: float) -> None:
        self._active.note(TransmissionRecord(sender, position, start, end), now=start)

    def reception_probability_during(
        self,
        sender: int,
        sender_pos: Point,
        receiver: int,
        receiver_pos: Point,
        start: float,
        end: float,
    ) -> float:
        """Capture decision against the frames on the air over ``[start, end]``.

        Interference is evaluated against transmissions *already noted*
        when this frame is decided: the transmit path notes each frame
        before deciding its receivers, so frames sent at the same
        simulated instant interfere with every frame decided after them.
        (Capture is therefore resolved in decision order -- a
        deterministic one-sided approximation of symmetric collision
        resolution that keeps the classic radios' draw sequence intact.)
        """
        d = distance(sender_pos, receiver_pos)
        if d > self._range + 1e-9:
            return 0.0
        signal = self.rssi_at(d)
        if signal < self.config.sensitivity_dbm - 1e-9:
            return 0.0
        interferers = self._active.concurrent(
            receiver_pos, start, end, self._interference_radius, exclude_sender=sender
        )
        if any(record.sender == receiver for record in interferers):
            return 0.0  # half-duplex: a transmitting node cannot receive
        interference = [self.rssi_at(distance(r.position, receiver_pos)) for r in interferers]
        ratio = sinr_db(signal, interference, self.config.noise_floor_dbm)
        return 1.0 if ratio >= self.config.capture_db else 0.0


# ---------------------------------------------------------------------------
# CSMA/CA MAC
# ---------------------------------------------------------------------------


class CsmaCaMac(MacModel):
    """Slotted CSMA/CA link layer (registered as ``csma_ca``).

    Frame airtime is ``phy_overhead_s + 8 * size_bytes / bitrate_bps``
    (strictly increasing in frame size, strictly decreasing in bitrate).
    Before a frame, the sender defers ``difs`` plus a uniformly drawn
    number of backoff slots from ``[0, cw)``; the contention window
    doubles with the contender population up to ``max_backoff_stage``.
    The collision probability for ``c`` contenders picking slots from a
    ``cw``-slot window is ``1 - (1 - 1/cw) ** c`` -- in [0, 1] by
    construction, clamped anyway to honour the :class:`MacModel`
    contract.  An optional duty-cycle budget caps each sender's airtime
    over a sliding window; a frame over budget is denied outright
    (``TxPlan.proceed=False``, surfaced as ``drops_duty_cycle``).
    """

    def __init__(self, config: Optional[CsmaCaMacConfig] = None) -> None:
        config = config or CsmaCaMacConfig()
        if config.bitrate_bps <= 0:
            raise ValueError("bitrate must be positive")
        if config.phy_overhead_s < 0 or config.base_latency < 0:
            raise ValueError("latency parameters must be non-negative")
        if config.slot_time < 0 or config.difs < 0:
            raise ValueError("slot_time and difs must be non-negative")
        if config.cw_min < 1:
            raise ValueError("cw_min must be >= 1")
        if config.max_backoff_stage < 0:
            raise ValueError("max_backoff_stage must be >= 0")
        if not 0 < config.duty_cycle <= 1:
            raise ValueError("duty_cycle must be in (0, 1] (1 disables the budget)")
        if config.duty_cycle_window <= 0:
            raise ValueError("duty_cycle_window must be positive")
        self.config = config
        #: per-sender (start_time, airtime) ledger for the duty-cycle window
        self._usage: Dict[int, Deque[Tuple[float, float]]] = {}
        #: frames denied by the duty-cycle budget (mirrored into NetworkStats)
        self.duty_cycle_denials = 0

    # -- timing --------------------------------------------------------
    def airtime(self, size_bytes: int) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return self.config.phy_overhead_s + (size_bytes * 8.0) / self.config.bitrate_bps

    def contention_window(self, contenders: int) -> int:
        """Slots in the backoff window for ``contenders`` rivals (capped)."""
        if contenders < 0:
            raise ValueError("contenders must be non-negative")
        stage = min(self.config.max_backoff_stage, max(0, int(contenders).bit_length() - 1))
        return self.config.cw_min << stage

    def transmission_delay(self, size_bytes: int, contenders: int) -> float:
        """Deterministic expected delay: mean backoff of ``(cw - 1) / 2`` slots."""
        cw = self.contention_window(contenders)
        return (
            self.config.base_latency
            + self.config.difs
            + 0.5 * (cw - 1) * self.config.slot_time
            + self.airtime(size_bytes)
        )

    def loss_probability(self, contenders: int) -> float:
        cw = self.contention_window(contenders)
        collision = 1.0 - (1.0 - 1.0 / cw) ** contenders
        return min(1.0, max(0.0, collision))

    # -- per-frame plan ------------------------------------------------
    def plan_transmission(
        self,
        sender: int,
        now: float,
        size_bytes: int,
        contenders: int,
        rng: random.Random,
    ) -> TxPlan:
        airtime = self.airtime(size_bytes)
        if not self._admit(sender, now, airtime):
            self.duty_cycle_denials += 1
            return TxPlan(proceed=False, delay=0.0, loss_probability=1.0, airtime=airtime)
        slots = rng.randrange(self.contention_window(contenders))
        delay = (
            self.config.base_latency
            + self.config.difs
            + slots * self.config.slot_time
            + airtime
        )
        return TxPlan(
            proceed=True,
            delay=delay,
            loss_probability=self.loss_probability(contenders),
            airtime=airtime,
        )

    def _admit(self, sender: int, now: float, airtime: float) -> bool:
        """Charge ``airtime`` against the sender's sliding duty-cycle window.

        Usage is committed at admission time, so for any time ``t`` the
        airtime of frames started within ``(t - window, t]`` never
        exceeds ``duty_cycle * window`` -- the invariant the property
        suite checks over arbitrary windows.
        """
        if self.config.duty_cycle >= 1.0:
            return True
        window = self.config.duty_cycle_window
        ledger = self._usage.setdefault(sender, deque())
        while ledger and ledger[0][0] <= now - window:
            ledger.popleft()
        used = sum(used_airtime for _start, used_airtime in ledger)
        if used + airtime > self.config.duty_cycle * window + 1e-12:
            return False
        ledger.append((now, airtime))
        return True

    def window_usage(self, sender: int, now: float) -> float:
        """Airtime ``sender`` has committed within the trailing window."""
        window = self.config.duty_cycle_window
        return sum(
            airtime
            for start, airtime in self._usage.get(sender, ())
            if start > now - window
        )


# ---------------------------------------------------------------------------
# Registered factories
# ---------------------------------------------------------------------------


@register_radio("sinr")
def _sinr_radio(config=None) -> SinrRadio:
    """Registered factory: SINR/capture radio calibrated to ``config.radio_range``."""
    if config is None:
        return SinrRadio()
    return SinrRadio(config.sinr, range_hint=config.radio_range)


@register_mac("csma_ca")
def _csma_ca_mac(config=None) -> CsmaCaMac:
    """Registered factory: slotted CSMA/CA from the ``csma_ca`` config section."""
    return CsmaCaMac() if config is None else CsmaCaMac(config.csma_ca)
