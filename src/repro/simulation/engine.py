"""Discrete-event simulation engine.

A minimal but complete event-driven kernel: events are (time, priority,
sequence, callback) tuples kept in a binary heap; the simulator pops them
in time order and advances a virtual clock.  Periodic timers are provided
as a convenience for protocol beaconing and mobility epochs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """One scheduled event.

    Ordering is by ``(time, priority, sequence)`` so simultaneous events
    run in a deterministic order (lower priority value first, then FIFO).
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation kernel with a floating-point clock (seconds)."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = Event(self._now + delay, priority, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now ({self._now})")
        event = Event(time, priority, next(self._sequence), callback)
        heapq.heappush(self._heap, event)
        return event

    def run_until(self, end_time: float) -> None:
        """Run events until the clock would pass ``end_time``.

        The clock is left at ``end_time`` even if the heap drains earlier,
        so back-to-back ``run_until`` calls compose naturally.
        """
        if end_time < self._now:
            raise ValueError(f"end_time {end_time} is in the past (now={self._now})")
        self._running = True
        while self._heap and self._running:
            if self._heap[0].time > end_time:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
        self._now = max(self._now, end_time)
        self._running = False

    def run(self, duration: float) -> None:
        """Run for ``duration`` simulated seconds from the current time."""
        self.run_until(self._now + duration)

    def stop(self) -> None:
        """Stop a running :meth:`run_until` after the current event returns."""
        self._running = False

    def drain(self, max_events: Optional[int] = None) -> int:
        """Run every queued event regardless of time; returns events executed.

        Mainly useful in unit tests that want to flush all pending work.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = max(self._now, event.time)
            event.callback()
            executed += 1
            self._processed += 1
        return executed


class PeriodicTimer:
    """Repeatedly invokes a callback every ``period`` seconds.

    The first invocation happens after ``initial_delay`` (default: one full
    period, optionally jittered to de-synchronise many nodes' beacons).
    """

    def __init__(
        self,
        simulator: Simulator,
        period: float,
        callback: Callable[[], None],
        initial_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
        priority: int = 0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and rng is None:
            raise ValueError("rng required when jitter > 0")
        self._simulator = simulator
        self.period = period
        self.callback = callback
        self.jitter = jitter
        self._rng = rng
        self._priority = priority
        self._stopped = False
        self._event: Optional[Event] = None
        first = period if initial_delay is None else initial_delay
        first += self._draw_jitter()
        self._event = simulator.schedule(first, self._fire, priority)

    def _draw_jitter(self) -> float:
        if self.jitter > 0:
            return self._rng.uniform(0.0, self.jitter)
        return 0.0

    def _fire(self) -> None:
        if self._stopped:
            return
        self.callback()
        if not self._stopped:
            self._event = self._simulator.schedule(
                self.period + self._draw_jitter(), self._fire, self._priority
            )

    def stop(self) -> None:
        """Stop the timer; no further invocations will occur."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
