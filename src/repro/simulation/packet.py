"""Packets exchanged between simulated nodes.

A packet carries a protocol-defined ``kind`` and a free-form ``headers``
dictionary (the simulated header fields, e.g. an encapsulated multicast
tree) plus an opaque ``payload``.  Sizes are tracked in bytes so control
overhead can be reported both in messages and in bytes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

_packet_ids = itertools.count(1)


class PacketKind(enum.Enum):
    """Coarse classification used by the metrics layer."""

    DATA = "data"           #: application multicast payload
    CONTROL = "control"     #: protocol control traffic (beacons, summaries)
    MANAGEMENT = "management"  #: clustering / neighbour discovery


@dataclass
class Packet:
    """A simulated packet.

    ``uid`` identifies the logical packet end-to-end (copies made while
    forwarding keep the uid, so delivery ratio is counted per original
    packet).  ``hops`` counts physical transmissions experienced by this
    copy.
    """

    kind: PacketKind
    protocol: str
    msg_type: str
    source: int
    group: Optional[int] = None
    destination: Optional[int] = None
    payload: Any = None
    headers: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 64
    created_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_packet_ids))
    hops: int = 0
    logical_hops: int = 0

    def copy_for_forwarding(self) -> "Packet":
        """Duplicate the packet for forwarding along another branch.

        The uid, creation time and hop counters are preserved; the headers
        dictionary is shallow-copied so a forwarder can rewrite its own
        entries (e.g. re-encapsulate a multicast sub-tree) without
        affecting sibling copies.
        """
        return replace(self, headers=dict(self.headers))

    def age(self, now: float) -> float:
        """Seconds since the packet was created."""
        return now - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Packet(uid={self.uid}, {self.protocol}/{self.msg_type}, "
            f"src={self.source}, group={self.group}, dst={self.destination}, "
            f"hops={self.hops})"
        )


def control_packet(
    protocol: str,
    msg_type: str,
    source: int,
    size_bytes: int,
    now: float,
    destination: Optional[int] = None,
    headers: Optional[Dict[str, Any]] = None,
) -> Packet:
    """Convenience constructor for control-plane packets."""
    return Packet(
        kind=PacketKind.CONTROL,
        protocol=protocol,
        msg_type=msg_type,
        source=source,
        destination=destination,
        headers=headers or {},
        size_bytes=size_bytes,
        created_at=now,
    )


def data_packet(
    protocol: str,
    source: int,
    group: int,
    payload: Any,
    size_bytes: int,
    now: float,
    headers: Optional[Dict[str, Any]] = None,
) -> Packet:
    """Convenience constructor for application data packets."""
    return Packet(
        kind=PacketKind.DATA,
        protocol=protocol,
        msg_type="data",
        source=source,
        group=group,
        payload=payload,
        headers=headers or {},
        size_bytes=size_bytes,
        created_at=now,
    )
