"""Multicast group membership management with churn.

Group membership in MANET multicast evaluations is dynamic: members join
and leave over time ("Each MN updates its Local-Membership when it joins
or leaves a multicast group", paper Figure 5 step 1).  The
:class:`MulticastGroupManager` assigns initial memberships and optionally
drives a Poisson join/leave churn process during the simulation.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.simulation.network import Network


class GroupEvent(enum.Enum):
    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True, slots=True)
class GroupChange:
    """A single membership change, recorded for convergence analysis."""

    time: float
    node_id: int
    group: int
    event: GroupEvent


class MulticastGroupManager:
    """Creates multicast groups and (optionally) churns their membership."""

    def __init__(self, network: Network, seed: Optional[int] = None) -> None:
        self.network = network
        self.rng = random.Random(seed)
        self.groups: Dict[int, Set[int]] = {}
        self.history: List[GroupChange] = []

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def create_group(self, group: int, members: Iterable[int]) -> None:
        """Create a group and join the given nodes immediately."""
        if group in self.groups:
            raise ValueError(f"group {group} already exists")
        self.groups[group] = set()
        for node_id in members:
            self.join(group, node_id)

    def create_random_group(
        self, group: int, size: int, candidates: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Create a group with ``size`` members sampled from ``candidates``."""
        pool = list(candidates) if candidates is not None else list(self.network.nodes.keys())
        if size > len(pool):
            raise ValueError(f"cannot pick {size} members from {len(pool)} candidates")
        members = self.rng.sample(pool, size)
        self.create_group(group, members)
        return members

    # ------------------------------------------------------------------
    # membership operations
    # ------------------------------------------------------------------
    def join(self, group: int, node_id: int) -> None:
        self.groups.setdefault(group, set())
        if node_id in self.groups[group]:
            return
        self.groups[group].add(node_id)
        self.network.node(node_id).join_group(group)
        self.history.append(
            GroupChange(self.network.simulator.now, node_id, group, GroupEvent.JOIN)
        )

    def leave(self, group: int, node_id: int) -> None:
        if group not in self.groups or node_id not in self.groups[group]:
            return
        self.groups[group].discard(node_id)
        self.network.node(node_id).leave_group(group)
        self.history.append(
            GroupChange(self.network.simulator.now, node_id, group, GroupEvent.LEAVE)
        )

    def members(self, group: int) -> Set[int]:
        return set(self.groups.get(group, set()))

    def group_ids(self) -> List[int]:
        return sorted(self.groups.keys())

    # ------------------------------------------------------------------
    # churn
    # ------------------------------------------------------------------
    def start_churn(
        self,
        group: int,
        rate: float,
        candidates: Optional[Sequence[int]] = None,
        min_members: int = 1,
        stop_time: Optional[float] = None,
    ) -> None:
        """Drive Poisson join/leave churn on ``group``.

        ``rate`` is the expected number of membership changes per second.
        Each change is a leave of a random current member or a join of a
        random non-member (chosen with equal probability when both are
        possible, respecting ``min_members``).
        """
        if rate <= 0:
            raise ValueError("churn rate must be positive")
        if group not in self.groups:
            raise ValueError(f"group {group} does not exist")
        pool = list(candidates) if candidates is not None else list(self.network.nodes.keys())

        def churn_step() -> None:
            now = self.network.simulator.now
            if stop_time is not None and now > stop_time:
                return
            members = self.groups[group]
            non_members = [n for n in pool if n not in members]
            can_leave = len(members) > min_members
            can_join = bool(non_members)
            if can_leave and (not can_join or self.rng.random() < 0.5):
                node_id = self.rng.choice(sorted(members))
                self.leave(group, node_id)
            elif can_join:
                node_id = self.rng.choice(non_members)
                self.join(group, node_id)
            gap = self.rng.expovariate(rate)
            self.network.simulator.schedule(gap, churn_step)

        first_gap = self.rng.expovariate(rate)
        self.network.simulator.schedule(first_gap, churn_step)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def changes_since(self, time: float) -> List[GroupChange]:
        return [c for c in self.history if c.time >= time]

    def churn_rate_observed(self, window: float) -> float:
        """Observed membership changes per second over the trailing window."""
        if window <= 0:
            raise ValueError("window must be positive")
        now = self.network.simulator.now
        recent = [c for c in self.history if c.time >= now - window]
        return len(recent) / window
