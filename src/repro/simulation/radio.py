"""Radio propagation / reception models.

"Two MNs communicate directly if they are within the radio transmission
range of each other" (paper Section 1) -- the unit-disk model.  A
log-distance shadowing model is also provided for sensitivity experiments
where connectivity is probabilistic near the nominal range edge.

Both models are registered with :func:`repro.registry.register_radio`
(``unit_disk`` and ``log_distance``), so a scenario selects its radio by
name (``ScenarioConfig.radio``) and grids can sweep it like any other
axis.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from repro.geo.geometry import Point, distance
from repro.registry import register_radio


class RadioModel(abc.ABC):
    """Decides whether a transmission between two positions is receivable."""

    #: True for radios that model concurrent-transmission interference
    #: (e.g. :class:`repro.simulation.phy.SinrRadio`); such radios are
    #: told about every frame's on-air interval via
    #: :meth:`note_transmission`.
    interference_aware = False

    @abc.abstractmethod
    def in_range(self, a: Point, b: Point) -> bool:
        """True if a node at ``b`` can possibly hear a node at ``a``."""

    @abc.abstractmethod
    def reception_probability(self, a: Point, b: Point) -> float:
        """Probability that one frame sent at ``a`` is decoded at ``b``."""

    @property
    @abc.abstractmethod
    def nominal_range(self) -> float:
        """Nominal radio range in metres (used for neighbour-grid sizing)."""

    def note_transmission(
        self, sender: int, position: Point, start: float, end: float
    ) -> None:
        """Inform the radio that ``sender`` occupies the medium over an interval.

        The transmit path calls this for every frame (retries included)
        before deciding its receivers.  Interference-blind radios ignore
        it; interference-aware radios record the interval for SINR
        bookkeeping.
        """

    def reception_probability_during(
        self,
        sender: int,
        sender_pos: Point,
        receiver: int,
        receiver_pos: Point,
        start: float,
        end: float,
    ) -> float:
        """Reception probability given the frames concurrently on the air.

        Default: delegate to the interval-blind
        :meth:`reception_probability` -- classic radios see exactly the
        arithmetic (and therefore the byte-identical artifacts) they
        produced before the transmit path became interference-aware.
        """
        return self.reception_probability(sender_pos, receiver_pos)


class UnitDiskRadio(RadioModel):
    """Deterministic unit-disk radio: perfect reception within ``range_m``."""

    def __init__(self, range_m: float = 250.0) -> None:
        if range_m <= 0:
            raise ValueError("radio range must be positive")
        self.range_m = range_m

    @property
    def nominal_range(self) -> float:
        return self.range_m

    def in_range(self, a: Point, b: Point) -> bool:
        return distance(a, b) <= self.range_m + 1e-9

    def reception_probability(self, a: Point, b: Point) -> float:
        return 1.0 if self.in_range(a, b) else 0.0


class LogDistanceRadio(RadioModel):
    """Log-distance path-loss radio with a soft cutoff.

    Reception probability is 1 up to ``reliable_fraction * range_m``, then
    decays smoothly to 0 at ``max_fraction * range_m`` following the
    received-power margin implied by a path-loss exponent ``exponent``.
    This captures the grey zone at the edge of the radio range without a
    full SINR model, which is all the HVDB protocol's behaviour depends on.
    """

    def __init__(
        self,
        range_m: float = 250.0,
        exponent: float = 3.0,
        reliable_fraction: float = 0.8,
        max_fraction: float = 1.2,
    ) -> None:
        if range_m <= 0:
            raise ValueError("radio range must be positive")
        if exponent <= 0:
            raise ValueError("path-loss exponent must be positive")
        if not 0 < reliable_fraction <= 1.0:
            raise ValueError("reliable_fraction must be in (0, 1]")
        if max_fraction < 1.0:
            raise ValueError("max_fraction must be >= 1.0")
        self.range_m = range_m
        self.exponent = exponent
        self.reliable_fraction = reliable_fraction
        self.max_fraction = max_fraction

    @property
    def nominal_range(self) -> float:
        return self.range_m * self.max_fraction

    def in_range(self, a: Point, b: Point) -> bool:
        return distance(a, b) <= self.range_m * self.max_fraction + 1e-9

    def reception_probability(self, a: Point, b: Point) -> float:
        d = distance(a, b)
        reliable = self.range_m * self.reliable_fraction
        cutoff = self.range_m * self.max_fraction
        if d <= reliable:
            return 1.0
        if d >= cutoff:
            return 0.0
        # smooth decay shaped by the path-loss exponent: steeper exponents
        # give a narrower grey zone.
        frac = (d - reliable) / (cutoff - reliable)
        return max(0.0, min(1.0, (1.0 - frac) ** self.exponent))


@register_radio("unit_disk")
def _unit_disk_radio(config=None) -> UnitDiskRadio:
    """Registered factory: deterministic unit disk at ``config.radio_range``."""
    return UnitDiskRadio() if config is None else UnitDiskRadio(config.radio_range)


@register_radio("log_distance")
def _log_distance_radio(config=None) -> LogDistanceRadio:
    """Registered factory: log-distance shadowing at ``config.radio_range``."""
    return LogDistanceRadio() if config is None else LogDistanceRadio(config.radio_range)
