"""The pluggable protocol-stack interface scenario assembly builds on.

A :class:`ProtocolStack` owns everything one multicast protocol needs on
top of a bare :class:`~repro.simulation.network.Network`: per-node agents,
any shared state (the HVDB stack wires clustering, the logical address
space and the backbone model), and the protocol-level reporting seams the
experiment harness consumes (``backbone_nodes`` for the backbone
load-balance view, ``aggregate_stats`` for protocol counters).

Stacks are registered by name through
:func:`repro.registry.register_protocol`;
:func:`~repro.experiments.scenarios.build_scenario` resolves
``ScenarioConfig.protocol`` against that registry, instantiates the stack
with no arguments and calls :meth:`ProtocolStack.install` -- so adding a
protocol to every sweep, benchmark and CLI surface is one decorated class,
no harness edits.

:class:`AgentStack` is the convenience base for the common
"one agent per node" shape every baseline has: subclasses implement
:meth:`AgentStack.make_agent` and declare the integer counters to sum in
:attr:`AgentStack.stat_fields`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, ClassVar, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.agent import ProtocolAgent
    from repro.simulation.network import Network


class ProtocolStack(abc.ABC):
    """Everything one protocol contributes to a built scenario.

    Lifecycle: ``stack = StackClass()`` then ``stack.install(network,
    config)`` (``config`` is the ``ScenarioConfig``, or ``None`` when a
    test wires the stack directly), then ``stack.start()`` once the
    scenario should begin.  The default ``start`` just starts the network;
    stacks with their own services (e.g. clustering) override it.
    """

    #: registered protocol name; also the ``Packet.protocol`` the stack's
    #: agents speak and the name traffic sources address
    name: ClassVar[str] = ""

    network: Optional["Network"] = None

    @abc.abstractmethod
    def install(self, network: "Network", config: Optional[Any] = None) -> None:
        """Attach agents (and any shared state) to every node of ``network``."""

    def start(self) -> None:
        """Start the network (and any protocol-owned services)."""
        assert self.network is not None, "install() must run before start()"
        self.network.start()

    def backbone_nodes(self) -> Optional[List[int]]:
        """Backbone node ids, or ``None`` for protocols without a backbone."""
        return None

    def aggregate_stats(self) -> Dict[str, int]:
        """Protocol counters summed over the whole network."""
        return {}


class AgentStack(ProtocolStack):
    """A stack that is exactly one protocol agent per node.

    Subclasses implement :meth:`make_agent` and list their agents' integer
    counter attributes in :attr:`stat_fields`; ``aggregate_stats`` sums
    those over every node.  Stacks whose agents ride on the geographic
    unicast substrate set :attr:`uses_geo_unicast` and get a
    :class:`~repro.unicast.router.GeoUnicastAgent` installed underneath.
    """

    #: integer attributes of the per-node agent summed by ``aggregate_stats``
    stat_fields: ClassVar[Tuple[str, ...]] = ()
    #: install a geo-unicast agent under the protocol agent on every node
    uses_geo_unicast: ClassVar[bool] = False

    def __init__(self) -> None:
        self.network = None
        self.agents: Dict[int, "ProtocolAgent"] = {}

    @abc.abstractmethod
    def make_agent(self, config: Optional[Any] = None) -> "ProtocolAgent":
        """Build one per-node agent from the scenario config (or defaults)."""

    def install(self, network: "Network", config: Optional[Any] = None) -> None:
        # local import: unicast builds on simulation, so importing it at
        # module load would invert the layering
        from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

        self.network = network
        for node in network.nodes.values():
            if self.uses_geo_unicast and not node.has_agent(GEO_PROTOCOL):
                node.attach_agent(GeoUnicastAgent())
            agent = self.make_agent(config)
            node.attach_agent(agent)
            self.agents[node.node_id] = agent

    def aggregate_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {name: 0 for name in self.stat_fields}
        for agent in self.agents.values():
            for name in self.stat_fields:
                totals[name] += getattr(agent, name)
        return totals
