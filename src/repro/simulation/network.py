"""The simulated MANET: nodes + mobility + radio + MAC + bookkeeping.

The :class:`Network` owns the simulation kernel, moves nodes according to
the configured mobility model, answers neighbourhood queries through a
spatial hash, carries out physical transmissions (applying radio reception
probability, MAC delay and loss) and keeps the global delivery ledger the
metrics layer reads.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.geo.area import Area
from repro.geo.geometry import Point, Vector
from repro.geo.grid import SpatialHash
from repro.mobility.base import MobilityModel
from repro.registry import MACS, RADIOS
from repro.simulation.engine import PeriodicTimer, Simulator
from repro.simulation.mac import MacModel
from repro.simulation.node import MobileNode
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.radio import RadioModel

#: registered names resolved when a NetworkConfig omits radio/mac
DEFAULT_RADIO = "unit_disk"
DEFAULT_MAC = "csma"


@dataclass
class NetworkConfig:
    """Static configuration of a simulated network.

    ``radio`` and ``mac`` are model *instances* (scenario assembly builds
    them from the registered names in ``ScenarioConfig``); left unset,
    they resolve through the :mod:`repro.registry` defaults
    (:data:`DEFAULT_RADIO` / :data:`DEFAULT_MAC`) rather than hard-coding
    any concrete class here.
    """

    area: Area
    radio: Optional[RadioModel] = None
    mac: Optional[MacModel] = None
    mobility_step: float = 1.0       #: seconds between mobility updates
    seed: Optional[int] = None       #: seed for loss/jitter randomness
    max_packet_hops: int = 64        #: safety TTL on physical hops
    unicast_retries: int = 3         #: link-layer ARQ attempts for unicast frames

    def __post_init__(self) -> None:
        # bootstrap=False: the default entries are registered by
        # radio.py/mac.py, imported above -- resolving them must not pull
        # the experiments layer into bare simulation-object construction
        if self.radio is None:
            self.radio = RADIOS.get(DEFAULT_RADIO, bootstrap=False)(None)
        if self.mac is None:
            self.mac = MACS.get(DEFAULT_MAC, bootstrap=False)(None)


@dataclass
class DeliveryRecord:
    """Ledger entry for one originated multicast data packet."""

    uid: int
    group: int
    source: int
    sent_at: float
    intended: Set[int]
    delivered: Dict[int, float] = field(default_factory=dict)

    @property
    def delivery_ratio(self) -> float:
        if not self.intended:
            return 1.0
        return len(self.delivered) / len(self.intended)

    def delays(self) -> List[float]:
        return [t - self.sent_at for t in self.delivered.values()]


@dataclass
class NetworkStats:
    """Aggregate transmission counters (physical transmissions)."""

    transmissions: int = 0
    transmitted_bytes: int = 0
    control_transmissions: int = 0
    control_bytes: int = 0
    data_transmissions: int = 0
    data_bytes: int = 0
    receptions: int = 0
    drops_out_of_range: int = 0
    drops_loss: int = 0
    drops_ttl: int = 0
    drops_duty_cycle: int = 0        #: frames the MAC refused (duty-cycle budget)
    airtime_seconds: float = 0.0     #: total medium occupancy, retries included


class Network:
    """A mobile ad hoc network under simulation."""

    def __init__(
        self,
        config: NetworkConfig,
        mobility: MobilityModel,
        simulator: Optional[Simulator] = None,
    ) -> None:
        self.config = config
        self.mobility = mobility
        self.simulator = simulator or Simulator()
        self.rng = random.Random(config.seed)
        self.nodes: Dict[int, MobileNode] = {}
        self.stats = NetworkStats()
        self.deliveries: Dict[int, DeliveryRecord] = {}
        self._neighbor_cache: Optional[Dict[int, List[int]]] = None
        self._mobility_timer: Optional[PeriodicTimer] = None
        self._started = False

    # ------------------------------------------------------------------
    # topology construction
    # ------------------------------------------------------------------
    def add_node(self, node: MobileNode) -> MobileNode:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        if node.node_id not in self.mobility.node_ids:
            raise ValueError(
                f"node {node.node_id} has no mobility state; "
                "create the mobility model with all node ids first"
            )
        node.bind_network(self)
        self.nodes[node.node_id] = node
        state = self.mobility.state(node.node_id)
        node.location_service.record(state.position, state.velocity, self.simulator.now)
        return node

    def add_nodes(self, nodes: Iterable[MobileNode]) -> None:
        for node in nodes:
            self.add_node(node)

    def node(self, node_id: int) -> MobileNode:
        return self.nodes[node_id]

    def alive_nodes(self) -> List[MobileNode]:
        return [n for n in self.nodes.values() if n.alive]

    # ------------------------------------------------------------------
    # positions / neighbours
    # ------------------------------------------------------------------
    def position_of(self, node_id: int) -> Point:
        return self.mobility.position(node_id)

    def velocity_of(self, node_id: int) -> Vector:
        return self.mobility.velocity(node_id)

    def neighbors_of(self, node_id: int) -> List[int]:
        """Alive nodes currently within radio range of ``node_id``."""
        cache = self._neighbor_table()
        return list(cache.get(node_id, []))

    def are_neighbors(self, a: int, b: int) -> bool:
        return b in self._neighbor_table().get(a, [])

    def _invalidate_neighbors(self) -> None:
        self._neighbor_cache = None

    def _neighbor_table(self) -> Dict[int, List[int]]:
        if self._neighbor_cache is not None:
            return self._neighbor_cache
        radio = self.config.radio
        index: SpatialHash[int] = SpatialHash(radio.nominal_range)
        positions: Dict[int, Point] = {}
        for node_id, node in self.nodes.items():
            if not node.alive:
                continue
            pos = self.mobility.position(node_id)
            positions[node_id] = pos
            index.insert(node_id, pos)
        table: Dict[int, List[int]] = {}
        for node_id, pos in positions.items():
            table[node_id] = [
                other
                for other in index.candidates(pos)
                if other != node_id and radio.in_range(pos, positions[other])
            ]
        self._neighbor_cache = table
        return table

    def connectivity_components(self) -> List[Set[int]]:
        """Connected components of the current physical topology."""
        table = self._neighbor_table()
        remaining = set(table.keys())
        components: List[Set[int]] = []
        while remaining:
            start = remaining.pop()
            comp = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for nb in table.get(current, []):
                    if nb not in comp:
                        comp.add(nb)
                        stack.append(nb)
            components.append(comp)
            remaining -= comp
        return components

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True once :meth:`start` has run (agents notified, mobility ticking)."""
        return self._started

    def start(self) -> None:
        """Start mobility updates and notify every agent."""
        if self._started:
            raise RuntimeError("network already started")
        self._started = True
        self._mobility_timer = PeriodicTimer(
            self.simulator,
            self.config.mobility_step,
            self._mobility_tick,
            initial_delay=self.config.mobility_step,
            priority=-10,
        )
        for node in self.nodes.values():
            for agent in node.agents:
                agent.on_start()

    def run(self, duration: float) -> None:
        """Start (if needed) and run for ``duration`` simulated seconds."""
        if not self._started:
            self.start()
        self.simulator.run(duration)

    def stop(self) -> None:
        if self._mobility_timer is not None:
            self._mobility_timer.stop()
        for node in self.nodes.values():
            for agent in node.agents:
                agent.on_stop()

    def _mobility_tick(self) -> None:
        self.mobility.advance(self.config.mobility_step)
        now = self.simulator.now
        for node_id, node in self.nodes.items():
            state = self.mobility.state(node_id)
            node.location_service.record(state.position, state.velocity, now)
        self._invalidate_neighbors()

    # ------------------------------------------------------------------
    # physical transmission
    # ------------------------------------------------------------------
    def transmit(
        self, sender: int, packet: Packet, destination: Optional[int] = None
    ) -> None:
        """Carry out one physical transmission (broadcast or unicast).

        The MAC resolves the frame into a :class:`~repro.simulation.mac.
        TxPlan` (delay, loss probability, airtime, or an outright
        duty-cycle denial); the radio is told about the frame's on-air
        interval before reception at each candidate receiver is decided,
        so interference-aware radios can hold every concurrent frame
        against it.  The delivery is scheduled after the MAC delay.
        """
        sender_node = self.nodes[sender]
        if not sender_node.alive:
            return
        if packet.hops >= self.config.max_packet_hops:
            self.stats.drops_ttl += 1
            return
        sender_pos = self.mobility.position(sender)
        neighbor_ids = self.neighbors_of(sender)
        contenders = len(neighbor_ids)
        now = self.simulator.now
        radio = self.config.radio
        plan = self.config.mac.plan_transmission(
            sender, now, packet.size_bytes, contenders, self.rng
        )
        if not plan.proceed:
            self.stats.drops_duty_cycle += 1
            return
        self._count_transmission(packet)
        self.stats.airtime_seconds += plan.airtime
        radio.note_transmission(sender, sender_pos, now, now + plan.airtime)
        delay = plan.delay
        mac_loss = plan.loss_probability

        if destination is not None:
            targets = [destination] if destination in neighbor_ids else []
            if not targets:
                self.stats.drops_out_of_range += 1
        else:
            targets = neighbor_ids

        # Unicast frames benefit from link-layer ARQ (802.11-style retries);
        # broadcast frames are fire-and-forget.
        attempts = 1 + (self.config.unicast_retries if destination is not None else 0)
        for target in targets:
            receiver = self.nodes.get(target)
            if receiver is None or not receiver.alive:
                continue
            target_pos = self.mobility.position(target)
            total_delay = delay
            received = False
            for attempt in range(attempts):
                attempt_start = now + attempt * delay
                p_rx = radio.reception_probability_during(
                    sender,
                    sender_pos,
                    target,
                    target_pos,
                    attempt_start,
                    attempt_start + plan.airtime,
                )
                if self.rng.random() < p_rx and self.rng.random() >= mac_loss:
                    received = True
                    break
                # a failed attempt costs another frame time (and is counted
                # as an extra physical transmission occupying the medium)
                if attempt + 1 < attempts:
                    total_delay += delay
                    self._count_transmission(packet)
                    self.stats.airtime_seconds += plan.airtime
                    retry_start = now + (attempt + 1) * delay
                    radio.note_transmission(
                        sender, sender_pos, retry_start, retry_start + plan.airtime
                    )
            if not received:
                self.stats.drops_loss += 1
                continue
            copy = packet.copy_for_forwarding()
            copy.hops += 1
            self.simulator.schedule(
                total_delay, lambda r=receiver, c=copy, s=sender: self._deliver(r, c, s)
            )

    def _deliver(self, receiver: MobileNode, packet: Packet, sender: int) -> None:
        self.stats.receptions += 1
        receiver.deliver(packet, sender)

    def _count_transmission(self, packet: Packet) -> None:
        self.stats.transmissions += 1
        self.stats.transmitted_bytes += packet.size_bytes
        if packet.kind is PacketKind.DATA:
            self.stats.data_transmissions += 1
            self.stats.data_bytes += packet.size_bytes
        else:
            self.stats.control_transmissions += 1
            self.stats.control_bytes += packet.size_bytes

    # ------------------------------------------------------------------
    # delivery ledger
    # ------------------------------------------------------------------
    def register_data_packet(self, packet: Packet, intended: Iterable[int]) -> None:
        """Record an originated multicast data packet and its intended receivers."""
        intended_set = {i for i in intended if i != packet.source}
        self.deliveries[packet.uid] = DeliveryRecord(
            uid=packet.uid,
            group=packet.group if packet.group is not None else -1,
            source=packet.source,
            sent_at=self.simulator.now,
            intended=intended_set,
        )

    def note_delivery(self, packet: Packet, node_id: int) -> None:
        """Record that ``node_id`` received application data packet ``packet``."""
        record = self.deliveries.get(packet.uid)
        if record is None:
            return
        if node_id in record.intended and node_id not in record.delivered:
            record.delivered[node_id] = self.simulator.now

    def group_members(self, group: int) -> List[int]:
        """Node ids currently joined to ``group`` (alive nodes only)."""
        return [
            node_id
            for node_id, node in self.nodes.items()
            if node.alive and node.is_member(group)
        ]

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail_nodes(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.nodes[node_id].fail()
        self._invalidate_neighbors()

    def recover_nodes(self, node_ids: Iterable[int]) -> None:
        for node_id in node_ids:
            self.nodes[node_id].recover()
        self._invalidate_neighbors()
