"""Simplified shared-medium link layer.

The HVDB protocol lives far above the MAC; what its evaluation needs from
the link layer is (1) a per-hop latency that grows with load, (2) a finite
per-node bandwidth so overhead translates into congestion, and (3) frame
loss.  :class:`SimpleCsmaMac` models exactly that: transmission time =
frame size / bandwidth, queueing approximated by a contention factor that
scales with the number of neighbours currently contending, plus a constant
propagation/processing delay and an independent loss probability on top of
whatever the radio model decides.

Both models are registered with :func:`repro.registry.register_mac`
(``csma`` and ``ideal``), so a scenario selects its link layer by name
(``ScenarioConfig.mac``) and grids can sweep it like any other axis.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional

from repro.registry import register_mac


@dataclass(frozen=True)
class TxPlan:
    """The MAC's verdict on one frame handed over for transmission.

    ``proceed=False`` means the MAC refused the frame outright (e.g. a
    duty-cycle budget was exhausted); the network then drops it without
    occupying the medium.  ``airtime`` is the time the frame keeps the
    medium busy -- what interference-aware radios are told about and what
    duty-cycle accounting charges; ``delay`` additionally includes the
    MAC's deferral and processing latency.
    """

    proceed: bool
    delay: float
    loss_probability: float
    airtime: float


class MacModel(abc.ABC):
    """Computes per-hop delay and loss for frame transmissions."""

    @abc.abstractmethod
    def transmission_delay(self, size_bytes: int, contenders: int) -> float:
        """Seconds between hand-over to the MAC and reception at a neighbour."""

    @abc.abstractmethod
    def loss_probability(self, contenders: int) -> float:
        """Frame loss probability added by the MAC (collisions, queue drops).

        Implementations must return a value in [0, 1] for every
        non-negative contender count, however large.
        """

    def airtime(self, size_bytes: int) -> float:
        """Seconds the frame occupies the medium.

        Default: the uncontended transmission delay -- a conservative
        stand-in for MACs that do not separate medium occupancy from
        per-hop latency.
        """
        return self.transmission_delay(size_bytes, 0)

    def plan_transmission(
        self,
        sender: int,
        now: float,
        size_bytes: int,
        contenders: int,
        rng: random.Random,
    ) -> TxPlan:
        """Resolve one frame into a :class:`TxPlan` (the transmit-path seam).

        The default consumes nothing from ``rng`` and reproduces the
        classic pair of :meth:`transmission_delay` /
        :meth:`loss_probability` calls exactly, so pre-existing MACs keep
        their byte-identical artifacts; stateful MACs (backoff draws,
        duty-cycle budgets) override this.
        """
        delay = self.transmission_delay(size_bytes, contenders)
        return TxPlan(
            proceed=True,
            delay=delay,
            loss_probability=self.loss_probability(contenders),
            airtime=delay,
        )


@dataclass
class SimpleCsmaMac(MacModel):
    """CSMA-flavoured MAC abstraction.

    Parameters
    ----------
    bandwidth_bps:
        Raw link bandwidth in bits per second (2 Mb/s is the classical
        802.11 figure used in MANET papers of the period).
    base_latency:
        Constant per-hop processing + propagation delay in seconds.
    contention_factor:
        Extra delay per contending neighbour, expressed as a multiple of
        the frame transmission time (models carrier-sense deferral).
    collision_probability_per_contender:
        Additional loss probability contributed by each contending
        neighbour, capped at ``max_collision_probability``.
    """

    bandwidth_bps: float = 2_000_000.0
    base_latency: float = 0.002
    contention_factor: float = 0.10
    collision_probability_per_contender: float = 0.004
    max_collision_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.base_latency < 0 or self.contention_factor < 0:
            raise ValueError("latency parameters must be non-negative")
        if not 0 <= self.collision_probability_per_contender <= 1:
            raise ValueError("collision probability per contender must be in [0, 1]")
        if not 0 <= self.max_collision_probability <= 1:
            raise ValueError("max collision probability must be in [0, 1]")

    def transmission_delay(self, size_bytes: int, contenders: int) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if contenders < 0:
            raise ValueError("contenders must be non-negative")
        frame_time = (size_bytes * 8.0) / self.bandwidth_bps
        deferral = frame_time * self.contention_factor * contenders
        return self.base_latency + frame_time + deferral

    def loss_probability(self, contenders: int) -> float:
        if contenders < 0:
            raise ValueError("contenders must be non-negative")
        # the explicit [0, 1] clamp keeps the MacModel contract even for
        # adversarial contender counts where the product overflows the
        # configured cap's intent (e.g. float rounding at ~1e300 rivals)
        return min(
            1.0,
            max(
                0.0,
                min(
                    self.max_collision_probability,
                    self.collision_probability_per_contender * contenders,
                ),
            ),
        )


@dataclass
class IdealMac(MacModel):
    """Loss-free, constant-delay MAC for unit tests and structural studies."""

    delay: float = 0.001

    def transmission_delay(self, size_bytes: int, contenders: int) -> float:
        return self.delay

    def loss_probability(self, contenders: int) -> float:
        return 0.0


@register_mac("csma")
def _csma_mac(config=None) -> SimpleCsmaMac:
    """Registered factory: the CSMA-flavoured MAC with default parameters."""
    return SimpleCsmaMac()


@register_mac("ideal")
def _ideal_mac(config=None) -> IdealMac:
    """Registered factory: loss-free constant-delay MAC (structural studies)."""
    return IdealMac()
