"""Multicast traffic sources.

Experiments drive the protocols with constant-bit-rate (CBR) or Poisson
multicast sources attached to specific nodes.  Sources talk to the node's
multicast protocol agent through the :class:`~repro.simulation.agent.ProtocolAgent.send_multicast`
entry point, so the same source works with the HVDB protocol and with
every baseline.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simulation.engine import PeriodicTimer, Simulator
from repro.simulation.network import Network


class CbrMulticastSource:
    """Constant-bit-rate multicast source.

    Sends one ``payload_bytes`` packet to ``group`` every ``interval``
    seconds through the named protocol agent on ``source_node``.
    """

    def __init__(
        self,
        network: Network,
        source_node: int,
        group: int,
        protocol_name: str,
        interval: float = 1.0,
        payload_bytes: int = 512,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        jitter: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        self.network = network
        self.source_node = source_node
        self.group = group
        self.protocol_name = protocol_name
        self.interval = interval
        self.payload_bytes = payload_bytes
        self.stop_time = stop_time
        self.packets_sent = 0
        self._seq = 0
        rng = random.Random(seed) if jitter > 0 else None
        self._timer = PeriodicTimer(
            network.simulator,
            interval,
            self._emit,
            initial_delay=max(start_time, 1e-9),
            jitter=jitter,
            rng=rng,
        )

    def _emit(self) -> None:
        now = self.network.simulator.now
        if self.stop_time is not None and now > self.stop_time:
            self._timer.stop()
            return
        node = self.network.node(self.source_node)
        if not node.alive:
            return
        agent = node.agent(self.protocol_name)
        self._seq += 1
        agent.send_multicast(self.group, payload=("cbr", self._seq), size_bytes=self.payload_bytes)
        self.packets_sent += 1

    def stop(self) -> None:
        self._timer.stop()


class PoissonMulticastSource:
    """Poisson multicast source with exponential inter-packet gaps."""

    def __init__(
        self,
        network: Network,
        source_node: int,
        group: int,
        protocol_name: str,
        rate: float = 1.0,
        payload_bytes: int = 512,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if payload_bytes <= 0:
            raise ValueError("payload size must be positive")
        self.network = network
        self.source_node = source_node
        self.group = group
        self.protocol_name = protocol_name
        self.rate = rate
        self.payload_bytes = payload_bytes
        self.stop_time = stop_time
        self.packets_sent = 0
        self._seq = 0
        self._rng = random.Random(seed)
        self._stopped = False
        network.simulator.schedule(max(start_time, 1e-9), self._emit)

    def _emit(self) -> None:
        if self._stopped:
            return
        now = self.network.simulator.now
        if self.stop_time is not None and now > self.stop_time:
            return
        node = self.network.node(self.source_node)
        if node.alive:
            agent = node.agent(self.protocol_name)
            self._seq += 1
            agent.send_multicast(
                self.group, payload=("poisson", self._seq), size_bytes=self.payload_bytes
            )
            self.packets_sent += 1
        gap = self._rng.expovariate(self.rate)
        self.network.simulator.schedule(gap, self._emit)

    def stop(self) -> None:
        self._stopped = True
