"""Discrete-event MANET simulator (System S4).

The paper evaluates (and motivates) its protocol on large-scale mobile ad
hoc networks; no public artefact exists, so this package provides the
packet-level simulation substrate every experiment runs on:

* :mod:`repro.simulation.engine` -- the discrete-event scheduler (event
  heap, simulation clock, periodic timers).
* :mod:`repro.simulation.packet` -- packets and per-packet accounting.
* :mod:`repro.simulation.radio` -- propagation/reception models (unit
  disk, log-distance shadowing).
* :mod:`repro.simulation.mac` -- a simplified shared-medium link layer:
  per-hop transmission delay from bandwidth + contention, loss injection.
* :mod:`repro.simulation.node` -- mobile nodes carrying protocol agents.
* :mod:`repro.simulation.network` -- the network: nodes + mobility +
  radio + MAC + neighbour discovery + delivery bookkeeping.
* :mod:`repro.simulation.agent` -- the protocol-agent interface all
  multicast protocols (HVDB and baselines) implement.
* :mod:`repro.simulation.stack` -- the pluggable
  :class:`~repro.simulation.stack.ProtocolStack` interface scenario
  assembly resolves through :mod:`repro.registry` (plus the
  one-agent-per-node :class:`~repro.simulation.stack.AgentStack` base).
* :mod:`repro.simulation.traffic` -- CBR / Poisson multicast sources.
* :mod:`repro.simulation.groups` -- multicast group membership with churn.

Radio and MAC models are registered by name (``unit_disk`` /
``log_distance``, ``csma`` / ``ideal``) so scenarios select them
declaratively and sweep grids can use them as axes.
"""

from repro.simulation.engine import Simulator, Event, PeriodicTimer
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.radio import RadioModel, UnitDiskRadio, LogDistanceRadio
from repro.simulation.mac import MacModel, SimpleCsmaMac
from repro.simulation.node import MobileNode, NodeStats
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.agent import ProtocolAgent
from repro.simulation.stack import ProtocolStack, AgentStack
from repro.simulation.traffic import CbrMulticastSource, PoissonMulticastSource
from repro.simulation.groups import MulticastGroupManager, GroupEvent

__all__ = [
    "Simulator",
    "Event",
    "PeriodicTimer",
    "Packet",
    "PacketKind",
    "RadioModel",
    "UnitDiskRadio",
    "LogDistanceRadio",
    "MacModel",
    "SimpleCsmaMac",
    "MobileNode",
    "NodeStats",
    "Network",
    "NetworkConfig",
    "ProtocolAgent",
    "ProtocolStack",
    "AgentStack",
    "CbrMulticastSource",
    "PoissonMulticastSource",
    "MulticastGroupManager",
    "GroupEvent",
]
