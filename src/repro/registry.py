"""Named-component registries: protocol stacks, radios, MACs, mobility models.

The evaluation is comparative by construction -- HVDB against four
baselines across many scenarios -- so the pieces a scenario is assembled
from are *pluggable*: a :class:`~repro.experiments.scenarios.ScenarioConfig`
names its protocol stack, radio model, MAC model and mobility model by
registered name, and :func:`~repro.experiments.scenarios.build_scenario`
resolves those names here.  Referencing components by name (rather than by
object) keeps configs picklable across worker processes and hashable for
the orchestrator's content-addressed result cache.

Four registries are provided, each with a ``register_*`` decorator:

* :data:`PROTOCOL_STACKS` / :func:`register_protocol` -- zero-argument
  :class:`~repro.simulation.stack.ProtocolStack` factories (usually the
  stack class itself).  Built-ins: ``hvdb``, ``flooding``, ``sgm``,
  ``dsm``, ``spbm``.
* :data:`RADIOS` / :func:`register_radio` -- ``fn(config) ->``
  :class:`~repro.simulation.radio.RadioModel` factories (``config`` is a
  ``ScenarioConfig``, or ``None`` for library defaults).  Built-ins:
  ``unit_disk``, ``log_distance``, ``sinr`` (the interference-aware
  SINR/capture radio from :mod:`repro.simulation.phy`).
* :data:`MACS` / :func:`register_mac` -- ``fn(config) ->``
  :class:`~repro.simulation.mac.MacModel` factories.  Built-ins:
  ``csma``, ``ideal``, ``csma_ca`` (slotted CSMA/CA with airtime and
  duty-cycle accounting from :mod:`repro.simulation.phy`).
* :data:`MOBILITY_MODELS` / :func:`register_mobility` -- ``fn(config,
  node_ids) -> MobilityModel`` factories.  Built-ins:
  ``random_waypoint``, ``static``, ``random_walk``, ``gauss_markov``.

Third-party components register exactly like the built-ins::

    from repro.registry import register_protocol
    from repro.simulation.stack import AgentStack

    @register_protocol("gossip")
    class GossipStack(AgentStack):
        name = "gossip"
        ...

Resolution is lazy: each registry imports the modules that define its
built-ins on first lookup, so ``Registry.get``/``Registry.names`` always
see the bundled components regardless of import order.  An unknown name
raises :class:`RegistryError` (a ``ValueError``) listing every registered
name.  Registrations made outside the bundled modules must be imported
before a sweep runs; on spawn-only platforms worker processes re-import
only :mod:`repro.experiments.specs` (see
:func:`repro.experiments.orchestrator.register_collector`).
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Tuple


class RegistryError(ValueError):
    """A lookup named no registered component (the message lists them all)."""


class Registry:
    """A name -> component mapping with lazy built-in bootstrapping."""

    def __init__(self, kind: str, bootstrap: Tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._bootstrap = bootstrap
        self._bootstrapped = False
        self._bootstrapping = False
        self._entries: Dict[str, Callable] = {}

    def _ensure_bootstrapped(self) -> None:
        """Import the modules that register this registry's built-ins.

        The done-flag is only set after every import succeeds, so a
        failed bootstrap surfaces its real ImportError again on the next
        lookup instead of a misleading empty registry; the in-progress
        flag guards against recursion should a bootstrap module ever
        perform a lookup at import time.
        """
        if self._bootstrapped or self._bootstrapping:
            return
        self._bootstrapping = True
        try:
            for module in self._bootstrap:
                importlib.import_module(module)
            self._bootstrapped = True
        finally:
            self._bootstrapping = False

    def register(self, name: str) -> Callable:
        """Decorator: register the decorated factory/class under ``name``.

        A name can be registered only once (re-decorating the *same*
        object is an idempotent no-op): silently shadowing a registered
        component would switch every sweep, benchmark and CLI surface to
        the replacement -- and serve cached results produced by the
        original under the same key.
        """

        def decorator(obj: Callable) -> Callable:
            # no bootstrap here: registering must stay import-cycle-free
            # (the built-in modules register at import time).  Shadowing
            # a built-in before the first lookup is still caught -- the
            # built-in's own registration raises when the bootstrap runs.
            existing = self._entries.get(name)
            if existing is not None and existing is not obj:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered "
                    f"({existing!r}); shadowing a registered {self.kind} "
                    "is not allowed -- pick a new name.  (If this fires "
                    f"while importing a bundled module, an earlier "
                    f"third-party registration took the built-in name "
                    f"{name!r}.)"
                )
            self._entries[name] = obj
            return obj

        return decorator

    def get(self, name: str, bootstrap: bool = True) -> Callable:
        """Resolve ``name``; unknown names raise :class:`RegistryError`.

        ``bootstrap=False`` skips the built-in module imports -- for
        callers below the experiments layer (e.g. ``NetworkConfig``
        defaults) whose wanted entry is registered by a module they
        already import, so resolving it must not drag the whole
        experiment harness in.
        """
        if bootstrap:
            self._ensure_bootstrapped()
        if name not in self._entries:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered {self.kind}s: "
                f"{', '.join(self.names())}"
            )
        return self._entries[name]

    def names(self) -> List[str]:
        """Every registered name, sorted."""
        self._ensure_bootstrapped()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_bootstrapped()
        return name in self._entries


#: Every registry also bootstraps ``repro.experiments.specs``: that is
#: the one module spawn-platform worker processes re-import, so
#: components registered there resolve inside workers regardless of
#: which registry a run touches first.  (Bootstraps run lazily on the
#: first lookup, never at registration, so module import stays
#: cycle-free.)
_SPEC_MODULE = "repro.experiments.specs"

#: protocol-stack factories; ``ScenarioConfig.protocol`` resolves here
PROTOCOL_STACKS = Registry(
    "protocol",
    bootstrap=(
        "repro.core.protocol",
        "repro.baselines.flooding",
        "repro.baselines.sgm",
        "repro.baselines.dsm",
        "repro.baselines.spbm",
        _SPEC_MODULE,
    ),
)

#: radio-model factories; ``ScenarioConfig.radio`` resolves here
RADIOS = Registry(
    "radio",
    bootstrap=("repro.simulation.radio", "repro.simulation.phy", _SPEC_MODULE),
)

#: MAC-model factories; ``ScenarioConfig.mac`` resolves here
MACS = Registry(
    "mac",
    bootstrap=("repro.simulation.mac", "repro.simulation.phy", _SPEC_MODULE),
)

#: mobility-model factories; ``ScenarioConfig.mobility`` resolves here
MOBILITY_MODELS = Registry(
    "mobility model",
    bootstrap=("repro.mobility", _SPEC_MODULE),
)


def register_protocol(name: str) -> Callable:
    """Register a zero-argument :class:`ProtocolStack` factory under ``name``.

    The factory is instantiated per scenario and then wired with
    ``stack.install(network, config)``; decorating the stack class itself
    is the common case.
    """
    return PROTOCOL_STACKS.register(name)


def register_radio(name: str) -> Callable:
    """Register a radio factory ``fn(config) -> RadioModel`` under ``name``.

    ``config`` is the full ``ScenarioConfig`` (factories usually read
    ``config.radio_range``) or ``None`` when a caller wants the library
    default parameters.
    """
    return RADIOS.register(name)


def register_mac(name: str) -> Callable:
    """Register a MAC factory ``fn(config) -> MacModel`` under ``name``."""
    return MACS.register(name)


def register_mobility(name: str) -> Callable:
    """Register a mobility factory ``fn(config, node_ids) -> MobilityModel``."""
    return MOBILITY_MODELS.register(name)
