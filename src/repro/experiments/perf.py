"""Wall-time perf regression tracking across cache generations.

Every cached :class:`~repro.experiments.orchestrator.RunResult` records
the ``wall_time`` its execution took, so two result sets of the same
sweep -- two cache directories, two exported JSON artifacts, or two
:data:`~repro.experiments.orchestrator.CACHE_VERSION` generations inside
one directory -- carry enough information to spot a hot-path regression
without any extra instrumentation.

:func:`compare_wall_times` groups both sides by grid point (the swept
``params`` minus the seed), compares per-point medians, and classifies
each point.  Grouping by grid point -- never by seed count -- is what
keeps the comparison meaningful under *adaptive replication*: two result
sets of the same sweep may carry different numbers of seeds per point
(one side converged earlier, or a policy changed), and medians plus the
rank-based Mann-Whitney test are insensitive to unequal sample sizes.
Classes:

* ``regressed`` -- the current median exceeds the baseline median by more
  than the tolerance fraction; when both sides have enough replications a
  two-sided Mann-Whitney U test must also reject "same distribution", so
  a single noisy seed cannot fail CI;
* ``improved`` -- the symmetric speed-up case;
* ``ok`` -- within tolerance;
* ``missing-baseline`` / ``missing-current`` -- the point exists on only
  one side (a grid change or an incomplete shard merge).

The resulting :class:`PerfReport` serialises to JSON for CI consumption;
the ``python -m repro.experiments perf`` subcommand exits non-zero when
any point regressed.

Beyond the two-point diff, this module keeps a *trend history*: every
``perf --trend`` invocation appends one :class:`TrendEntry` (commit,
timestamp, store/executor, per-point median wall times) to a JSONL file
-- ``benchmarks/trend.jsonl`` in CI -- and :func:`check_trend` judges
the newest entry against the *trailing median* of the last
:data:`DEFAULT_TREND_WINDOW` entries instead of one frozen baseline.  A
slow drift that no single two-point diff would flag shows up as a curve;
a deliberate slowdown is recorded with ``--accept``, which marks the
entry accepted and resets the reference window at it.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import math
import os
import statistics
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.orchestrator import (
    RunResult,
    SpecError,
    SweepSpec,
    _format_value,
    load_adaptive_results,
    load_cached_results,
    load_json,
)
from repro.experiments.stores import parse_store_spec, store_exists

#: default allowed slowdown of a grid point's median wall time (fraction:
#: 0.25 tolerates up to 25% before flagging)
DEFAULT_TOLERANCE = 0.25

#: significance level for the Mann-Whitney test (only applied when both
#: sides have at least MIN_SAMPLES_FOR_TEST replications)
DEFAULT_ALPHA = 0.05
MIN_SAMPLES_FOR_TEST = 4

#: how many trailing trend entries the regression check medians over
DEFAULT_TREND_WINDOW = 10


def point_label(params: Mapping[str, Any]) -> str:
    """Stable grid-point label: the swept params minus the seed."""
    items = sorted(
        ((k, v) for k, v in params.items() if k != "seed"), key=lambda kv: kv[0]
    )
    return ",".join(f"{k}={_format_value(v)}" for k, v in items) or "base"


def wall_time_groups(results: Sequence[RunResult]) -> Dict[str, List[float]]:
    """Group per-run wall times by grid point, in first-seen order."""
    groups: Dict[str, List[float]] = {}
    for result in results:
        groups.setdefault(point_label(result.params), []).append(
            float(result.wall_time)
        )
    return groups


def mann_whitney_p(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sided Mann-Whitney U p-value (normal approximation, tie-averaged).

    A deliberately simple stdlib-only implementation: exactness in the
    far tail does not matter for a CI gate, distinguishing "overlapping
    distributions" from "cleanly shifted" does.
    """
    n1, n2 = len(a), len(b)
    if n1 == 0 or n2 == 0:
        return 1.0
    pooled = sorted(
        [(value, 0) for value in a] + [(value, 1) for value in b],
        key=lambda pair: pair[0],
    )
    # average ranks over ties
    ranks = [0.0] * len(pooled)
    i = 0
    while i < len(pooled):
        j = i
        while j + 1 < len(pooled) and pooled[j + 1][0] == pooled[i][0]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[k] = mean_rank
        i = j + 1
    rank_sum_a = sum(rank for rank, (_, side) in zip(ranks, pooled) if side == 0)
    u_a = rank_sum_a - n1 * (n1 + 1) / 2.0
    mean_u = n1 * n2 / 2.0
    sigma = math.sqrt(n1 * n2 * (n1 + n2 + 1) / 12.0)
    if sigma == 0.0:
        return 1.0
    # continuity correction toward the mean
    z = (u_a - mean_u - math.copysign(0.5, u_a - mean_u)) / sigma if u_a != mean_u else 0.0
    return max(0.0, min(1.0, 2.0 * (1.0 - _normal_cdf(abs(z)))))


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass
class PointComparison:
    """Wall-time verdict for one grid point."""

    point: str
    status: str                       #: ok | improved | regressed | missing-*
    baseline_n: int = 0
    current_n: int = 0
    baseline_median: float = 0.0
    current_median: float = 0.0
    ratio: float = 0.0                #: current median / baseline median
    p_value: Optional[float] = None   #: Mann-Whitney, when enough samples

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class PerfReport:
    """The full comparison: one :class:`PointComparison` per grid point."""

    sweep: str
    tolerance: float
    points: List[PointComparison] = field(default_factory=list)

    @property
    def regressions(self) -> List[PointComparison]:
        return [p for p in self.points if p.status == "regressed"]

    @property
    def improvements(self) -> List[PointComparison]:
        return [p for p in self.points if p.status == "improved"]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for point in self.points:
            counts[point.status] = counts.get(point.status, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "tolerance": self.tolerance,
            "regressed": self.regressed,
            "counts": self.counts(),
            "points": [p.to_dict() for p in self.points],
        }


def compare_wall_times(
    baseline: Sequence[RunResult],
    current: Sequence[RunResult],
    tolerance: float = DEFAULT_TOLERANCE,
    alpha: float = DEFAULT_ALPHA,
    sweep: str = "",
) -> PerfReport:
    """Compare two result sets of the same sweep point by point.

    A point regresses when its current median wall time exceeds the
    baseline median by more than ``tolerance`` (a fraction: 0.25 allows a
    25% slowdown) *and* -- when both sides carry at least
    :data:`MIN_SAMPLES_FOR_TEST` replications -- the Mann-Whitney test
    rejects "same distribution" at ``alpha``.  With fewer replications
    the threshold-ratio test decides alone.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    baseline_groups = wall_time_groups(baseline)
    current_groups = wall_time_groups(current)
    report = PerfReport(sweep=sweep, tolerance=tolerance)

    seen = list(baseline_groups)
    seen.extend(p for p in current_groups if p not in baseline_groups)
    for point in seen:
        base_times = baseline_groups.get(point)
        cur_times = current_groups.get(point)
        if base_times is None:
            report.points.append(
                PointComparison(
                    point=point,
                    status="missing-baseline",
                    current_n=len(cur_times or ()),
                    current_median=statistics.median(cur_times) if cur_times else 0.0,
                )
            )
            continue
        if cur_times is None:
            report.points.append(
                PointComparison(
                    point=point,
                    status="missing-current",
                    baseline_n=len(base_times),
                    baseline_median=statistics.median(base_times),
                )
            )
            continue
        base_median = statistics.median(base_times)
        cur_median = statistics.median(cur_times)
        ratio = cur_median / base_median if base_median > 0 else 1.0
        p_value = None
        if min(len(base_times), len(cur_times)) >= MIN_SAMPLES_FOR_TEST:
            p_value = mann_whitney_p(base_times, cur_times)
        status = "ok"
        if ratio > 1.0 + tolerance and (p_value is None or p_value < alpha):
            status = "regressed"
        elif ratio < 1.0 / (1.0 + tolerance) and (p_value is None or p_value < alpha):
            status = "improved"
        report.points.append(
            PointComparison(
                point=point,
                status=status,
                baseline_n=len(base_times),
                current_n=len(cur_times),
                baseline_median=round(base_median, 6),
                current_median=round(cur_median, 6),
                ratio=round(ratio, 4),
                p_value=round(p_value, 6) if p_value is not None else None,
            )
        )
    return report


def load_results(
    path: str, spec: Optional[SweepSpec] = None, cache_version: Optional[int] = None
) -> List[RunResult]:
    """Load one side of a comparison from ``path``.

    ``path`` may be a results JSON artifact (written by ``export`` /
    ``merge`` / :func:`~repro.experiments.orchestrator.export_json`), a
    cache directory, or a store spec (``"sqlite:runs.db"``; any backend
    of :mod:`repro.experiments.stores`).  Reading a store requires
    ``spec`` (stores are keyed by content hash, so the spec must be
    expanded to know which entries belong to the sweep);
    ``cache_version`` addresses an older
    :data:`~repro.experiments.orchestrator.CACHE_VERSION` generation
    inside the same store.  A spec carrying an adaptive replication
    policy is replayed through its stopping rule
    (:func:`~repro.experiments.orchestrator.load_adaptive_results`), since
    its run set is not a static expansion.
    """
    prefix, _location = parse_store_spec(path)
    if prefix is not None or os.path.isdir(path):
        if spec is None:
            raise SpecError(
                f"{path!r} is a result store (cache directory or store "
                "spec); loading wall times from a store requires the sweep "
                "spec to enumerate its entries"
            )
        if prefix is not None and not store_exists(path):
            raise SpecError(f"result store {path!r} does not exist")
        if spec.replication is not None:
            adaptive, _missing = load_adaptive_results(
                spec, path, version=cache_version
            )
            return adaptive.results
        results, _missing = load_cached_results(spec, path, version=cache_version)
        return results
    if cache_version is not None:
        raise SpecError(
            f"{path!r} is a results JSON artifact, not a cache directory; "
            "a cache-version selector does not apply to it"
        )
    return load_json(path)


# ---------------------------------------------------------------------------
# Trend history: the gate as a trajectory
# ---------------------------------------------------------------------------


@dataclass
class TrendEntry:
    """One recorded point of a sweep's wall-time trajectory.

    Appended (one JSON object per line) to a trend file --
    ``benchmarks/trend.jsonl`` in CI -- by ``perf --trend``.  ``medians``
    maps each grid-point label to its median wall time; ``store`` and
    ``executor`` record the sweep-cosmetic context the times were
    measured under (medians across different stores are comparable --
    the store never changes what executes -- but the context makes an
    environment-induced step in the curve explainable).  ``accepted``
    marks a deliberately-blessed slowdown: :func:`check_trend` never
    reaches past the newest accepted entry, so acceptance resets the
    reference window.
    """

    sweep: str
    recorded_at: str                  #: ISO-8601 UTC timestamp
    commit: str                       #: git commit SHA ("" if unknown)
    store: str                        #: result-store backend ("" if unknown)
    executor: str                     #: executor backend ("" if unknown)
    n_runs: int                       #: results the medians were taken over
    medians: Dict[str, float] = field(default_factory=dict)
    accepted: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrendEntry":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def git_commit() -> str:
    """The commit SHA to stamp into trend entries ("" when unknown).

    CI exports ``GITHUB_SHA``; locally ``git rev-parse`` is asked.  A
    non-repository (e.g. an unpacked source archive) yields "".
    """
    sha = os.environ.get("GITHUB_SHA", "")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return proc.stdout.strip() if proc.returncode == 0 else ""


def trend_entry(
    sweep: str,
    results: Sequence[RunResult],
    store: str = "",
    executor: str = "",
    commit: Optional[str] = None,
    recorded_at: Optional[str] = None,
    accepted: bool = False,
) -> TrendEntry:
    """Condense one result set into the entry ``perf --trend`` appends."""
    medians = {
        point: round(statistics.median(times), 6)
        for point, times in wall_time_groups(results).items()
    }
    if recorded_at is None:
        recorded_at = datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        )
    return TrendEntry(
        sweep=sweep,
        recorded_at=recorded_at,
        commit=git_commit() if commit is None else commit,
        store=store,
        executor=executor,
        n_runs=len(results),
        medians=medians,
        accepted=accepted,
    )


def append_trend(path: str, entry: TrendEntry) -> None:
    """Append one entry to the JSONL trend file (created on first use)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry.to_dict()) + "\n")


def load_trend(path: str, sweep: Optional[str] = None) -> List[TrendEntry]:
    """Read a trend file, oldest first; optionally one sweep's entries only.

    A missing file is an empty history (the first ``--trend`` run seeds
    it); an undecodable line is skipped rather than poisoning the whole
    history -- trend files are append-only and a torn final line from a
    killed CI job must not fail every later run.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except FileNotFoundError:
        return []
    entries: List[TrendEntry] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            entry = TrendEntry.from_dict(data)
        except (TypeError, ValueError):
            continue
        if sweep is None or entry.sweep == sweep:
            entries.append(entry)
    return entries


@dataclass
class TrendPoint:
    """One grid point's verdict against the trailing window."""

    point: str
    status: str                       #: ok | improved | regressed | new-point | no-history
    history_n: int = 0                #: window entries carrying this point
    trailing_median: float = 0.0      #: median of the window's medians
    current_median: float = 0.0
    ratio: float = 0.0                #: current / trailing (0 when no history)
    #: the point's recent curve, oldest first (window medians + current)
    curve: List[float] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class TrendReport:
    """Verdict of the newest trend entry against its trailing window."""

    sweep: str
    tolerance: float
    window: int
    entries: int                      #: history entries actually compared against
    points: List[TrendPoint] = field(default_factory=list)

    @property
    def regressions(self) -> List[TrendPoint]:
        return [p for p in self.points if p.status == "regressed"]

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for point in self.points:
            counts[point.status] = counts.get(point.status, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sweep": self.sweep,
            "tolerance": self.tolerance,
            "window": self.window,
            "entries": self.entries,
            "regressed": self.regressed,
            "counts": self.counts(),
            "points": [p.to_dict() for p in self.points],
        }


def check_trend(
    entries: Sequence[TrendEntry],
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_TREND_WINDOW,
) -> TrendReport:
    """Judge the newest entry against the trailing median of its history.

    ``entries`` is one sweep's history, oldest first (the newest entry is
    the one under test).  The reference window is the last ``window``
    earlier entries, truncated at the most recent ``accepted`` one --
    blessing a slowdown restarts the curve there.  Comparing against the
    *median of the window's medians* (not the single previous entry)
    keeps one noisy CI machine from failing the gate, while a sustained
    drift past ``tolerance`` still trips it.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    if window < 1:
        raise ValueError(f"trend window must be >= 1, got {window}")
    if not entries:
        raise SpecError("trend history is empty: nothing to check")
    latest = entries[-1]
    history = list(entries[:-1])
    for i in range(len(history) - 1, -1, -1):
        if history[i].accepted:
            history = history[i:]
            break
    history = history[-window:]

    report = TrendReport(
        sweep=latest.sweep,
        tolerance=tolerance,
        window=window,
        entries=len(history),
    )
    for point, current in latest.medians.items():
        values = [e.medians[point] for e in history if point in e.medians]
        if not history:
            status, trailing, ratio = "no-history", 0.0, 0.0
        elif not values:
            status, trailing, ratio = "new-point", 0.0, 0.0
        else:
            trailing = statistics.median(values)
            ratio = current / trailing if trailing > 0 else 1.0
            if ratio > 1.0 + tolerance:
                status = "regressed"
            elif ratio < 1.0 / (1.0 + tolerance):
                status = "improved"
            else:
                status = "ok"
        report.points.append(
            TrendPoint(
                point=point,
                status=status,
                history_n=len(values),
                trailing_median=round(trailing, 6),
                current_median=round(current, 6),
                ratio=round(ratio, 4),
                curve=[round(v, 6) for v in values] + [round(current, 6)],
            )
        )
    return report
