"""Parallel sweep orchestration.

The evaluation of the paper rests on grids of scenario runs (node count x
mobility x group churn x QoS settings, several seeds each).  This module
is the engine that executes such grids:

* :class:`SweepSpec` -- a *declarative* description of a sweep: one base
  :class:`~repro.experiments.scenarios.ScenarioConfig`, a parameter grid,
  and a list of replication seeds.  ``benchmarks/`` and ``examples/``
  define their experiments as specs instead of hand-rolled loops.
* :func:`expand_spec` -- turn a spec into concrete :class:`RunSpec`\\ s
  (the cross product of every grid axis and every seed, with
  deterministic per-run RNG seeding).
* :func:`run_sweep` -- execute the runs, fanning them out over
  ``multiprocessing`` workers, with an on-disk :class:`ResultCache` keyed
  by a content hash of (config, duration, seed, code version) so
  re-running a sweep only executes what changed.
* :class:`RunResult` -- the typed record one run produces: the swept
  parameters, the seed, and a flat metrics dictionary.  JSON/CSV export
  via :func:`export_json` / :func:`export_csv`, mean +/- 95% CI
  aggregation via :func:`summarize`.

Example -- a 2-axis sweep with 3 replication seeds, run on 4 workers::

    from repro.experiments import ScenarioConfig, SweepSpec, run_sweep, summarize

    spec = SweepSpec(
        name="density",
        base=ScenarioConfig(protocol="flooding", area_size=900.0),
        grid={"n_nodes": [30, 60], "group_size": [5, 10]},
        seeds=(1, 2, 3),
        duration=60.0,
    )
    results = run_sweep(spec, workers=4, cache_dir=".repro-cache")
    for row in summarize(results):
        print(row["n_nodes"], row["group_size"], row["pdr_mean"], row["pdr_ci95"])

A grid axis usually names a single ``ScenarioConfig`` field, but an axis
value may also be a dict of several field overrides that must move
together (e.g. growing the area with the node count to keep density
constant)::

    grid = {"n_nodes": [{"n_nodes": 60, "area_size": 1162.0},
                        {"n_nodes": 120, "area_size": 1643.0}]}

Hooks that need code, not data -- per-run metric extraction with access to
the live scenario, or a custom mobility model -- are referenced *by name*
through :func:`register_collector` / :func:`register_mobility` so a
:class:`RunSpec` stays picklable across process boundaries.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import itertools
import json
import math
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.scenarios import ScenarioConfig

#: Bump to invalidate every cached result after a change to the simulation
#: or metrics code that alters run outcomes.
CACHE_VERSION = 1


class SweepError(RuntimeError):
    """One or more runs of a sweep failed.

    Raised *after* every other run has been drained and recorded (and,
    with a cache directory, persisted), so a re-run of the same sweep
    resumes from the completed work instead of repeating it.
    """

# ---------------------------------------------------------------------------
# Registries: picklable-by-name hooks
# ---------------------------------------------------------------------------

_COLLECTORS: Dict[str, Callable] = {}
_MOBILITY_FACTORIES: Dict[str, Callable] = {}
_HOOKS: Dict[str, Callable] = {}


def register_collector(name: str) -> Callable:
    """Register a post-run metric collector under ``name``.

    The collector is called in the worker process as ``fn(result)`` with
    the full :class:`~repro.experiments.runner.ExperimentResult` (scenario
    included) and must return a dict of extra scalar metrics, which is
    merged into :attr:`RunResult.metrics`.  Referencing collectors by name
    keeps :class:`RunSpec` picklable.

    Worker processes are forked where available, so registrations made in
    any imported module (or a ``__main__`` script) are visible to them.
    On spawn-only platforms workers re-import from scratch and only see
    registrations made at import of :mod:`repro.experiments.specs`; hooks
    defined elsewhere then require ``workers=1``.
    """

    def decorator(fn: Callable) -> Callable:
        _COLLECTORS[name] = fn
        return fn

    return decorator


def register_mobility(name: str) -> Callable:
    """Register a mobility factory ``fn(config, node_ids) -> MobilityModel``."""

    def decorator(fn: Callable) -> Callable:
        _MOBILITY_FACTORIES[name] = fn
        return fn

    return decorator


def register_hook(name: str) -> Callable:
    """Register a scenario hook ``fn(scenario) -> None``.

    Hooks are referenced by a spec's ``before_run`` (called after the
    scenario is built, before the simulation starts) or ``during_run``
    (called halfway through the run, e.g. to inject failures) -- the same
    seams :func:`~repro.experiments.runner.run_scenario` exposes as
    callables.
    """

    def decorator(fn: Callable) -> Callable:
        _HOOKS[name] = fn
        return fn

    return decorator


def _resolve_registered(registry: Dict[str, Callable], name: str, kind: str) -> Callable:
    if name not in registry:
        # Spec modules register their hooks at import time; make sure the
        # bundled ones are loaded (lazy import avoids a cycle: specs
        # imports this module for SweepSpec).
        import repro.experiments.specs  # noqa: F401

    if name not in registry:
        raise KeyError(
            f"no {kind} registered under {name!r} (known: {sorted(registry)}). "
            "If it is registered outside repro.experiments.specs, make sure the "
            "registering module is imported before the sweep runs (on spawn-only "
            "platforms, worker processes only re-import repro.experiments.specs)."
        )
    return registry[name]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved run: a concrete config, seed and duration.

    Produced by :func:`expand_spec`; everything here is picklable so the
    run can be shipped to a worker process as-is.
    """

    run_id: str                       #: stable human-readable identifier
    config: ScenarioConfig            #: fully-resolved (overrides + seed applied)
    duration: float
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)  #: the swept values
    collector: Optional[str] = None   #: registered collector name
    mobility: Optional[str] = None    #: registered mobility-factory name
    before_run: Optional[str] = None  #: registered hook, called before start
    during_run: Optional[str] = None  #: registered hook, called mid-run

    def cache_key(self) -> str:
        """Content hash identifying this run's outcome.

        Covers every input that determines the result: the complete
        scenario config, the duration, the named hooks and
        :data:`CACHE_VERSION` (bumped on behaviour-changing code edits).
        The sweep name and cosmetic run id are deliberately excluded, so
        identical runs reached through different sweeps share cache
        entries.
        """
        payload = {
            "version": CACHE_VERSION,
            "config": _canonical(dataclasses.asdict(self.config)),
            "duration": self.duration,
            "collector": self.collector,
            "mobility": self.mobility,
            "before_run": self.before_run,
            "during_run": self.during_run,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonical(value: Any) -> Any:
    """Make a config dict deterministic and JSON-safe for hashing."""
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value):
        return _canonical(dataclasses.asdict(value))
    return repr(value)


@dataclass
class SweepSpec:
    """Declarative description of a parameter sweep.

    ``grid`` maps an axis name to the values it takes; the full sweep is
    the cross product of all axes times all ``seeds``.  An axis value is
    either a value for the ``ScenarioConfig`` field named by the axis, or
    a dict of several coupled field overrides.
    """

    name: str
    base: ScenarioConfig
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (1,)
    duration: float = 90.0
    description: str = ""
    collector: Optional[str] = None
    mobility: Optional[str] = None
    before_run: Optional[str] = None
    during_run: Optional[str] = None

    @property
    def run_count(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count * len(self.seeds)

    def expand(self) -> List[RunSpec]:
        return expand_spec(self)


def _axis_overrides(axis: str, value: Any) -> Dict[str, Any]:
    if isinstance(value, dict):
        return dict(value)
    return {axis: value}


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def expand_spec(spec: SweepSpec) -> List[RunSpec]:
    """Cross product of every grid axis and every seed, in a stable order.

    Per-run RNG seeding is deterministic: the run's seed replaces
    ``base.seed`` wholesale, and every stochastic component of a scenario
    derives its stream from that one value, so the same (spec, seed) pair
    always reproduces the same run.
    """
    axes = list(spec.grid.keys())
    value_lists = [list(spec.grid[a]) for a in axes]
    runs: List[RunSpec] = []
    for combo in itertools.product(*value_lists) if axes else [()]:
        overrides: Dict[str, Any] = {}
        for axis, value in zip(axes, combo):
            overrides.update(_axis_overrides(axis, value))
        # an explicit "seed" axis replaces the replication-seed loop, so
        # sweeping the seed itself (sweep(parameter="seed")) works without
        # colliding with spec.seeds
        seed_values = (overrides["seed"],) if "seed" in overrides else spec.seeds
        for run_seed in seed_values:
            merged = {k: v for k, v in overrides.items() if k != "seed"}
            config = dataclasses.replace(spec.base, seed=run_seed, **merged)
            params = dict(overrides)
            label = ",".join(
                f"{k}={_format_value(v)}" for k, v in sorted(params.items())
            ) or "base"
            runs.append(
                RunSpec(
                    run_id=f"{spec.name}/{label}/seed={run_seed}",
                    config=config,
                    duration=spec.duration,
                    seed=run_seed,
                    params=params,
                    collector=spec.collector,
                    mobility=spec.mobility,
                    before_run=spec.before_run,
                    during_run=spec.during_run,
                )
            )
    return runs


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """The typed record one run produces.

    ``metrics`` is the flat scalar dictionary from
    :meth:`~repro.metrics.collectors.MetricsReport.flat_row`, plus
    whatever the spec's collector added.  ``params`` is the swept
    parameter assignment for this run (field name -> value).
    """

    run_id: str
    params: Dict[str, Any]
    seed: int
    duration: float
    metrics: Dict[str, Any]
    wall_time: float = 0.0
    from_cache: bool = False
    cache_key: str = ""

    def row(self) -> Dict[str, Any]:
        """One flat dict: params, then seed, then every metric."""
        row: Dict[str, Any] = dict(self.params)
        row["seed"] = self.seed
        for key, value in self.metrics.items():
            row.setdefault(key, value)
        return row

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class ResultCache:
    """Disk cache of finished runs, one JSON file per content hash."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        result = RunResult.from_dict(data)
        result.from_cache = True
        return result

    def put(self, key: str, result: RunResult) -> None:
        tmp = self._path(key) + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh)
        os.replace(tmp, self._path(key))


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute_run(run: RunSpec) -> RunResult:
    """Execute one run to completion (in the current process).

    This is the function worker processes invoke; it builds the scenario,
    runs it, and flattens the report into picklable scalars -- the heavy
    network object never crosses a process boundary.
    """
    from repro.experiments.runner import run_scenario  # runner builds on this module

    mobility_factory = (
        _resolve_registered(_MOBILITY_FACTORIES, run.mobility, "mobility factory")
        if run.mobility
        else None
    )
    before_run = (
        _resolve_registered(_HOOKS, run.before_run, "hook") if run.before_run else None
    )
    during_run = (
        _resolve_registered(_HOOKS, run.during_run, "hook") if run.during_run else None
    )
    started = time.perf_counter()
    result = run_scenario(
        run.config,
        duration=run.duration,
        mobility_factory=mobility_factory,
        before_run=before_run,
        during_run=during_run,
    )
    metrics = result.report.flat_row()
    if run.collector:
        collector = _resolve_registered(_COLLECTORS, run.collector, "collector")
        metrics.update(collector(result))
    return RunResult(
        run_id=run.run_id,
        params=dict(run.params),
        seed=run.seed,
        duration=run.duration,
        metrics=metrics,
        wall_time=time.perf_counter() - started,
        cache_key=run.cache_key(),
    )


def _log(progress: bool, message: str) -> None:
    if progress:
        print(message, file=sys.stderr, flush=True)


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    force: bool = False,
    progress: bool = False,
) -> List[RunResult]:
    """Execute every run of ``spec`` and return results in expansion order.

    ``workers > 1`` fans pending runs out over a process pool.  With
    ``cache_dir`` set, completed runs are persisted and later invocations
    only execute cache misses (``force=True`` re-runs everything and
    refreshes the cache).  Deterministic seeding makes this safe: a cached
    result is bit-identical to re-running the same spec and seed.
    """
    runs = expand_spec(spec)
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    results: Dict[int, RunResult] = {}
    pending: List[tuple] = []          # (index, RunSpec)
    for index, run in enumerate(runs):
        cached = cache.get(run.cache_key()) if cache is not None and not force else None
        if cached is not None:
            cached.run_id = run.run_id          # cosmetic: report under this sweep's id
            cached.params = dict(run.params)
            results[index] = cached
        else:
            pending.append((index, run))

    hit_count = len(runs) - len(pending)
    _log(
        progress,
        f"[{spec.name}] {len(runs)} runs: {hit_count} cache hits, "
        f"{len(pending)} to execute on {max(1, workers)} worker(s)",
    )

    done = 0

    def record(index: int, result: RunResult) -> None:
        nonlocal done
        results[index] = result
        if cache is not None:
            cache.put(result.cache_key, result)
        done += 1
        pdr = result.metrics.get("pdr")
        pdr_note = f" pdr={pdr:.3f}" if isinstance(pdr, float) else ""
        _log(
            progress,
            f"[{spec.name}] ({done}/{len(pending)}) {result.run_id}"
            f"{pdr_note} ({result.wall_time:.1f}s)",
        )

    failures: List[tuple] = []       # (run_id, exception)

    if len(pending) == 0:
        pass
    elif workers <= 1 or len(pending) == 1:
        for index, run in pending:
            try:
                record(index, execute_run(run))
            except Exception as exc:
                failures.append((run.run_id, exc))
                _log(progress, f"[{spec.name}] FAILED {run.run_id}: {exc!r}")
    else:
        import concurrent.futures
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=context
        ) as pool:
            futures = {pool.submit(execute_run, run): (index, run) for index, run in pending}
            # drain every future even when one fails, so completed runs
            # are still recorded (and cached) before the error is raised
            for future in concurrent.futures.as_completed(futures):
                index, run = futures[future]
                try:
                    record(index, future.result())
                except Exception as exc:
                    failures.append((run.run_id, exc))
                    _log(progress, f"[{spec.name}] FAILED {run.run_id}: {exc!r}")

    if failures:
        completed = len(runs) - len(failures)
        detail = "; ".join(f"{run_id}: {exc!r}" for run_id, exc in failures[:5])
        if len(failures) > 5:
            detail += f"; ... {len(failures) - 5} more"
        raise SweepError(
            f"{len(failures)} of {len(runs)} runs failed in sweep {spec.name!r} "
            f"({completed} completed"
            + (", cached -- a re-run resumes from them" if cache is not None else "")
            + f"): {detail}"
        )

    _log(
        progress,
        f"[{spec.name}] done: {hit_count} cached + {len(pending)} executed",
    )
    return [results[i] for i in range(len(runs))]


# ---------------------------------------------------------------------------
# Aggregation and export
# ---------------------------------------------------------------------------

#: two-sided 95% Student-t critical values by degrees of freedom (1..30);
#: beyond 30 the normal approximation 1.96 is used.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t95(df: int) -> float:
    if df <= 0:
        return 0.0
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


def mean_ci95(values: Sequence[float]) -> tuple:
    """Sample mean and half-width of the 95% confidence interval."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = _t95(n - 1) * math.sqrt(variance / n)
    return mean, half_width


def summarize(
    results: Iterable[RunResult],
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Aggregate replications: one row per parameter combination.

    Runs sharing identical ``params`` (i.e. differing only in seed) are
    pooled; every numeric metric (or just ``metrics`` if given) is
    reported as ``<name>_mean`` and ``<name>_ci95``, plus an ``n_seeds``
    column.
    """
    groups: Dict[tuple, List[RunResult]] = {}
    for result in results:
        key = tuple(sorted(result.params.items(), key=lambda kv: kv[0]))
        groups.setdefault(key, []).append(result)

    rows: List[Dict[str, Any]] = []
    for key, members in groups.items():
        row: Dict[str, Any] = dict(key)
        row["n_seeds"] = len(members)
        names = metrics
        if names is None:
            names = [
                name
                for name, value in members[0].metrics.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
        for name in names:
            values = [
                float(m.metrics[name])
                for m in members
                if isinstance(m.metrics.get(name), (int, float))
            ]
            mean, ci = mean_ci95(values)
            row[f"{name}_mean"] = round(mean, 6)
            row[f"{name}_ci95"] = round(ci, 6)
        rows.append(row)
    return rows


def export_json(results: Sequence[RunResult], path: str, spec: Optional[SweepSpec] = None) -> None:
    """Write results (and optionally the generating spec) as one JSON document."""
    document: Dict[str, Any] = {"results": [r.to_dict() for r in results]}
    if spec is not None:
        document["spec"] = {
            "name": spec.name,
            "description": spec.description,
            "duration": spec.duration,
            "seeds": list(spec.seeds),
            "grid": {axis: [_canonical(v) for v in values] for axis, values in spec.grid.items()},
            "base": _canonical(dataclasses.asdict(spec.base)),
        }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)


def load_json(path: str) -> List[RunResult]:
    """Inverse of :func:`export_json` (the spec block, if present, is ignored)."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    return [RunResult.from_dict(d) for d in document["results"]]


def export_csv(results: Sequence[RunResult], path: str) -> None:
    """Write one CSV row per run: params, seed, then every metric column."""
    rows = [r.row() for r in results]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def load_csv(path: str) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`export_csv` back as a list of dicts."""
    with open(path, "r", encoding="utf-8", newline="") as fh:
        return list(csv.DictReader(fh))
