"""Parallel sweep orchestration.

The evaluation of the paper rests on grids of scenario runs (node count x
mobility x group churn x QoS settings, several seeds each).  This module
is the engine that executes such grids:

* :class:`SweepSpec` -- a *declarative* description of a sweep: one base
  :class:`~repro.experiments.scenarios.ScenarioConfig`, a parameter grid,
  and a list of replication seeds.  ``benchmarks/`` and ``examples/``
  define their experiments as specs instead of hand-rolled loops.
* :func:`expand_spec` -- turn a spec into concrete :class:`RunSpec`\\ s
  (the cross product of every grid axis and every seed, with
  deterministic per-run RNG seeding).
* :func:`run_sweep` -- execute the runs through a registered *executor
  backend* (:mod:`repro.experiments.executors`: in-process ``serial``, a
  ``process`` pool -- the default -- a ``thread`` pool, or a ``queue``
  of file-leased runs drained by any number of worker processes or
  machines), with an on-disk result cache keyed by a content hash of
  (config, duration, seed, code version) so re-running a sweep only
  executes what changed.  The cache itself lives behind a registered
  *store* backend (:mod:`repro.experiments.stores`: a ``json`` file
  directory -- the default -- a single-file columnar ``sqlite`` table,
  or ``parquet`` where pyarrow is installed).  Both backends are
  sweep-cosmetic: neither the executor nor the store enters the cache
  key, so every combination produces the same cache entries and
  byte-identical artifacts.
* :class:`RunResult` -- the typed record one run produces: the swept
  parameters, the seed, and a flat metrics dictionary.  JSON/CSV export
  via :func:`export_json` / :func:`export_csv`, mean +/- 95% CI
  aggregation via :func:`summarize`.
* :class:`AdaptiveCI` / :func:`run_sweep_adaptive` -- *adaptive seed
  replication*: instead of a fixed seed list, each grid point keeps
  adding replication seeds in deterministic batches until the 95% CI
  half-width of a chosen metric falls below a target (or ``max_seeds``
  is reached, recorded as ``unconverged``).  Low-variance points stop
  early, noisy ones get more seeds, and the whole loop rides the same
  content-hash cache -- a re-run against a warm cache executes nothing.

Example -- a 2-axis sweep with 3 replication seeds, run on 4 workers::

    from repro.experiments import ScenarioConfig, SweepSpec, run_sweep, summarize

    spec = SweepSpec(
        name="density",
        base=ScenarioConfig(protocol="flooding", area_size=900.0),
        grid={"n_nodes": [30, 60], "group_size": [5, 10]},
        seeds=(1, 2, 3),
        duration=60.0,
    )
    results = run_sweep(spec, workers=4, cache_dir=".repro-cache")
    for row in summarize(results):
        print(row["n_nodes"], row["group_size"], row["pdr_mean"], row["pdr_ci95"])

A grid axis usually names a single ``ScenarioConfig`` field -- including
*dotted* axes into the typed per-protocol sections (``"hvdb.dimension"``,
``"dsm.position_period"``) and the pluggable component names
(``"protocol"``, ``"radio"``, ``"mac"``, ``"mobility"``) -- but an axis
value may also be a dict of several field overrides that must move
together (e.g. growing the area with the node count to keep density
constant)::

    grid = {"n_nodes": [{"n_nodes": 60, "area_size": 1162.0},
                        {"n_nodes": 120, "area_size": 1643.0}]}

Hooks that need code, not data -- per-run metric extraction with access to
the live scenario, or a custom mobility model -- are referenced *by name*
through :func:`register_collector` /
:func:`repro.registry.register_mobility` so a :class:`RunSpec` stays
picklable across process boundaries.
"""

from __future__ import annotations

import copy
import csv
import dataclasses
import enum
import hashlib
import itertools
import json
import math
import os
import re
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.executors import Executor, make_executor
from repro.experiments.scenarios import PHY_SECTIONS, ScenarioConfig, config_axis_names
from repro.experiments.stores import (
    JsonStore,
    ResultStore,
    make_store,
    store_exists,
)
from repro.registry import (
    MACS,
    MOBILITY_MODELS,
    PROTOCOL_STACKS,
    RADIOS,
    RegistryError,
    register_mobility,
)

#: Bump to invalidate every cached result after a change to the simulation
#: or metrics code that alters run outcomes.
#: 2: registry-driven scenario assembly -- nested typed per-protocol
#:    config sections, mobility/radio/mac as first-class config fields.
CACHE_VERSION = 2


class SweepError(RuntimeError):
    """One or more runs of a sweep failed.

    Raised *after* every other run has been drained and recorded (and,
    with a cache directory, persisted), so a re-run of the same sweep
    resumes from the completed work instead of repeating it.
    """


class SpecError(ValueError):
    """A sweep spec (or a shard selection over it) is invalid.

    Raised eagerly at expansion time -- an empty grid axis, an empty seed
    list, an axis that names no :class:`ScenarioConfig` field, or a shard
    index outside ``1..count`` -- so a misconfigured sweep fails loudly
    instead of silently executing zero runs.
    """

@dataclass(frozen=True)
class AdaptiveCI:
    """Adaptive replication policy: add seeds until the CI is tight.

    Attached to :attr:`SweepSpec.replication` (or passed to
    :func:`run_sweep_adaptive` directly), this replaces the fixed
    ``seeds`` list with *sequential sampling*: every grid point starts
    with ``min_seeds`` replications, and as long as the 95% CI
    half-width of ``metric`` (as :func:`mean_ci95` computes it) exceeds
    ``target_half_width``, the point receives ``batch`` more seeds --
    independently of every other point -- until it converges or hits
    ``max_seeds`` (recorded as ``unconverged``).

    ``growth`` makes the batching *variance-aware*: while a point's
    observed half-width is still far from the target (more than twice
    it), its next batch is multiplied by ``growth`` (geometrically, so a
    very noisy point reaches its seed budget in a few rounds instead of
    many fixed-size ones); once within 2x of the target the batch resets
    to ``batch`` so the point cannot badly overshoot the budget it
    actually needs.  ``growth=1`` (the default) is plain fixed batching.

    The seed sequence is deterministic (:func:`adaptive_seed_sequence`):
    the spec's own ``seeds`` first, then successive integers.  Combined
    with the content-hash cache this makes adaptive runs resumable and
    replayable -- the stopping decisions (batch growth included: observed
    half-widths are computed from cached results) are a pure function of
    the cached results, so a re-run against a warm cache executes nothing
    and sharded runs merge byte-identically to unsharded ones.
    """

    target_half_width: float          #: stop once ci95 half-width <= this
    metric: str = "pdr"               #: RunResult.metrics key driving the test
    min_seeds: int = 3                #: replications before the first CI test
    max_seeds: int = 12               #: hard per-point budget
    batch: int = 2                    #: seeds added per expansion round
    growth: float = 1.0               #: batch multiplier while half-width > 2x target

    def __post_init__(self) -> None:
        if not self.target_half_width > 0:
            raise SpecError(
                f"adaptive target_half_width must be > 0, got {self.target_half_width!r}"
            )
        if not self.metric:
            raise SpecError("adaptive policy needs a metric name")
        if self.min_seeds < 2:
            raise SpecError(
                f"adaptive min_seeds must be >= 2 (one replication has no "
                f"CI half-width), got {self.min_seeds}"
            )
        if self.max_seeds < self.min_seeds:
            raise SpecError(
                f"adaptive max_seeds ({self.max_seeds}) must be >= min_seeds "
                f"({self.min_seeds})"
            )
        if self.batch < 1:
            raise SpecError(f"adaptive batch must be >= 1, got {self.batch}")
        if not self.growth >= 1:
            raise SpecError(
                f"adaptive growth must be >= 1 (1 = fixed batching), got "
                f"{self.growth!r}"
            )

    def next_batch(self, current_batch: int, half_width: float) -> int:
        """Size of a point's next seed batch, given its observed half-width.

        Deterministic in the cached results: far from the target (more
        than twice the target half-width) the batch grows by ``growth``
        (at least +1 so ``growth`` just above 1 still makes progress);
        close to it the batch resets to the policy's base ``batch``.
        """
        if self.growth > 1 and half_width > 2 * self.target_half_width:
            return max(current_batch + 1, int(math.ceil(current_batch * self.growth)))
        return self.batch


# ---------------------------------------------------------------------------
# Registries: picklable-by-name hooks
# ---------------------------------------------------------------------------
# (component registries -- protocol stacks, radios, MACs, mobility models --
# live in repro.registry; these are the orchestrator-local hook seams)

_COLLECTORS: Dict[str, Callable] = {}
_HOOKS: Dict[str, Callable] = {}


def register_collector(name: str) -> Callable:
    """Register a post-run metric collector under ``name``.

    The collector is called in the worker process as ``fn(result)`` with
    the full :class:`~repro.experiments.runner.ExperimentResult` (scenario
    included) and must return a dict of extra scalar metrics, which is
    merged into :attr:`RunResult.metrics`.  Referencing collectors by name
    keeps :class:`RunSpec` picklable.

    Worker processes are forked where available, so registrations made in
    any imported module (or a ``__main__`` script) are visible to them.
    On spawn-only platforms workers re-import from scratch and only see
    registrations made at import of :mod:`repro.experiments.specs`; hooks
    defined elsewhere then require ``workers=1``.
    """

    def decorator(fn: Callable) -> Callable:
        _COLLECTORS[name] = fn
        return fn

    return decorator


def register_hook(name: str) -> Callable:
    """Register a scenario hook ``fn(scenario) -> None``.

    Hooks are referenced by a spec's ``before_run`` (called after the
    scenario is built, before the simulation starts) or ``during_run``
    (called halfway through the run, e.g. to inject failures) -- the same
    seams :func:`~repro.experiments.runner.run_scenario` exposes as
    callables.
    """

    def decorator(fn: Callable) -> Callable:
        _HOOKS[name] = fn
        return fn

    return decorator


def _resolve_registered(registry: Dict[str, Callable], name: str, kind: str) -> Callable:
    if name not in registry:
        # Spec modules register their hooks at import time; make sure the
        # bundled ones are loaded (lazy import avoids a cycle: specs
        # imports this module for SweepSpec).
        import repro.experiments.specs  # noqa: F401

    if name not in registry:
        raise KeyError(
            f"no {kind} registered under {name!r} (known: {sorted(registry)}). "
            "If it is registered outside repro.experiments.specs, make sure the "
            "registering module is imported before the sweep runs (on spawn-only "
            "platforms, worker processes only re-import repro.experiments.specs)."
        )
    return registry[name]


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved run: a concrete config, seed and duration.

    Produced by :func:`expand_spec`; everything here is picklable so the
    run can be shipped to a worker process as-is.
    """

    run_id: str                       #: stable human-readable identifier
    config: ScenarioConfig            #: fully-resolved (overrides + seed applied)
    duration: float
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)  #: the swept values
    collector: Optional[str] = None   #: registered collector name
    before_run: Optional[str] = None  #: registered hook, called before start
    during_run: Optional[str] = None  #: registered hook, called mid-run

    def cache_key(self, version: Optional[int] = None) -> str:
        """Content hash identifying this run's outcome.

        Covers every input that determines the result: the complete
        scenario config (recursively canonicalised -- nested per-protocol
        sections, enum-valued parameters and dict-valued fields hash
        independently of insertion order), the duration, the named hooks
        and :data:`CACHE_VERSION` (bumped on behaviour-changing code
        edits).  The mobility/radio/mac component names are part of the
        config itself, so they need no separate slot here; the
        physical-layer config sections enter only while their component
        is selected (:func:`canonical_config`), so unit-disk/csma cache
        keys survived the sections' introduction unchanged.  The sweep
        name and cosmetic run id are deliberately excluded, so identical
        runs reached through different sweeps share cache entries.
        ``version`` overrides :data:`CACHE_VERSION`, which lets perf
        tracking address an older cache generation in the same directory
        -- provided the config *shape* has not changed between
        generations (generation 1 predates the nested per-protocol
        sections, so its entries are unreachable from this code
        regardless of ``version``).
        """
        payload = {
            "version": CACHE_VERSION if version is None else version,
            "config": canonical_config(self.config),
            "duration": self.duration,
            "collector": self.collector,
            "before_run": self.before_run,
            "during_run": self.during_run,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _canonical(value: Any) -> Any:
    """Make a (possibly nested) config value deterministic and JSON-safe."""
    if isinstance(value, enum.Enum):
        return _canonical(value.value)
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value):
        return _canonical(dataclasses.asdict(value))
    return repr(value)


def canonical_config(config: ScenarioConfig) -> Dict[str, Any]:
    """Canonical dict of a scenario config, for hashing and artifacts.

    :func:`_canonical` over ``dataclasses.asdict``, minus every
    physical-layer section (:data:`~repro.experiments.scenarios.
    PHY_SECTIONS`) whose component is not the one the config selects:
    an inactive section cannot influence the run, and omitting it keeps
    cache keys *and* exported spec blocks byte-stable across releases
    that add phy sections.  (Sweeping ``sinr.capture_db`` under
    ``radio="unit_disk"`` therefore deliberately collapses to one cache
    entry -- the physics genuinely cannot differ.)
    """
    data = _canonical(dataclasses.asdict(config))
    for section, selector in PHY_SECTIONS.items():
        if getattr(config, selector, None) != section:
            data.pop(section, None)
    return data


@dataclass
class SweepSpec:
    """Declarative description of a parameter sweep.

    ``grid`` maps an axis name to the values it takes; the full sweep is
    the cross product of all axes times all ``seeds``.  An axis value is
    either a value for the ``ScenarioConfig`` field named by the axis, or
    a dict of several coupled field overrides.

    ``replication`` optionally attaches an :class:`AdaptiveCI` policy:
    ``seeds`` then only names the *initial* replications (and remains
    the fixed-seed view :func:`expand_spec` exposes to tooling that needs
    a static universe); :func:`run_sweep_adaptive` grows each grid
    point's seed set at runtime until the policy's CI target is met.

    ``executor`` optionally names a registered execution backend
    (:mod:`repro.experiments.executors`; ``None`` means the default
    ``process`` pool).  Like every executor choice it is validated
    eagerly and excluded from cache keys -- results are byte-identical
    across backends.

    ``store`` optionally names a registered result-store backend
    (:mod:`repro.experiments.stores`; ``None`` means the default
    ``json`` directory layout, or whatever backend the cache path's
    ``name:`` prefix selects).  Like the executor, the store is
    sweep-cosmetic: excluded from cache keys, byte-identical artifacts
    across backends.
    """

    name: str
    base: ScenarioConfig
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    seeds: Sequence[int] = (1,)
    duration: float = 90.0
    description: str = ""
    collector: Optional[str] = None
    before_run: Optional[str] = None
    during_run: Optional[str] = None
    replication: Optional[AdaptiveCI] = None
    executor: Optional[str] = None
    store: Optional[str] = None

    @property
    def run_count(self) -> int:
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count * len(self.seeds)

    def expand(self) -> List[RunSpec]:
        return expand_spec(self)


def _axis_overrides(axis: str, value: Any) -> Dict[str, Any]:
    if isinstance(value, dict):
        return dict(value)
    return {axis: value}


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


#: RunSpec slots a grid axis may sweep in addition to ScenarioConfig
#: fields: the named-hook seams.  An axis named (or a dict value
#: containing) one of these overrides the spec-level hook for that run.
HOOK_AXES = ("collector", "before_run", "during_run")


def _apply_config_overrides(
    base: ScenarioConfig, overrides: Mapping[str, Any]
) -> ScenarioConfig:
    """Apply plain and dotted (``section.field``) overrides to ``base``.

    Dotted keys replace one field inside a typed per-protocol section via
    a nested ``dataclasses.replace``; a whole-section override
    (``"hvdb": HVDBConfig(...)``) composes with dotted keys into the same
    section (the section override is applied first).
    """
    plain: Dict[str, Any] = {}
    nested: Dict[str, Dict[str, Any]] = {}
    for key, value in overrides.items():
        if "." in key:
            section, _, sub = key.partition(".")
            nested.setdefault(section, {})[sub] = value
        else:
            plain[key] = value
    for section, subs in nested.items():
        current = plain.get(section, getattr(base, section))
        plain[section] = dataclasses.replace(current, **subs)
    return dataclasses.replace(base, **plain)


@dataclass(frozen=True)
class GridPoint:
    """One grid combination of a sweep, before replication seeds apply.

    Produced by :func:`expand_points`; :func:`point_run` turns a point
    plus one seed into a concrete :class:`RunSpec`.  Fixed-seed expansion
    (:func:`expand_spec`) and adaptive replication
    (:func:`run_sweep_adaptive`) share this decomposition -- the adaptive
    loop grows the *seed* dimension per point while the point set stays
    static, which is also why adaptive sharding partitions points, not
    runs (:func:`shard_points`).
    """

    label: str                        #: stable display label ("a=1,b=2" or "base")
    params: Dict[str, Any]            #: the recorded swept values
    overrides: Dict[str, Any]         #: config field overrides (may pin "seed")
    hooks: Dict[str, Optional[str]]   #: resolved collector/before_run/during_run


def expand_points(spec: SweepSpec) -> List[GridPoint]:
    """Cross product of every grid axis (no seeds), in a stable order.

    An axis may name a :class:`ScenarioConfig` field (including dotted
    axes into the typed per-protocol sections, ``"hvdb.dimension"``, and
    the pluggable component names ``protocol``/``radio``/``mac``/
    ``mobility``), one of the :data:`HOOK_AXES` (sweeping a registered
    hook by name), or -- with dict values that include the axis name
    itself -- act as a pure label whose remaining keys are the coupled
    field/hook overrides::

        grid = {"variant": [{"variant": "fast", "hvdb.params": fast_params},
                            {"variant": "slow", "hvdb.params": slow_params}]}

    Label axes keep ``params`` (and therefore run ids, CSV columns and
    :func:`summarize` grouping) scalar even when the coupled override is a
    whole parameter object.  Empty axes, empty seed lists and unknown
    axis/override names raise :class:`SpecError` instead of expanding to a
    silent empty or broken grid.
    """
    if not spec.seeds:
        raise SpecError(
            f"sweep {spec.name!r} has no replication seeds: the grid would "
            "expand to zero runs (set seeds=(1,) for a single replication)"
        )
    axes = list(spec.grid.keys())
    value_lists = []
    for axis in axes:
        values = list(spec.grid[axis])
        if not values:
            raise SpecError(
                f"axis {axis!r} of sweep {spec.name!r} has no values: the "
                "cross product would expand to zero runs (drop the axis or "
                "give it at least one value)"
            )
        value_lists.append(values)

    config_fields = config_axis_names()
    points: List[GridPoint] = []
    for combo in itertools.product(*value_lists) if axes else [()]:
        overrides: Dict[str, Any] = {}
        hooks: Dict[str, Optional[str]] = {
            name: getattr(spec, name) for name in HOOK_AXES
        }
        params: Dict[str, Any] = {}
        for axis, value in zip(axes, combo):
            entry = _axis_overrides(axis, value)
            if (
                isinstance(value, dict)
                and axis in entry
                and axis not in config_fields
                and axis not in HOOK_AXES
            ):
                # label axis: the axis name itself is the recorded swept
                # parameter; the remaining keys are coupled overrides
                params[axis] = entry.pop(axis)
            else:
                params.update(entry)
            for key, override in entry.items():
                if key in HOOK_AXES:
                    hooks[key] = override
                elif key in config_fields:
                    overrides[key] = override
                else:
                    raise SpecError(
                        f"sweep {spec.name!r}: axis/override key {key!r} is "
                        f"neither a ScenarioConfig field (dotted section "
                        f"axes like 'hvdb.dimension' included) nor a hook "
                        f"slot {HOOK_AXES}; for a display-only axis use "
                        "dict values that include the axis name itself"
                    )
        label = ",".join(
            f"{k}={_format_value(v)}" for k, v in sorted(params.items())
        ) or "base"
        points.append(
            GridPoint(label=label, params=params, overrides=overrides, hooks=hooks)
        )
    return points


def point_run(spec: SweepSpec, point: GridPoint, run_seed: int) -> RunSpec:
    """Resolve one (grid point, replication seed) pair into a :class:`RunSpec`.

    Per-run RNG seeding is deterministic: the seed replaces ``base.seed``
    wholesale, and every stochastic component of a scenario derives its
    stream from that one value, so the same (spec, point, seed) triple
    always reproduces the same run -- and the same cache key.
    """
    merged = {k: v for k, v in point.overrides.items() if k != "seed"}
    config = _apply_config_overrides(
        dataclasses.replace(spec.base, seed=run_seed), merged
    )
    return RunSpec(
        run_id=f"{spec.name}/{point.label}/seed={run_seed}",
        config=config,
        duration=spec.duration,
        seed=run_seed,
        params=dict(point.params),
        collector=point.hooks["collector"],
        before_run=point.hooks["before_run"],
        during_run=point.hooks["during_run"],
    )


def expand_spec(spec: SweepSpec) -> List[RunSpec]:
    """Cross product of every grid axis and every seed, in a stable order.

    Point-major: all seeds of the first grid point, then the next point
    (see :func:`expand_points` for the axis semantics).  An explicit
    ``"seed"`` axis replaces the replication-seed loop for its point, so
    sweeping the seed itself (``sweep(parameter="seed")``) works without
    colliding with ``spec.seeds``.
    """
    runs: List[RunSpec] = []
    for point in expand_points(spec):
        seed_values = (
            (point.overrides["seed"],)
            if "seed" in point.overrides
            else spec.seeds
        )
        runs.extend(point_run(spec, point, run_seed) for run_seed in seed_values)
    return runs


def adaptive_seed_sequence(spec: SweepSpec, policy: AdaptiveCI) -> List[int]:
    """The deterministic per-point seed schedule of an adaptive sweep.

    The spec's own ``seeds`` come first (so a fixed-seed history stays
    cache-hot when a sweep turns adaptive), extended with successive
    integers after their maximum, duplicates skipped, up to the policy's
    ``max_seeds``.  Every grid point draws its replications from this one
    prefix -- point ``i`` stopping after ``n`` seeds always used exactly
    ``sequence[:n]`` -- which is what makes stopping decisions a pure
    function of the cached results.
    """
    if not spec.seeds:
        raise SpecError(
            f"sweep {spec.name!r} has no replication seeds: the adaptive "
            "sequence needs at least one starting seed"
        )
    # dedupe the spec's own list too: a repeated seed would count one run
    # twice as two "independent" replications, collapsing the CI to zero
    seeds: List[int] = []
    seen = set()
    for seed in spec.seeds:
        seed = int(seed)
        if seed not in seen:
            seeds.append(seed)
            seen.add(seed)
    del seeds[policy.max_seeds :]
    candidate = max(seen) + 1
    while len(seeds) < policy.max_seeds:
        if candidate not in seen:
            seeds.append(candidate)
            seen.add(candidate)
        candidate += 1
    return seeds


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``i/n`` shard selector into a validated ``(index, count)``.

    ``index`` is 1-based: ``2/3`` is the second of three shards.
    """
    match = re.fullmatch(r"\s*(\d+)\s*/\s*(\d+)\s*", text)
    if not match:
        raise SpecError(f"shard must look like INDEX/COUNT (e.g. 2/3), got {text!r}")
    index, count = int(match.group(1)), int(match.group(2))
    _check_shard(index, count)
    return index, count


def _check_shard(index: int, count: int) -> None:
    if count < 1:
        raise SpecError(f"shard count must be >= 1, got {count}")
    if not 1 <= index <= count:
        raise SpecError(
            f"shard index {index} out of range: must be between 1 and {count} "
            "(shard indices are 1-based)"
        )


def shard_runs(runs: Sequence[RunSpec], index: int, count: int) -> List[RunSpec]:
    """Deterministic 1-based shard ``index`` of ``count`` over ``runs``.

    Partitioning is round-robin over the stable :func:`expand_spec` order
    (run ``j`` lands in shard ``j % count + 1``), so adjacent heavy and
    light grid points spread across shards, every run appears in exactly
    one shard, and the shards' union is the full expansion.  ``count``
    larger than ``len(runs)`` legitimately yields empty shards; an
    ``index`` outside ``1..count`` raises :class:`SpecError`.
    """
    _check_shard(index, count)
    return list(runs[index - 1 :: count])


def shard_points(points: Sequence[GridPoint], index: int, count: int) -> List[GridPoint]:
    """Round-robin shard of *grid points* -- the adaptive sharding unit.

    Adaptive replication decides per grid point how many seeds to run, so
    a run-level partition would split one point's growing seed set across
    jobs and every job would need the others' results to stop correctly.
    Sharding whole points keeps each job's stopping decisions local and
    deterministic; the merged caches then replay to the exact unsharded
    result set (:func:`load_adaptive_results`).  Same 1-based round-robin
    semantics as :func:`shard_runs`.
    """
    _check_shard(index, count)
    return list(points[index - 1 :: count])


def validate_runs(runs: Sequence[RunSpec]) -> None:
    """Check every named component and hook of ``runs`` resolves, eagerly.

    A typo'd protocol/radio/mac/mobility name (config fields resolved
    through :mod:`repro.registry`) or hook name would otherwise only
    surface as a per-run failure inside a worker after the rest of the
    grid has burned its budget; this turns it into an eager
    :class:`SpecError` whose message lists the registered alternatives.
    Resolution uses the same registries (and the same lazy specs import)
    as the workers.
    """
    problems = []
    checked = set()
    for run in runs:
        config = run.config
        for registry, name in (
            (PROTOCOL_STACKS, config.protocol),
            (RADIOS, config.radio),
            (MACS, config.mac),
            (MOBILITY_MODELS, config.mobility),
        ):
            if (registry.kind, name) in checked:
                continue
            checked.add((registry.kind, name))
            try:
                registry.get(name)
            except RegistryError as exc:
                problems.append(str(exc))
        for registry, kind, name in (
            (_COLLECTORS, "collector", run.collector),
            (_HOOKS, "hook", run.before_run),
            (_HOOKS, "hook", run.during_run),
        ):
            if name is None or (kind, name) in checked:
                continue
            checked.add((kind, name))
            try:
                _resolve_registered(registry, name, kind)
            except KeyError as exc:
                problems.append(str(exc.args[0] if exc.args else exc))
    if problems:
        raise SpecError("; ".join(problems))


def load_cached_results(
    spec: SweepSpec,
    cache_dir: str,
    version: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    store: Optional[str] = None,
    store_options: Optional[Mapping[str, Any]] = None,
) -> Tuple[List["RunResult"], List[str]]:
    """Rehydrate ``spec``'s runs from a result store, running nothing.

    Returns the cached results in expansion order -- re-labelled with this
    spec's run ids and params, since the cache is keyed by content only --
    plus the run ids of every cache miss.  ``cache_dir`` is a bare path
    or a store spec (``"sqlite:runs.db"``); the whole expansion resolves
    through one batch :meth:`~repro.experiments.stores.ResultStore.scan`.
    ``version`` addresses an older :data:`CACHE_VERSION` generation;
    ``shard`` restricts the expansion to one shard.
    """
    cache = _open_cache(cache_dir, spec, store, store_options)
    runs = expand_spec(spec)
    if shard is not None:
        runs = shard_runs(runs, *shard)
    keyed = [
        (index, run, run.cache_key(version=version))
        for index, run in enumerate(runs)
    ]
    hits = _resolve_cached(cache, keyed)
    results: List[RunResult] = []
    missing: List[str] = []
    for index, run, _key in keyed:
        cached = hits.get(index)
        if cached is None:
            missing.append(run.run_id)
        else:
            _restamp(cached, run)
            results.append(cached)
    return results, missing


def _restamp(result: RunResult, run: RunSpec, adaptive_round: int = 0) -> None:
    """Relabel a cached result under the consuming sweep's identity.

    The cache is keyed by content only, so the sweep-cosmetic fields --
    run id, recorded params, adaptive-round provenance -- are stamped by
    whoever reads the entry.  That keeps artifacts deterministic: a
    replay from a merged shard cache stamps exactly what a live run would.
    """
    result.run_id = run.run_id
    result.params = dict(run.params)
    result.adaptive_round = adaptive_round


def _open_cache(
    cache_dir: Optional[Any],
    spec: Optional[SweepSpec] = None,
    store: Optional[str] = None,
    store_options: Optional[Mapping[str, Any]] = None,
) -> Optional[ResultStore]:
    """Resolve a sweep's result store; ``None`` stays ``None`` (no caching).

    ``cache_dir`` is a bare path, a store spec (``"sqlite:runs.db"``) or
    an already-open :class:`~repro.experiments.stores.ResultStore`.  An
    explicit ``store`` wins over ``spec.store``, which wins over the
    path's ``name:`` prefix, which wins over the ``json`` default.
    """
    if cache_dir is None:
        return None
    name = store or (spec.store if spec is not None else None)
    return make_store(cache_dir, store=name, **dict(store_options or {}))


def _resolve_cached(
    cache: ResultStore, keyed: Sequence[Tuple[Any, RunSpec, str]]
) -> Dict[Any, RunResult]:
    """Batch-resolve ``(token, run, cache_key)`` triples; one store scan.

    The hits come back as ``{token: RunResult}``.  Runs past the first
    that share a cache key get a deep copy, so every consumer can be
    :func:`_restamp`-ed under its own identity.
    """
    hits: Dict[Any, RunResult] = {}
    if not keyed:
        return hits
    cached_map = dict(cache.scan([key for _token, _run, key in keyed]))
    consumed: set = set()
    for token, _run, key in keyed:
        result = cached_map.get(key)
        if result is None:
            continue
        if key in consumed:
            result = copy.deepcopy(result)
        consumed.add(key)
        hits[token] = result
    return hits


def _warn_corrupt(cache: Optional[ResultStore], label: str, progress: bool) -> None:
    """Surface the store's corrupt-entry count in the run summary."""
    if cache is not None and cache.corrupt_entries:
        _log(
            progress,
            f"[{label}] WARNING: {cache.corrupt_entries} corrupt cache "
            f"entries in {cache.describe()} were ignored (the affected "
            "runs re-executed; the rewrite heals the store)",
        )


def merge_caches(
    sources: Sequence[str],
    dest: str,
    store: Optional[str] = None,
    store_options: Optional[Mapping[str, Any]] = None,
) -> Tuple[int, int]:
    """Fold shard caches into ``dest``; returns (copied, skipped).

    Cache entries are named by content hash, so an entry already present
    in ``dest`` is identical to the incoming one and is skipped -- merging
    is idempotent and order-independent.  Writes go through the store's
    atomic :meth:`~repro.experiments.stores.ResultStore.put`, so a
    crashed merge never leaves a truncated entry.  Sources and ``dest``
    are store specs (or bare ``json`` directories); mixing backends is
    how a cache migrates between layouts -- ``merge_caches(["json:old"],
    "sqlite:new.db")`` is the migration recipe.
    """
    options = dict(store_options or {})
    for src in sources:
        if not store_exists(src, store=store):
            raise SpecError(f"shard cache directory {src!r} does not exist")
    dest_store = make_store(dest, store=store, **options)
    copied = skipped = 0
    try:
        existing = set(dest_store.keys())
        for src in sources:
            src_store = make_store(src, store=store, **options)
            try:
                for key, result in src_store.scan():
                    if key in existing:
                        skipped += 1
                        continue
                    dest_store.put(key, result)
                    existing.add(key)
                    copied += 1
            finally:
                src_store.close()
    finally:
        dest_store.close()
    return copied, skipped


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class RunResult:
    """The typed record one run produces.

    ``metrics`` is the flat scalar dictionary from
    :meth:`~repro.metrics.collectors.MetricsReport.flat_row`, plus
    whatever the spec's collector added.  ``params`` is the swept
    parameter assignment for this run (field name -> value).
    """

    run_id: str
    params: Dict[str, Any]
    seed: int
    duration: float
    metrics: Dict[str, Any]
    wall_time: float = 0.0
    from_cache: bool = False
    cache_key: str = ""
    #: which adaptive round scheduled this replication (0 for the initial
    #: block and for every fixed-seed run); stamped by the consumer like
    #: ``run_id``/``params``, so it is deterministic even for cache hits
    adaptive_round: int = 0

    def row(self) -> Dict[str, Any]:
        """One flat dict: params, then seed, then every metric."""
        row: Dict[str, Any] = dict(self.params)
        row["seed"] = self.seed
        for key, value in self.metrics.items():
            row.setdefault(key, value)
        return row

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


class ResultCache(JsonStore):
    """Back-compat alias: the ``json`` result-store backend.

    Earlier releases hardwired result persistence to this class.  It is
    now a thin subclass of :class:`repro.experiments.stores.JsonStore`
    with identical layout and behaviour, so existing callers (and
    existing cache directories) keep working unchanged while new code
    picks backends through :data:`repro.experiments.stores.STORES`.
    """


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def execute_run(run: RunSpec) -> RunResult:
    """Execute one run to completion (in the current process).

    This is the function worker processes invoke; it builds the scenario,
    runs it, and flattens the report into picklable scalars -- the heavy
    network object never crosses a process boundary.
    """
    from repro.experiments.runner import run_scenario  # runner builds on this module

    before_run = (
        _resolve_registered(_HOOKS, run.before_run, "hook") if run.before_run else None
    )
    during_run = (
        _resolve_registered(_HOOKS, run.during_run, "hook") if run.during_run else None
    )
    started = time.perf_counter()
    result = run_scenario(
        run.config,
        duration=run.duration,
        before_run=before_run,
        during_run=during_run,
    )
    metrics = result.report.flat_row()
    if run.collector:
        collector = _resolve_registered(_COLLECTORS, run.collector, "collector")
        metrics.update(collector(result))
    return RunResult(
        run_id=run.run_id,
        params=dict(run.params),
        seed=run.seed,
        duration=run.duration,
        metrics=metrics,
        wall_time=time.perf_counter() - started,
        cache_key=run.cache_key(),
    )


def _log(progress: bool, message: str) -> None:
    if progress:
        print(message, file=sys.stderr, flush=True)


def _log_churn(backend: Optional[Executor], label: str, progress: bool) -> None:
    """Surface a work-stealing backend's robustness counters, if any.

    In-process backends report None and stay silent; queue/tcp sweeps
    that survived worker churn say so in one summary line (leases
    reclaimed, runs re-executed, workers seen/lost) instead of hiding
    the reclaim in queue-directory forensics.
    """
    stats = backend.stats() if backend is not None else None
    if stats:
        _log(progress, f"[{label}] churn: {stats.describe()}")


def _execute_pending(
    pending: Sequence[tuple],
    workers: int,
    record: Callable[[Any, RunResult], None],
    label: str,
    progress: bool,
    executor: Optional[Executor] = None,
    fresh: bool = False,
) -> List[tuple]:
    """Execute ``(key, RunSpec)`` pairs, calling ``record`` per result.

    The shared engine under :func:`run_sweep` and the adaptive loop,
    shrunk to a dispatch through the executor registry
    (:mod:`repro.experiments.executors`; ``executor=None`` instantiates
    the default backend for this batch).  Every backend honours the same
    drain contract: completed work is always recorded (and thereby
    cached) even when other runs fail, failures are logged through the
    same progress stream, and the ``(run_id, exception)`` failures are
    returned for the caller to raise on.
    """
    failures: List[tuple] = []

    def fail(run: RunSpec, exc: Exception) -> None:
        failures.append((run.run_id, exc))
        _log(progress, f"[{label}] FAILED {run.run_id}: {exc!r}")

    owned = executor is None
    backend = executor if executor is not None else make_executor(None)
    try:
        if pending:
            backend.map_runs(
                list(pending),
                execute_run,
                record,
                fail,
                workers=workers,
                label=label,
                progress=progress,
                fresh=fresh,
            )
    finally:
        if owned:
            backend.close()
    return failures


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    force: bool = False,
    progress: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    executor: Optional[str] = None,
    executor_options: Optional[Mapping[str, Any]] = None,
    store: Optional[str] = None,
    store_options: Optional[Mapping[str, Any]] = None,
) -> List[RunResult]:
    """Execute every run of ``spec`` and return results in expansion order.

    ``executor`` names the registered execution backend (overriding
    ``spec.executor``; default ``process``), resolved eagerly -- an
    unknown name raises :class:`~repro.registry.RegistryError` listing
    the alternatives before anything executes.  ``executor_options`` are
    backend keyword arguments (the ``queue`` backend takes ``queue_dir``
    etc.).  ``workers`` is the backend's parallelism: pool size for
    ``process``/``thread``, locally spawned worker processes for
    ``queue`` (0 = externally attached workers only), ignored by
    ``serial``.  The backend never enters cache keys or artifacts, so
    results are byte-identical across executors.

    With ``cache_dir`` set, completed runs are persisted and later
    invocations only execute cache misses (``force=True`` re-runs
    everything and refreshes the cache).  Deterministic seeding makes
    this safe: a cached result is bit-identical to re-running the same
    spec and seed.  ``cache_dir`` is a bare path (the ``json`` backend),
    a store spec like ``"sqlite:runs.db"``, or an open
    :class:`~repro.experiments.stores.ResultStore`; ``store`` names the
    backend explicitly (overriding ``spec.store``) and ``store_options``
    are backend keyword arguments.  Like the executor, the store never
    enters cache keys or artifacts.

    ``shard=(index, count)`` executes only that 1-based shard of the
    expansion (see :func:`shard_runs`): ``count`` jobs sharing nothing but
    ``cache_dir`` cover the grid exactly once, after which
    :func:`merge_caches` (or any single job reading the shared cache)
    reassembles the full result set.
    """
    runs = expand_spec(spec)
    label = spec.name
    if shard is not None:
        runs = shard_runs(runs, *shard)
        label = f"{spec.name} shard {shard[0]}/{shard[1]}"
    validate_runs(runs)
    backend = make_executor(executor or spec.executor, **dict(executor_options or {}))
    try:
        cache = _open_cache(cache_dir, spec, store, store_options)

        results: Dict[int, RunResult] = {}
        pending: List[tuple] = []          # (index, RunSpec)
        keyed = [(index, run, run.cache_key()) for index, run in enumerate(runs)]
        hits = (
            _resolve_cached(cache, keyed)  # one batch scan, not N point reads
            if cache is not None and not force
            else {}
        )
        for index, run, _key in keyed:
            cached = hits.get(index)
            if cached is not None:
                _restamp(cached, run)      # cosmetic: report under this sweep's id
                results[index] = cached
            else:
                pending.append((index, run))

        hit_count = len(runs) - len(pending)
        _log(
            progress,
            f"[{label}] {len(runs)} runs: {hit_count} cache hits, "
            f"{len(pending)} to execute on {backend.describe(workers)}",
        )

        done = 0

        def record(index: int, result: RunResult) -> None:
            nonlocal done
            results[index] = result
            if cache is not None:
                cache.put(result.cache_key, result)
            done += 1
            pdr = result.metrics.get("pdr")
            pdr_note = f" pdr={pdr:.3f}" if isinstance(pdr, float) else ""
            _log(
                progress,
                f"[{label}] ({done}/{len(pending)}) {result.run_id}"
                f"{pdr_note} ({result.wall_time:.1f}s)",
            )

        failures = _execute_pending(
            pending, workers, record, label, progress, executor=backend, fresh=force
        )
    finally:
        backend.close()

    _log_churn(backend, label, progress)
    if failures:
        completed = len(runs) - len(failures)
        detail = "; ".join(f"{run_id}: {exc!r}" for run_id, exc in failures[:5])
        if len(failures) > 5:
            detail += f"; ... {len(failures) - 5} more"
        raise SweepError(
            f"{len(failures)} of {len(runs)} runs failed in sweep {label!r} "
            f"({completed} completed"
            + (", cached -- a re-run resumes from them" if cache is not None else "")
            + f"): {detail}"
        )

    _warn_corrupt(cache, label, progress)
    _log(
        progress,
        f"[{label}] done: {hit_count} cached + {len(pending)} executed",
    )
    return [results[i] for i in range(len(runs))]


# ---------------------------------------------------------------------------
# Adaptive replication
# ---------------------------------------------------------------------------


@dataclass
class PointConvergence:
    """Per-grid-point verdict of an adaptive sweep."""

    point: str                        #: stable grid-point label
    params: Dict[str, Any]            #: the swept parameter assignment
    n_seeds: int                      #: replications actually run
    rounds: int                       #: adaptive rounds the point took part in
    mean: float                       #: metric mean over those replications
    half_width: float                 #: 95% CI half-width over them
    target: float                     #: the policy's target half-width
    status: str                       #: converged | unconverged | incomplete

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class AdaptiveResult:
    """Everything an adaptive sweep produced.

    ``results`` is the flat run list in deterministic order (grid points
    in :func:`expand_points` order, each point's seeds in
    :func:`adaptive_seed_sequence` order), ``points`` the per-point
    convergence verdicts.  ``executed``/``cached`` count this
    invocation's work; ``fixed_equivalent_runs`` is what the same grid
    would have cost with ``max_seeds`` everywhere -- the budget adaptive
    stopping saves.
    """

    sweep: str
    policy: AdaptiveCI
    results: List[RunResult] = field(default_factory=list)
    points: List[PointConvergence] = field(default_factory=list)
    executed: int = 0
    cached: int = 0

    @property
    def converged(self) -> List[PointConvergence]:
        return [p for p in self.points if p.status == "converged"]

    @property
    def unconverged(self) -> List[PointConvergence]:
        return [p for p in self.points if p.status != "converged"]

    @property
    def fixed_equivalent_runs(self) -> int:
        return len(self.points) * self.policy.max_seeds

    def to_dict(self) -> Dict[str, Any]:
        """The convergence report block embedded in JSON artifacts."""
        return {
            "sweep": self.sweep,
            "policy": dataclasses.asdict(self.policy),
            "executed": self.executed,
            "cached": self.cached,
            "total_runs": len(self.results),
            "fixed_equivalent_runs": self.fixed_equivalent_runs,
            "points": [p.to_dict() for p in self.points],
        }


def _metric_values(
    results: Sequence[RunResult], policy: AdaptiveCI, spec_name: str
) -> List[float]:
    values = []
    for result in results:
        value = result.metrics.get(policy.metric)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            numeric = sorted(
                name
                for name, v in result.metrics.items()
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            )
            raise SpecError(
                f"adaptive sweep {spec_name!r}: metric {policy.metric!r} is "
                f"not a numeric metric of run {result.run_id!r} (numeric "
                f"metrics: {', '.join(numeric) or 'none'})"
            )
        values.append(float(value))
    return values


def _adaptive_sweep(
    spec: SweepSpec,
    policy: AdaptiveCI,
    workers: int,
    cache: Optional[ResultStore],
    force: bool,
    progress: bool,
    shard: Optional[Tuple[int, int]],
    cache_only: bool,
    version: Optional[int],
    backend: Optional[Executor] = None,
) -> Tuple[AdaptiveResult, List[str]]:
    """The sequential-sampling loop shared by live runs and cache replay.

    Every round schedules the next seed block for each still-active grid
    point (sized by the policy's -- possibly variance-aware -- batching),
    resolves it against the cache, executes the misses through the chosen
    executor backend (or, with ``cache_only``, records them as missing
    and marks the point ``incomplete``), then re-tests each point's CI
    half-width.  Stopping decisions -- batch growth included -- depend
    only on the deterministic seed schedule and the per-run results, so a
    replay over a warm (or merged shard) cache reproduces the exact run
    set without executing anything.
    """
    points = expand_points(spec)
    for point in points:
        if "seed" in point.overrides:
            raise SpecError(
                f"adaptive sweep {spec.name!r}: grid point {point.label!r} "
                "pins an explicit 'seed' override; adaptive replication "
                "drives the seed dimension itself, so a seed axis cannot "
                "be combined with it"
            )
    label = f"{spec.name} adaptive"
    if shard is not None:
        points = shard_points(points, *shard)
        label = f"{spec.name} adaptive shard {shard[0]}/{shard[1]}"
    seeds = adaptive_seed_sequence(spec, policy)

    collected: List[List[RunResult]] = [[] for _ in points]
    rounds: List[int] = [0] * len(points)
    status: List[str] = [""] * len(points)
    #: next seed-batch size per point; grows under a variance-aware policy
    batch_size: List[int] = [policy.batch] * len(points)
    missing: List[str] = []
    report = AdaptiveResult(sweep=spec.name, policy=policy)

    active = list(range(len(points)))
    validated = False
    round_idx = 0
    while active:
        # 1. schedule this round's seed block per active point.  The
        # stamped provenance is the scheduling round itself: positional
        # under fixed batching, and still deterministic under
        # variance-aware growth (batch sizes derive from cached results),
        # so live runs, cache hits and replays all stamp the same rounds.
        scheduled: List[Tuple[Tuple[int, int], RunSpec]] = []
        for pi in active:
            have = len(collected[pi])
            want = (
                policy.min_seeds
                if round_idx == 0
                else min(have + batch_size[pi], policy.max_seeds)
            )
            scheduled.extend(
                ((pi, si), point_run(spec, points[pi], seeds[si]))
                for si in range(have, want)
            )
        if not validated:
            validate_runs([run for _key, run in scheduled])
            validated = True

        # 2. resolve against the cache (one batch scan per round); collect
        # what must execute
        staged: Dict[Tuple[int, int], RunResult] = {}
        pending: List[Tuple[Tuple[int, int], RunSpec]] = []
        incomplete = set()
        keyed = [
            (key, run, run.cache_key(version=version)) for key, run in scheduled
        ]
        hits = (
            _resolve_cached(cache, keyed)
            if cache is not None and not force
            else {}
        )
        for key, run, _ck in keyed:
            cached = hits.get(key)
            if cached is not None:
                _restamp(cached, run, adaptive_round=round_idx)
                staged[key] = cached
                report.cached += 1
            elif cache_only:
                missing.append(run.run_id)
                incomplete.add(key[0])
            else:
                pending.append((key, run))

        _log(
            progress,
            f"[{label}] round {round_idx}: {len(active)} point(s) active, "
            f"{len(scheduled)} run(s): {len(scheduled) - len(pending)} cache "
            f"hits, {len(pending)} to execute on "
            + (
                backend.describe(workers)
                if backend is not None
                else f"{max(1, workers)} worker(s)"
            ),
        )

        # 3. execute the misses (never entered during cache-only replay)
        done = 0

        def record(key: Tuple[int, int], result: RunResult) -> None:
            nonlocal done
            result.adaptive_round = round_idx
            staged[key] = result
            if cache is not None:
                cache.put(result.cache_key, result)
            done += 1
            _log(
                progress,
                f"[{label}] ({done}/{len(pending)}) {result.run_id} "
                f"({result.wall_time:.1f}s)",
            )

        failures = _execute_pending(
            pending, workers, record, label, progress, executor=backend, fresh=force
        )
        report.executed += len(pending) - len(failures)
        if failures:
            detail = "; ".join(f"{rid}: {exc!r}" for rid, exc in failures[:5])
            if len(failures) > 5:
                detail += f"; ... {len(failures) - 5} more"
            raise SweepError(
                f"{len(failures)} of {len(scheduled)} runs failed in round "
                f"{round_idx} of adaptive sweep {label!r}"
                + (
                    " (completed runs are cached -- a re-run resumes from them)"
                    if cache is not None
                    else ""
                )
                + f": {detail}"
            )

        # 4. fold the round's results in and re-test each point's CI
        round_idx += 1
        next_active = []
        for pi in active:
            rounds[pi] += 1
            si = len(collected[pi])
            while (pi, si) in staged:
                collected[pi].append(staged[(pi, si)])
                si += 1
            if pi in incomplete:
                status[pi] = "incomplete"
                continue
            values = _metric_values(collected[pi], policy, spec.name)
            _mean, half_width = mean_ci95(values)
            if half_width <= policy.target_half_width:
                status[pi] = "converged"
                _log(
                    progress,
                    f"[{label}] {points[pi].label}: converged with "
                    f"{len(values)} seed(s) (half-width {half_width:g} <= "
                    f"{policy.target_half_width:g})",
                )
            elif len(collected[pi]) >= policy.max_seeds:
                status[pi] = "unconverged"
                _log(
                    progress,
                    f"[{label}] {points[pi].label}: UNCONVERGED at max_seeds="
                    f"{policy.max_seeds} (half-width {half_width:g} > "
                    f"{policy.target_half_width:g})",
                )
            else:
                batch_size[pi] = policy.next_batch(batch_size[pi], half_width)
                next_active.append(pi)
        active = next_active

    for pi, point in enumerate(points):
        report.results.extend(collected[pi])
        if collected[pi] and status[pi] != "incomplete":
            mean, half_width = mean_ci95(
                _metric_values(collected[pi], policy, spec.name)
            )
        else:
            mean = half_width = 0.0
        report.points.append(
            PointConvergence(
                point=point.label,
                params=dict(point.params),
                n_seeds=len(collected[pi]),
                rounds=rounds[pi],
                mean=round(mean, 6),
                half_width=round(half_width, 6),
                target=policy.target_half_width,
                status=status[pi],
            )
        )
    _warn_corrupt(cache, label, progress)
    _log_churn(backend, label, progress)
    _log(
        progress,
        f"[{label}] done: {len(report.converged)}/{len(points)} point(s) "
        f"converged in {round_idx} round(s); {report.executed} executed + "
        f"{report.cached} cached = {len(report.results)} runs "
        f"(fixed grid at max_seeds: {report.fixed_equivalent_runs})",
    )
    return report, missing


def run_sweep_adaptive(
    spec: SweepSpec,
    workers: int = 1,
    cache_dir: Optional[str] = None,
    force: bool = False,
    progress: bool = False,
    shard: Optional[Tuple[int, int]] = None,
    policy: Optional[AdaptiveCI] = None,
    executor: Optional[str] = None,
    executor_options: Optional[Mapping[str, Any]] = None,
    store: Optional[str] = None,
    store_options: Optional[Mapping[str, Any]] = None,
) -> AdaptiveResult:
    """Execute ``spec`` under adaptive replication and return the report.

    ``policy`` overrides ``spec.replication`` (one of the two must be
    set).  Each grid point starts at ``policy.min_seeds`` replications
    and grows by ``policy.batch`` per round -- multiplied by
    ``policy.growth`` while the point's half-width is still more than
    twice the target -- until the 95% CI half-width of ``policy.metric``
    is at most ``policy.target_half_width`` or ``max_seeds`` is exhausted
    (``unconverged``).  The content-hash cache is consulted before every
    execution, so resuming, re-running, and replaying merged shard caches
    all cost zero executions once warm.

    ``executor``/``executor_options`` choose the execution backend
    exactly as in :func:`run_sweep` (one backend instance serves every
    adaptive round, so queue workers stay attached across rounds);
    ``store``/``store_options`` choose the result-store backend exactly
    as in :func:`run_sweep`.

    ``shard=(index, count)`` restricts the sweep to a round-robin shard
    of the *grid points* (seeds of one point never split across jobs --
    see :func:`shard_points`); shard jobs sharing nothing but merged
    caches reproduce the unsharded result set exactly.
    """
    policy = policy or spec.replication
    if policy is None:
        raise SpecError(
            f"sweep {spec.name!r} has no adaptive replication policy: attach "
            "SweepSpec(replication=AdaptiveCI(...)) or pass policy="
        )
    backend = make_executor(executor or spec.executor, **dict(executor_options or {}))
    try:
        cache = _open_cache(cache_dir, spec, store, store_options)
        report, _missing = _adaptive_sweep(
            spec,
            policy,
            workers=workers,
            cache=cache,
            force=force,
            progress=progress,
            shard=shard,
            cache_only=False,
            version=None,
            backend=backend,
        )
    finally:
        backend.close()
    return report


def load_adaptive_results(
    spec: SweepSpec,
    cache_dir: str,
    version: Optional[int] = None,
    shard: Optional[Tuple[int, int]] = None,
    policy: Optional[AdaptiveCI] = None,
    store: Optional[str] = None,
    store_options: Optional[Mapping[str, Any]] = None,
) -> Tuple[AdaptiveResult, List[str]]:
    """Replay an adaptive sweep from a result store, running nothing.

    The adaptive analogue of :func:`load_cached_results`: the stopping
    rule is re-evaluated against the cached results round by round, so
    the replay reconstructs exactly the run set a live adaptive sweep
    produced (this is what ``merge`` and ``export`` use after sharded
    adaptive jobs).  Returns the report plus the run ids of cache misses;
    a point whose next scheduled seed block is missing is reported with
    status ``incomplete``, since its stopping decision cannot be replayed
    past the gap.
    """
    policy = policy or spec.replication
    if policy is None:
        raise SpecError(
            f"sweep {spec.name!r} has no adaptive replication policy: attach "
            "SweepSpec(replication=AdaptiveCI(...)) or pass policy="
        )
    return _adaptive_sweep(
        spec,
        policy,
        workers=1,
        cache=_open_cache(cache_dir, spec, store, store_options),
        force=False,
        progress=False,
        shard=shard,
        cache_only=True,
        version=version,
    )


# ---------------------------------------------------------------------------
# Aggregation and export
# ---------------------------------------------------------------------------

#: two-sided 95% Student-t critical values by degrees of freedom (1..30);
#: beyond 30 the normal approximation 1.96 is used.
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t95(df: int) -> float:
    if df <= 0:
        return 0.0
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.96


def mean_ci95(values: Sequence[float]) -> tuple:
    """Sample mean and half-width of the 95% confidence interval."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    if n == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = _t95(n - 1) * math.sqrt(variance / n)
    return mean, half_width


def summarize(
    results: Iterable[RunResult],
    metrics: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Aggregate replications: one row per parameter combination.

    Runs sharing identical ``params`` (i.e. differing only in seed) are
    pooled; every numeric metric (or just ``metrics`` if given) is
    reported as ``<name>_mean`` and ``<name>_ci95``, plus an ``n_seeds``
    column.
    """
    groups: Dict[tuple, List[RunResult]] = {}
    for result in results:
        key = tuple(sorted(result.params.items(), key=lambda kv: kv[0]))
        groups.setdefault(key, []).append(result)

    rows: List[Dict[str, Any]] = []
    for key, members in groups.items():
        row: Dict[str, Any] = dict(key)
        row["n_seeds"] = len(members)
        names = metrics
        if names is None:
            names = [
                name
                for name, value in members[0].metrics.items()
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ]
        for name in names:
            values = [
                float(m.metrics[name])
                for m in members
                if isinstance(m.metrics.get(name), (int, float))
            ]
            mean, ci = mean_ci95(values)
            row[f"{name}_mean"] = round(mean, 6)
            row[f"{name}_ci95"] = round(ci, 6)
        rows.append(row)
    return rows


def export_json(
    results: Sequence[RunResult],
    path: str,
    spec: Optional[SweepSpec] = None,
    adaptive: Optional[AdaptiveResult] = None,
) -> None:
    """Write results (and optionally the generating spec) as one JSON document.

    ``adaptive`` embeds an adaptive sweep's convergence report (policy,
    per-point status incl. ``unconverged``, executed-vs-fixed budget) as
    an ``"adaptive"`` block next to the results.
    """
    document: Dict[str, Any] = {"results": [r.to_dict() for r in results]}
    if spec is not None:
        document["spec"] = {
            "name": spec.name,
            "description": spec.description,
            "duration": spec.duration,
            "seeds": list(spec.seeds),
            "grid": {axis: [_canonical(v) for v in values] for axis, values in spec.grid.items()},
            "base": canonical_config(spec.base),
        }
    if adaptive is not None:
        document["adaptive"] = adaptive.to_dict()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2)


def load_json(path: str) -> List[RunResult]:
    """Inverse of :func:`export_json` (the spec block, if present, is ignored)."""
    with open(path, "r", encoding="utf-8") as fh:
        document = json.load(fh)
    return [RunResult.from_dict(d) for d in document["results"]]


def export_csv(results: Sequence[RunResult], path: str) -> None:
    """Write one CSV row per run: params, seed, then every metric column."""
    rows = [r.row() for r in results]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def load_csv(path: str) -> List[Dict[str, str]]:
    """Read a CSV written by :func:`export_csv` back as a list of dicts."""
    with open(path, "r", encoding="utf-8", newline="") as fh:
        return list(csv.DictReader(fh))
