"""Experiment harness (System S10).

* :mod:`repro.experiments.scenarios` -- :class:`ScenarioConfig` and the
  builders that assemble a complete simulated network for the HVDB
  protocol or any baseline.
* :mod:`repro.experiments.runner` -- run one scenario and collect a
  :class:`~repro.metrics.collectors.MetricsReport`; sweep helpers used by
  the benchmark files under ``benchmarks/``.
"""

from repro.experiments.scenarios import (
    ScenarioConfig,
    BuiltScenario,
    build_scenario,
    PROTOCOLS,
)
from repro.experiments.runner import run_scenario, sweep, ExperimentResult

__all__ = [
    "ScenarioConfig",
    "BuiltScenario",
    "build_scenario",
    "PROTOCOLS",
    "run_scenario",
    "sweep",
    "ExperimentResult",
]
