"""Experiment harness (System S10).

* :mod:`repro.experiments.scenarios` -- :class:`ScenarioConfig` (a core
  section, registered component names for protocol/radio/mac/mobility,
  and typed per-protocol sections addressed by dotted grid axes like
  ``hvdb.dimension``) and :func:`build_scenario`, which resolves every
  name through :mod:`repro.registry` and assembles a complete simulated
  network for any registered
  :class:`~repro.simulation.stack.ProtocolStack`.
* :mod:`repro.experiments.runner` -- run one scenario in-process and
  collect a :class:`~repro.metrics.collectors.MetricsReport`; the
  executor the orchestrator's workers invoke.
* :mod:`repro.experiments.orchestrator` -- the parallel sweep engine:
  declarative :class:`SweepSpec` grids expanded into seeded runs, fanned
  out over ``multiprocessing`` workers, cached on disk by content hash,
  aggregated into :class:`RunResult` records with CSV/JSON export and
  mean +/- 95% CI summaries; :class:`AdaptiveCI` replication policies
  grow each grid point's seed set until a target CI half-width is met
  (:func:`run_sweep_adaptive`).
* :mod:`repro.experiments.executors` -- registry-driven run-execution
  backends behind :func:`run_sweep`: in-process ``serial``, the default
  ``process`` pool, a ``thread`` pool, and a ``queue`` of file-leased
  runs that any number of worker processes or machines sharing one
  filesystem drain cooperatively (``python -m repro.experiments
  worker``); the backend choice never enters cache keys, so results are
  byte-identical across executors.
* :mod:`repro.experiments.net` -- the networked ``tcp`` executor: a
  driver-side :class:`Coordinator` leases runs over length-prefixed,
  versioned protocol frames to workers on any reachable machine
  (``python -m repro.experiments worker --connect HOST:PORT``), with
  heartbeats, stale-lease reclaim and streamed results -- the queue's
  work-stealing semantics without the shared filesystem.  The shared
  lease state machine lives in :mod:`repro.experiments.leases`.
* :mod:`repro.experiments.specs` -- the registry of named sweeps (the
  benchmark grids E2/E3/E5/E6/E7/E8/A1/A2, the example scenarios, a
  smoke sweep) plus their registered hooks and collectors.
* :mod:`repro.experiments.stores` -- registry-driven *result-store
  backends* behind every cache path: the default ``json``
  directory-of-files layout, a single-file columnar ``sqlite`` store
  (WAL, concurrent-writer safe), and a ``parquet`` store when pyarrow
  is importable.  Everywhere a cache path is accepted, a store spec
  like ``sqlite:results.db`` picks the backend; like the executor, the
  store never enters cache keys, so artifacts are byte-identical across
  backends and caches migrate freely (:func:`merge_caches`).
* :mod:`repro.experiments.perf` -- wall-time perf-regression tracking:
  compare the per-run wall times of two result sets (result stores,
  exported artifacts, or cache generations) point by point, and append
  per-point medians to a JSONL *trend* history judged against the
  trailing median of the last few entries (:func:`check_trend`).
* ``python -m repro.experiments`` -- CLI over the registry:
  ``list`` / ``run`` / ``resume`` / ``export`` / ``merge`` /
  ``migrate`` / ``perf`` /
  ``protocols`` (registered components + spec-coverage check) /
  ``executors`` (registered backends) / ``stores`` (registered result
  stores) / ``worker`` (attach to a queue directory, or to a tcp
  coordinator with ``--connect``), with ``--shard
  I/N`` splitting a grid across share-nothing CI jobs, ``--executor
  NAME`` picking the execution backend and ``--store NAME`` the
  persistence backend.

Minimal single run::

    from repro.experiments import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig(protocol="hvdb", n_nodes=80), duration=90.0)
    print(result.report.delivery.delivery_ratio)

Parallel, cached sweep::

    from repro.experiments import SweepSpec, run_sweep, summarize

    spec = SweepSpec(
        name="demo",
        base=ScenarioConfig(protocol="flooding", area_size=900.0),
        grid={"n_nodes": [30, 60], "group_size": [5, 10]},
        seeds=(1, 2, 3),
        duration=60.0,
    )
    results = run_sweep(spec, workers=4, cache_dir=".repro-cache")
    rows = summarize(results)          # one row per grid point, mean ± CI
"""

from repro.experiments.scenarios import (
    ScenarioConfig,
    BuiltScenario,
    build_scenario,
    config_axis_names,
    PROTOCOLS,
)
from repro.experiments.runner import run_scenario, sweep, ExperimentResult, results_table
from repro.experiments.executors import (
    DEFAULT_EXECUTOR,
    EXECUTORS,
    Executor,
    WorkQueue,
    WorkerTaskError,
    available_executors,
    make_executor,
    register_executor,
    run_worker,
)
from repro.experiments.leases import (
    DEFAULT_STALE_AFTER,
    ExecutorStats,
    LeaseTable,
)
from repro.experiments.net import (
    PROTOCOL_VERSION,
    Coordinator,
    NetWorkerError,
    ProtocolError,
    TcpExecutor,
    run_net_worker,
)
from repro.experiments.orchestrator import (
    SweepSpec,
    SweepError,
    SpecError,
    RunSpec,
    RunResult,
    ResultCache,
    AdaptiveCI,
    AdaptiveResult,
    PointConvergence,
    GridPoint,
    expand_spec,
    expand_points,
    point_run,
    adaptive_seed_sequence,
    run_sweep,
    run_sweep_adaptive,
    load_adaptive_results,
    execute_run,
    parse_shard,
    shard_runs,
    shard_points,
    merge_caches,
    validate_runs,
    load_cached_results,
    summarize,
    mean_ci95,
    export_csv,
    export_json,
    load_csv,
    load_json,
    register_collector,
    register_hook,
)
from repro.registry import (
    register_mac,
    register_mobility,
    register_protocol,
    register_radio,
)
from repro.simulation.stack import AgentStack, ProtocolStack
from repro.experiments.perf import (
    DEFAULT_TREND_WINDOW,
    PerfReport,
    PointComparison,
    TrendEntry,
    TrendPoint,
    TrendReport,
    append_trend,
    check_trend,
    compare_wall_times,
    load_results,
    load_trend,
    mann_whitney_p,
    trend_entry,
    wall_time_groups,
)
from repro.experiments.stores import (
    DEFAULT_STORE,
    STORES,
    JsonStore,
    ResultStore,
    SqliteStore,
    StoreError,
    available_stores,
    make_store,
    parse_store_spec,
    register_store,
    store_exists,
    unavailable_stores,
)
from repro.experiments.specs import (
    SPECS,
    available_specs,
    get_spec,
    register_spec,
)

__all__ = [
    "ScenarioConfig",
    "BuiltScenario",
    "build_scenario",
    "config_axis_names",
    "PROTOCOLS",
    "ProtocolStack",
    "AgentStack",
    "run_scenario",
    "sweep",
    "ExperimentResult",
    "results_table",
    "SweepSpec",
    "SweepError",
    "SpecError",
    "RunSpec",
    "RunResult",
    "ResultCache",
    "AdaptiveCI",
    "AdaptiveResult",
    "PointConvergence",
    "GridPoint",
    "expand_spec",
    "expand_points",
    "point_run",
    "adaptive_seed_sequence",
    "run_sweep",
    "run_sweep_adaptive",
    "load_adaptive_results",
    "execute_run",
    "DEFAULT_EXECUTOR",
    "EXECUTORS",
    "Executor",
    "WorkQueue",
    "WorkerTaskError",
    "available_executors",
    "make_executor",
    "register_executor",
    "run_worker",
    "DEFAULT_STALE_AFTER",
    "ExecutorStats",
    "LeaseTable",
    "PROTOCOL_VERSION",
    "Coordinator",
    "NetWorkerError",
    "ProtocolError",
    "TcpExecutor",
    "run_net_worker",
    "parse_shard",
    "shard_runs",
    "shard_points",
    "merge_caches",
    "validate_runs",
    "load_cached_results",
    "PerfReport",
    "PointComparison",
    "compare_wall_times",
    "load_results",
    "mann_whitney_p",
    "wall_time_groups",
    "DEFAULT_TREND_WINDOW",
    "TrendEntry",
    "TrendPoint",
    "TrendReport",
    "trend_entry",
    "append_trend",
    "load_trend",
    "check_trend",
    "DEFAULT_STORE",
    "STORES",
    "ResultStore",
    "JsonStore",
    "SqliteStore",
    "StoreError",
    "register_store",
    "make_store",
    "store_exists",
    "parse_store_spec",
    "available_stores",
    "unavailable_stores",
    "summarize",
    "mean_ci95",
    "export_csv",
    "export_json",
    "load_csv",
    "load_json",
    "register_collector",
    "register_hook",
    "register_protocol",
    "register_radio",
    "register_mac",
    "register_mobility",
    "SPECS",
    "available_specs",
    "get_spec",
    "register_spec",
]
