"""Pluggable run-execution backends for the sweep orchestrator.

:func:`~repro.experiments.orchestrator.run_sweep` used to be hardwired to
a local ``multiprocessing`` pool.  This module extracts that choice into
a registry of named *executor* backends (the same pattern as the
protocol/radio/mac/mobility registries of :mod:`repro.registry`): an
:class:`Executor` maps pending ``(key, RunSpec)`` pairs to recorded
:class:`~repro.experiments.orchestrator.RunResult`\\ s, and the
orchestrator dispatches through :data:`EXECUTORS` instead of branching.

Four backends ship:

* ``serial`` -- a plain in-process loop; the debuggable reference
  implementation (breakpoints and profilers work, nothing forks).
* ``process`` -- the previous behaviour and the registered **default**: a
  forked :class:`~concurrent.futures.ProcessPoolExecutor` of ``workers``
  processes (falling back to the serial loop for one worker or one run).
* ``thread`` -- a :class:`~concurrent.futures.ThreadPoolExecutor`; cheap
  to start, good enough for IO-light smoke grids and CI, but the
  simulator is pure Python so the GIL caps real speed-up.
* ``queue`` -- a *work-stealing queue over a shared directory*: the
  driver enqueues each pending run as a task file, and any number of
  share-nothing worker processes -- on this machine
  (``run --executor queue --workers N`` spawns them) or on any machine
  that mounts the same filesystem (``python -m repro.experiments worker
  --queue-dir DIR``) -- claim individual runs via atomic file leases
  (``O_EXCL`` claim files with heartbeat + stale-lease reclaim) and
  write results back through the queue's *result store* -- any backend
  registered in :mod:`repro.experiments.stores` (the default ``json``
  directory, or e.g. ``sqlite`` whose WAL mode lets every worker
  publish into one database file concurrently).

A fifth backend, ``tcp``, lives in :mod:`repro.experiments.net`: the
same lease protocol over sockets instead of a shared mount (workers
attach with ``python -m repro.experiments worker --connect HOST:PORT``).
The lease/heartbeat/stale-reclaim rules both work-stealing backends
share -- including :data:`DEFAULT_STALE_AFTER`, re-exported here --
live in :mod:`repro.experiments.leases`.

Which backend runs is a *sweep-cosmetic* choice: it is excluded from
cache keys and artifacts, so a warm cache populated under one executor
replays with zero executions under every other, and the merged artifact
set is byte-identical across backends.

Queue directory layout (see ``docs/executors.md`` for the protocol)::

    <queue-dir>/
      tasks/<key>.task     pickled RunSpec, one file per pending run
      claims/<key>.claim   O_EXCL lease; mtime is the worker's heartbeat
      results/<key>.json   the result store, keyed by the run's cache_key
                           (a sqlite-backed queue uses ``results.db``)
      errors/<key>.json    terminal per-run failure, reported to the driver
      workers/<id>         liveness marker, touched by each worker per scan
      reclaims/<id>.json   one record per broken stale lease (churn counters)
      store                the driver's chosen result-store backend name
                           (absent = the default ``json`` layout)
      closed               sentinel: the driver is done; idle workers exit

Register third-party backends exactly like built-ins::

    from repro.experiments.executors import Executor, register_executor

    @register_executor("ssh")
    class SshExecutor(Executor):
        ...
"""

from __future__ import annotations

import copy
import json
import os
import pickle
import re
import socket
import subprocess
import sys
import threading
import time
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.leases import DEFAULT_STALE_AFTER, ExecutorStats, is_stale
from repro.registry import Registry

#: executor-backend factories; ``SweepSpec.executor`` / ``--executor``
#: resolve here.  Bootstraps this module (the built-ins), the networked
#: backend (the ``tcp`` coordinator) and the specs module (the one
#: module spawn-platform workers re-import), mirroring the component
#: registries.
EXECUTORS = Registry(
    "executor",
    bootstrap=(
        "repro.experiments.executors",
        "repro.experiments.net.coordinator",
        "repro.experiments.specs",
    ),
)

#: the backend used when neither the spec nor the caller names one --
#: the pre-registry behaviour (a local process pool)
DEFAULT_EXECUTOR = "process"

#: default shared-queue directory of the ``queue`` backend and the
#: ``worker`` CLI subcommand
DEFAULT_QUEUE_DIR = ".repro-queue"


def register_executor(name: str) -> Callable:
    """Register an :class:`Executor` factory (usually the class) under ``name``."""
    return EXECUTORS.register(name)


def make_executor(name, **options: Any) -> "Executor":
    """Instantiate the executor registered under ``name`` (default: process).

    Unknown names raise :class:`~repro.registry.RegistryError` listing the
    registered alternatives -- the orchestrator calls this eagerly, before
    any run executes, so a typo'd ``--executor`` fails like a typo'd
    protocol name.  ``options`` are backend keyword arguments (the
    ``queue`` backend takes ``queue_dir``/``poll_interval``/
    ``stale_after``/``store``; the ``tcp`` backend takes ``host``/
    ``port``/``poll_interval``/``stale_after``; the in-process backends
    take none).

    An already-constructed :class:`Executor` instance passes through
    unchanged (``options`` must then be empty) -- callers that need to
    configure a backend beyond its keyword options, e.g. binding a tcp
    coordinator to an ephemeral port and learning the port before the
    sweep starts, build the instance themselves and hand it to
    ``run_sweep(..., executor=instance)``.
    """
    if isinstance(name, Executor):
        if options:
            raise ValueError(
                "make_executor: options cannot be combined with an "
                "already-constructed Executor instance"
            )
        return name
    return EXECUTORS.get(name or DEFAULT_EXECUTOR)(**options)


def available_executors() -> List[Tuple[str, str]]:
    """Sorted ``(name, one-line description)`` pairs of registered backends."""
    rows = []
    for name in EXECUTORS.names():
        entry = EXECUTORS.get(name)
        doc = (entry.__doc__ or "").strip()
        rows.append((name, doc.splitlines()[0] if doc else ""))
    return rows


def _log(progress: bool, message: str) -> None:
    if progress:
        print(message, file=sys.stderr, flush=True)


class WorkerTaskError(RuntimeError):
    """A queued run failed remotely (or its workers disappeared)."""


class Executor:
    """One run-execution strategy: the contract ``run_sweep`` dispatches to.

    :meth:`map_runs` executes every ``(key, RunSpec)`` pair of
    ``pending``, calling ``record(key, result)`` once per completed run
    and ``fail(run, exc)`` once per failed run -- *every* run is drained
    even when some fail, so completed work is always recorded (and
    thereby cached) before the caller raises.  The caller keys results
    itself, so record order may be completion order; determinism of the
    final result list is the orchestrator's job, and cache semantics are
    carried entirely by ``record``.  ``fresh=True`` (a ``--force`` run)
    tells a backend with its own result store (the queue) to discard and
    re-execute rather than replay.

    Backends with external state (the queue's local worker processes)
    release it in :meth:`close`, which the orchestrator always calls --
    an executor instance may serve several :meth:`map_runs` batches
    first (the adaptive loop schedules one batch per round).
    """

    #: registered name, for progress lines and error messages
    name = "base"

    def map_runs(
        self,
        pending: Sequence[tuple],
        execute: Callable,
        record: Callable[[Any, Any], None],
        fail: Callable[[Any, Exception], None],
        *,
        workers: int,
        label: str,
        progress: bool,
        fresh: bool = False,
    ) -> None:
        raise NotImplementedError

    def describe(self, workers: int) -> str:
        """Human-readable parallelism for the scheduling progress line."""
        return f"{max(1, workers)} worker(s) [{self.name}]"

    def stats(self) -> Optional[ExecutorStats]:
        """Churn counters for the run summary, or None.

        In-process backends have no worker churn and return None; the
        work-stealing backends (queue, tcp) report leases reclaimed,
        workers seen/lost and runs re-executed, cumulative across every
        :meth:`map_runs` batch this instance served.
        """
        return None

    def close(self) -> None:
        """Release backend state (processes, sentinels); idempotent."""

    def _serial_loop(self, pending, execute, record, fail) -> None:
        for key, run in pending:
            try:
                record(key, execute(run))
            except Exception as exc:
                fail(run, exc)

    def _pool_loop(self, pending, execute, record, fail, pool) -> None:
        """The shared submit/drain loop of the in-process pool backends."""
        import concurrent.futures

        with pool:
            futures = {pool.submit(execute, run): (key, run) for key, run in pending}
            for future in concurrent.futures.as_completed(futures):
                key, run = futures[future]
                try:
                    record(key, future.result())
                except Exception as exc:
                    fail(run, exc)


@register_executor("serial")
class SerialExecutor(Executor):
    """In-process loop: debuggable reference backend (no forking, no pool)."""

    name = "serial"

    def map_runs(self, pending, execute, record, fail, *, workers, label, progress,
                 fresh=False):
        self._serial_loop(pending, execute, record, fail)

    def describe(self, workers: int) -> str:
        return "1 worker(s) [serial]"


@register_executor("thread")
class ThreadExecutor(Executor):
    """Thread pool: cheap startup for IO-light smoke/CI grids (GIL-bound)."""

    name = "thread"

    def map_runs(self, pending, execute, record, fail, *, workers, label, progress,
                 fresh=False):
        if workers <= 1 or len(pending) <= 1:
            self._serial_loop(pending, execute, record, fail)
            return
        import concurrent.futures

        pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=min(workers, len(pending))
        )
        self._pool_loop(pending, execute, record, fail, pool)


@register_executor("process")
class ProcessExecutor(Executor):
    """Forked process pool: the default local backend (real parallelism)."""

    name = "process"

    def map_runs(self, pending, execute, record, fail, *, workers, label, progress,
                 fresh=False):
        if workers <= 1 or len(pending) <= 1:
            self._serial_loop(pending, execute, record, fail)
            return
        import concurrent.futures
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=context
        )
        self._pool_loop(pending, execute, record, fail, pool)


# ---------------------------------------------------------------------------
# The shared work queue (file-lease work stealing)
# ---------------------------------------------------------------------------


def _atomic_write(path: str, blob: bytes) -> None:
    tmp = f"{path}.tmp-{uuid.uuid4().hex[:8]}"
    with open(tmp, "wb") as fh:
        fh.write(blob)
    os.replace(tmp, path)


class WorkQueue:
    """Filesystem layout and lease protocol of one shared queue directory.

    Every operation is safe for any number of share-nothing processes on
    a common filesystem: task/result/error writes are atomic (tmp file +
    rename), and a lease is an ``O_CREAT | O_EXCL`` claim file -- exactly
    one claimer wins -- whose mtime the holder refreshes as a heartbeat.
    A claim whose heartbeat is older than ``stale_after`` is abandoned
    (the worker crashed mid-run): the first worker to notice *renames*
    the stale claim aside (again, exactly one renamer wins) and races for
    a fresh claim, so a crashed worker's run is re-executed instead of
    wedging the sweep.

    Task ids are the runs' content-hash cache keys, which makes the
    queue's results literally a result store
    (:mod:`repro.experiments.stores`): a worker publishes a finished run
    with ``store.put`` and the driver polls ``store.get`` -- the same
    on-disk contract every other cache consumer (merge, export, perf)
    already speaks.  The driver records its chosen backend name in the
    ``store`` file (:meth:`set_result_store`) *before* enqueuing tasks;
    workers re-read it (:meth:`open_results`) so long-lived ``--forever``
    workers follow the store across sweeps.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.tasks_dir = os.path.join(root, "tasks")
        self.claims_dir = os.path.join(root, "claims")
        self.results_dir = os.path.join(root, "results")
        self.errors_dir = os.path.join(root, "errors")
        self.workers_dir = os.path.join(root, "workers")
        self.reclaims_dir = os.path.join(root, "reclaims")
        self.closed_path = os.path.join(root, "closed")
        self.store_path = os.path.join(root, "store")
        # one shared probe per queue dir (not per process): any
        # participant's recent touch approximates "filesystem now", and a
        # fixed name leaves exactly one file instead of per-pid litter
        self._probe_path = os.path.join(root, ".clock")

    def _fs_now(self) -> float:
        """The shared filesystem's current time, as an mtime.

        Lease staleness must compare a claim's heartbeat mtime against
        the *filesystem's* clock, not this process's: on a network
        filesystem the machines' clocks can disagree by more than
        ``stale_after``, which would make a fast-clocked worker steal
        live leases (or a slow-clocked one never reclaim dead ones).
        Touching a probe file and reading its mtime samples the same
        clock the heartbeats are stamped with.
        """
        try:
            with open(self._probe_path, "w", encoding="utf-8"):
                pass
            return os.path.getmtime(self._probe_path)
        except OSError:  # pragma: no cover - unwritable/racing queue dir
            return time.time()

    # -- lifecycle ---------------------------------------------------------

    def ensure(self) -> None:
        """Create the layout; any participant may call this first."""
        for path in (
            self.tasks_dir,
            self.claims_dir,
            self.results_dir,
            self.errors_dir,
            self.workers_dir,
            self.reclaims_dir,
        ):
            os.makedirs(path, exist_ok=True)

    def reopen(self) -> None:
        """Driver-side: (re)start a sweep -- clear a stale closed sentinel."""
        self.ensure()
        try:
            os.unlink(self.closed_path)
        except FileNotFoundError:
            pass

    def close(self) -> None:
        """Driver-side: the sweep is done; idle workers may exit."""
        self.ensure()
        _atomic_write(self.closed_path, b"closed\n")

    def is_closed(self) -> bool:
        return os.path.exists(self.closed_path)

    # -- tasks -------------------------------------------------------------

    def _task_path(self, task_id: str) -> str:
        return os.path.join(self.tasks_dir, f"{task_id}.task")

    def enqueue(self, task_id: str, run: Any) -> None:
        """Publish one pending run (a picklable RunSpec) under ``task_id``."""
        _atomic_write(self._task_path(task_id), pickle.dumps(run))

    def load_task(self, task_id: str) -> Any:
        """Unpickle a task; raises ``OSError`` if it was finished meanwhile."""
        with open(self._task_path(task_id), "rb") as fh:
            return pickle.loads(fh.read())

    def task_ids(self) -> List[str]:
        """Pending task ids, sorted (claimed tasks included until finished)."""
        try:
            names = os.listdir(self.tasks_dir)
        except FileNotFoundError:
            return []
        return sorted(name[: -len(".task")] for name in names if name.endswith(".task"))

    def finish(self, task_id: str) -> None:
        """Remove a completed task file (its result/error is published)."""
        try:
            os.unlink(self._task_path(task_id))
        except FileNotFoundError:
            pass

    # -- results -----------------------------------------------------------

    def set_result_store(self, name: Optional[str]) -> None:
        """Driver-side: record the sweep's result-store backend choice.

        Written before any task is enqueued, so a worker that claims one
        always publishes into the store the driver will poll.  ``None``
        resets to the default (the file is removed), which keeps a queue
        directory reusable across sweeps with different stores.
        """
        if name is None:
            try:
                os.unlink(self.store_path)
            except FileNotFoundError:
                pass
            return
        _atomic_write(self.store_path, f"{name}\n".encode("utf-8"))

    def result_store_name(self) -> str:
        """The backend name the driver recorded (default when absent)."""
        from repro.experiments.stores import DEFAULT_STORE

        try:
            with open(self.store_path, "r", encoding="utf-8") as fh:
                name = fh.read().strip()
        except OSError:
            return DEFAULT_STORE
        return name or DEFAULT_STORE

    def open_results(self) -> Any:
        """Open this queue's result store at its conventional location.

        Each backend declares where it lives relative to the queue root
        (``results/`` for directory layouts, ``results.db`` for sqlite),
        so every participant -- driver, workers, and a later ``merge`` of
        the queue's results -- derives the same location from the queue
        directory alone.
        """
        from repro.experiments.stores import STORES, ResultStore

        factory = STORES.get(self.result_store_name())
        relative = getattr(factory, "queue_filename", ResultStore.queue_filename)
        return factory(os.path.join(self.root, relative))

    def discard_result(self, task_id: str) -> None:
        """Drop a published result (a ``--force`` sweep re-executes it)."""
        store = self.open_results()
        try:
            store.delete(task_id)
        finally:
            store.close()

    # -- leases ------------------------------------------------------------

    def _claim_path(self, task_id: str) -> str:
        return os.path.join(self.claims_dir, f"{task_id}.claim")

    def claim(self, task_id: str, worker_id: str, stale_after: float) -> bool:
        """Try to lease ``task_id``; True iff this worker now holds it.

        A live claim (heartbeat within ``stale_after``) is never touched.
        A stale one is broken by atomically renaming it aside first, so
        of any number of workers noticing the same dead lease exactly one
        proceeds to the (again exclusive) re-claim.
        """
        path = self._claim_path(task_id)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            try:
                age = self._fs_now() - os.path.getmtime(path)
            except OSError:
                return False  # released concurrently; rescan
            if not is_stale(age, stale_after):
                return False
            tomb = f"{path}.stale-{uuid.uuid4().hex[:8]}"
            try:
                os.replace(path, tomb)
            except OSError:
                return False  # another worker broke it first
            try:
                with open(tomb, "r", encoding="utf-8") as fh:
                    old_owner = fh.read()
            except OSError:  # pragma: no cover - racing cleanup
                old_owner = ""
            os.unlink(tomb)
            self.record_reclaim(task_id, old_owner, worker_id)
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(worker_id)
        return True

    def claim_owner(self, task_id: str) -> Optional[str]:
        """The worker id recorded in the claim file, or None if unclaimed."""
        try:
            with open(self._claim_path(task_id), "r", encoding="utf-8") as fh:
                return fh.read()
        except OSError:
            return None

    def heartbeat(self, task_id: str, worker_id: str) -> None:
        """Refresh the lease's liveness stamp; OSError if it was lost.

        Ownership is verified first: if the claim was broken as stale and
        re-claimed by another worker, refreshing it would keep the *new*
        owner's lease falsely fresh -- instead the presumed-dead worker
        gets the OSError that tells its heartbeat thread to stop.
        """
        if self.claim_owner(task_id) != worker_id:
            raise OSError(f"lease on {task_id} is no longer held by {worker_id}")
        os.utime(self._claim_path(task_id))

    def release(self, task_id: str, worker_id: Optional[str] = None) -> None:
        """Drop the lease; with ``worker_id``, only if still its owner.

        The ownership check keeps a worker whose stale lease was stolen
        from unlinking the *new* owner's claim (which would expose the
        task to a third claimer while it is still being executed).
        """
        if worker_id is not None and self.claim_owner(task_id) != worker_id:
            return
        try:
            os.unlink(self._claim_path(task_id))
        except FileNotFoundError:
            pass

    # -- errors ------------------------------------------------------------

    def _error_path(self, task_id: str) -> str:
        return os.path.join(self.errors_dir, f"{task_id}.json")

    def record_error(self, task_id: str, run_id: str, exc: Exception) -> None:
        """Publish a terminal per-run failure for the driver to report."""
        payload = {"run_id": run_id, "error": repr(exc)}
        _atomic_write(
            self._error_path(task_id), json.dumps(payload).encode("utf-8")
        )

    def pop_error(self, task_id: str) -> Optional[Dict[str, str]]:
        """Consume a published failure (so a later sweep retries the run)."""
        path = self._error_path(task_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        return payload

    # -- churn bookkeeping -------------------------------------------------

    def register_worker(self, worker_id: str) -> None:
        """Touch this worker's liveness marker (called once per scan).

        The markers feed the ``workers seen`` churn counter; re-touching
        every scan keeps the mtime current, so a driver can count the
        workers that participated *in this sweep* by mtime window rather
        than trusting leftovers from earlier sweeps.
        """
        safe = re.sub(r"[^\w.-]", "_", worker_id) or "worker"
        try:
            with open(os.path.join(self.workers_dir, safe), "w", encoding="utf-8") as fh:
                fh.write(worker_id)
        except OSError:  # pragma: no cover - unwritable queue dir
            pass

    def record_reclaim(self, task_id: str, old_owner: str, new_owner: str) -> None:
        """Persist one broken-stale-lease event (feeds the churn counters)."""
        payload = {"task": task_id, "old": old_owner, "new": new_owner}
        _atomic_write(
            os.path.join(self.reclaims_dir, f"{uuid.uuid4().hex[:12]}.json"),
            json.dumps(payload).encode("utf-8"),
        )

    def churn_stats(self, since: float = 0.0) -> ExecutorStats:
        """Aggregate the robustness counters from events at/after ``since``.

        ``since`` is an mtime on the shared filesystem's clock (compare
        :meth:`_fs_now`); the driver passes its sweep-start stamp so
        events left behind by earlier sweeps in a reused queue directory
        are not re-counted.  A reclaimed task is counted as re-executed
        -- the reclaim exists precisely so another worker re-runs it.
        """
        stats = ExecutorStats()
        reclaimed_tasks, lost_workers = set(), set()
        try:
            names = os.listdir(self.reclaims_dir)
        except FileNotFoundError:
            names = []
        for name in names:
            path = os.path.join(self.reclaims_dir, name)
            try:
                if os.path.getmtime(path) < since:
                    continue
                with open(path, "r", encoding="utf-8") as fh:
                    event = json.load(fh)
            except (OSError, ValueError):  # pragma: no cover - racing cleanup
                continue
            stats.leases_reclaimed += 1
            reclaimed_tasks.add(event.get("task"))
            if event.get("old"):
                lost_workers.add(event["old"])
        stats.runs_reexecuted = len(reclaimed_tasks)
        stats.workers_lost = len(lost_workers)
        try:
            names = os.listdir(self.workers_dir)
        except FileNotFoundError:
            names = []
        for name in names:
            try:
                if os.path.getmtime(os.path.join(self.workers_dir, name)) >= since:
                    stats.workers_seen += 1
            except OSError:  # pragma: no cover - racing cleanup
                continue
        return stats


def run_worker(
    queue_dir: str,
    worker_id: Optional[str] = None,
    poll_interval: float = 0.5,
    stale_after: float = DEFAULT_STALE_AFTER,
    heartbeat_interval: Optional[float] = None,
    execute: Optional[Callable] = None,
    max_tasks: Optional[int] = None,
    exit_when_closed: bool = True,
    progress: bool = False,
) -> int:
    """Attach to a queue directory and execute claimed runs until done.

    The worker loop behind ``python -m repro.experiments worker``: scan
    the task files, lease one (stealing abandoned leases whose heartbeat
    is older than ``stale_after``), execute it while a background thread
    heartbeats the claim, publish the result through the queue's result
    store (whichever backend the driver recorded -- re-read every scan,
    so a ``--forever`` worker follows the store across sweeps), and move
    on.
    A run that raises is published as a terminal error (no retry loop --
    deterministic runs fail deterministically); a worker that *crashes*
    publishes nothing, its lease goes stale and another worker re-claims
    the run.

    Returns the number of runs this worker executed.  With
    ``exit_when_closed`` (the default) the worker returns once the driver
    has written the ``closed`` sentinel and no tasks remain; otherwise it
    keeps serving sweep after sweep until killed.  ``max_tasks`` bounds
    the executed runs (mainly for tests).  ``execute`` defaults to
    :func:`~repro.experiments.orchestrator.execute_run`.
    """
    from repro.experiments.orchestrator import execute_run

    execute = execute or execute_run
    queue = WorkQueue(queue_dir)
    queue.ensure()
    cache = queue.open_results()
    store_name = queue.result_store_name()
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    if heartbeat_interval is None:
        heartbeat_interval = max(stale_after / 4.0, 0.05)
    executed = 0
    while True:
        if max_tasks is not None and executed >= max_tasks:
            return executed
        queue.register_worker(wid)  # liveness marker for the churn counters
        # follow a driver that switched the queue's store between sweeps
        current_store = queue.result_store_name()
        if current_store != store_name:
            cache.close()
            store_name = current_store
            cache = queue.open_results()
        claimed = None
        for task_id in queue.task_ids():
            if not queue.claim(task_id, wid, stale_after):
                continue
            if cache.get(task_id) is not None:
                # a crashed worker published the result but not the
                # cleanup; finish its bookkeeping and keep scanning
                queue.finish(task_id)
                queue.release(task_id, wid)
                continue
            claimed = task_id
            break
        if claimed is None:
            if exit_when_closed and queue.is_closed() and not queue.task_ids():
                return executed
            time.sleep(poll_interval)
            continue
        try:
            run = queue.load_task(claimed)
        except (OSError, pickle.UnpicklingError):
            queue.release(claimed)  # finished (or corrupt) under our feet
            continue
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(heartbeat_interval):
                try:
                    queue.heartbeat(claimed, wid)
                except OSError:
                    return  # lease was broken: we were presumed dead
        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            result = execute(run)
        except Exception as exc:
            # publish the failure only while still holding the lease: a
            # dispossessed worker (stale lease stolen mid-stall) must not
            # fail a run its new owner is about to complete, nor delete
            # the task file out from under it
            if queue.claim_owner(claimed) == wid:
                queue.record_error(claimed, getattr(run, "run_id", claimed), exc)
                queue.finish(claimed)
            _log(progress, f"[worker {wid}] FAILED {getattr(run, 'run_id', claimed)}: {exc!r}")
        else:
            # deterministic results are idempotent, so publishing is safe
            # even if the lease was meanwhile stolen (both copies are
            # byte-equivalent and put() renames atomically)
            cache.put(claimed, result)
            queue.finish(claimed)
            executed += 1
            _log(
                progress,
                f"[worker {wid}] {result.run_id} ({result.wall_time:.1f}s)",
            )
        finally:
            # a BaseException (Ctrl-C detaching the worker) reaches this
            # having published neither result nor error: release the
            # lease but *leave the task file*, so another worker re-claims
            # the run instead of the sweep losing it
            stop.set()
            beater.join()
            queue.release(claimed, wid)


@register_executor("queue")
class QueueExecutor(Executor):
    """Work-stealing queue over a shared directory (multi-process/machine).

    The driver side of the queue protocol: enqueue every pending run as a
    task file, optionally spawn ``workers`` local worker processes
    (``python -m repro.experiments worker`` subprocesses; ``workers=0``
    relies entirely on externally attached workers), then poll the
    queue's result store (``store`` names the backend; default ``json``,
    recorded in the queue directory so workers publish into the same
    backend), recording each run as its result lands.  On
    :meth:`close` the ``closed`` sentinel is written so idle workers
    drain and exit, and local workers are reaped.

    Execution results are byte-for-byte the runs' deterministic outcomes,
    so which worker (or machine) claims which run never shows in the
    merged artifacts.
    """

    name = "queue"

    def __init__(
        self,
        queue_dir: str = DEFAULT_QUEUE_DIR,
        poll_interval: float = 0.2,
        stale_after: float = DEFAULT_STALE_AFTER,
        store: Optional[str] = None,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError(f"queue poll_interval must be > 0, got {poll_interval!r}")
        if stale_after <= 0:
            raise ValueError(f"queue stale_after must be > 0, got {stale_after!r}")
        if store is not None:
            # eager validation, like every registry lookup: a typo'd
            # store must fail before any task is enqueued
            from repro.experiments.stores import STORES

            STORES.get(store)
        self.queue_dir = queue_dir
        self.poll_interval = poll_interval
        self.stale_after = stale_after
        self.store = store
        self.queue = WorkQueue(queue_dir)
        self._procs: List[subprocess.Popen] = []
        #: fs-clock stamp of this sweep's start; churn events older than
        #: this belong to earlier sweeps of a reused queue directory
        self._epoch: Optional[float] = None

    def describe(self, workers: int) -> str:
        if workers <= 0:
            return f"external worker(s) [queue {self.queue_dir}]"
        return f"{workers} worker(s) [queue {self.queue_dir}]"

    def _spawn_local_workers(self, workers: int, progress: bool) -> None:
        if self._procs or workers <= 0:
            return
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            "--queue-dir",
            self.queue_dir,
            "--poll-interval",
            str(self.poll_interval),
            "--stale-after",
            str(self.stale_after),
        ]
        if not progress:
            # spawned workers inherit stderr; a progress-suppressed sweep
            # must stay silent end to end
            command.append("--quiet")
        for _ in range(workers):
            self._procs.append(subprocess.Popen(command, env=env))

    def stats(self) -> Optional[ExecutorStats]:
        if self._epoch is None:
            return ExecutorStats()
        return self.queue.churn_stats(since=self._epoch)

    def map_runs(self, pending, execute, record, fail, *, workers, label, progress,
                 fresh=False):
        self.queue.reopen()
        if self._epoch is None:
            # 1s of slack absorbs coarse (whole-second) mtime granularity
            # on filesystems that have it
            self._epoch = self.queue._fs_now() - 1.0
        # the store choice must land before the first task file: a worker
        # that claims a task derives the result location from this record
        self.queue.set_result_store(self.store)
        cache = self.queue.open_results()
        # several pending entries may share one cache key (interchangeable
        # runs); execute once, record for every key
        by_task: Dict[str, List[tuple]] = {}
        for key, run in pending:
            by_task.setdefault(run.cache_key(), []).append((key, run))
        for task_id, entries in by_task.items():
            if fresh:
                # a --force sweep must re-execute, not replay a result a
                # previous sweep left in this queue's results cache
                self.queue.discard_result(task_id)
            elif cache.get(task_id) is not None:
                continue
            # a leftover error file from a sweep that died before
            # consuming it must not fail this sweep's fresh attempt
            self.queue.pop_error(task_id)
            self.queue.enqueue(task_id, entries[0][1])
        self._spawn_local_workers(workers, progress)

        outstanding = set(by_task)
        last_wait_note = time.monotonic()
        while outstanding:
            progressed = False
            for task_id in sorted(outstanding):
                result = cache.get(task_id)
                if result is not None:
                    # executed live by a worker on this sweep's behalf --
                    # not a cache hit of this invocation
                    result.from_cache = False
                    for index, (key, run) in enumerate(by_task[task_id]):
                        entry = result if index == 0 else copy.deepcopy(result)
                        # stamp each entry's own identity: several pending
                        # runs may share this cache key but differ in
                        # run_id/params, and an in-process executor would
                        # have stamped each run itself
                        entry.run_id = run.run_id
                        entry.params = dict(run.params)
                        try:
                            record(key, entry)
                        except Exception as exc:
                            fail(run, exc)
                    outstanding.discard(task_id)
                    progressed = True
                    continue
                error = self.queue.pop_error(task_id)
                if error is not None:
                    exc = WorkerTaskError(
                        f"queued run {error.get('run_id', task_id)} failed on a "
                        f"worker: {error.get('error', 'unknown error')}"
                    )
                    for key, run in by_task[task_id]:
                        fail(run, exc)
                    outstanding.discard(task_id)
                    progressed = True
            if not outstanding or progressed:
                last_wait_note = time.monotonic()
                continue
            if time.monotonic() - last_wait_note >= 10.0:
                # stalled-looking sweep: say what we are waiting for (the
                # usual cause with workers=0 is that no worker attached)
                claimed = sum(
                    1
                    for task_id in outstanding
                    if self.queue.claim_owner(task_id) is not None
                )
                _log(
                    progress,
                    f"[{label}] queue {self.queue_dir}: waiting on "
                    f"{len(outstanding)} run(s) ({claimed} claimed by "
                    "workers); attach workers with `python -m "
                    f"repro.experiments worker --queue-dir {self.queue_dir}`",
                )
                last_wait_note = time.monotonic()
            if self._procs and all(proc.poll() is not None for proc in self._procs):
                codes = [proc.returncode for proc in self._procs]
                exc = WorkerTaskError(
                    f"all {len(self._procs)} local queue worker(s) exited "
                    f"(exit codes {codes}) with {len(outstanding)} run(s) "
                    "outstanding; completed runs are cached -- a re-run "
                    "resumes from them"
                )
                for task_id in sorted(outstanding):
                    for key, run in by_task[task_id]:
                        fail(run, exc)
                return
            time.sleep(self.poll_interval)

    def close(self) -> None:
        # write the sentinel even when every run was a main-cache hit and
        # map_runs never ran: externally attached workers are waiting on
        # it, and a warm re-run must not strand them
        self.queue.close()
        deadline = time.monotonic() + max(10 * self.poll_interval, 5.0)
        for proc in self._procs:
            try:
                proc.wait(timeout=max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:  # pragma: no cover - slow worker
                proc.terminate()
                proc.wait()
        self._procs = []
