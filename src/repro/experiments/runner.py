"""In-process scenario execution.

:func:`run_scenario` builds, runs and measures a single scenario with
full access to the live objects (``before_run`` / ``during_run`` hooks,
the scenario itself on the result).  It is the executor the parallel
orchestrator (:mod:`repro.experiments.orchestrator`) invokes inside each
worker; use it directly when an experiment needs imperative control --
for grids of runs, declare a
:class:`~repro.experiments.orchestrator.SweepSpec` and call
:func:`~repro.experiments.orchestrator.run_sweep` instead.

:func:`sweep` is the small in-process convenience wrapper for a
single-axis sweep where the caller wants the live scenario of every run;
it shares the orchestrator's grid expansion (and therefore its ordering
and seeding rules) but never leaves the current process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.orchestrator import SweepSpec, expand_spec
from repro.experiments.scenarios import BuiltScenario, ScenarioConfig, build_scenario
from repro.metrics.collectors import MetricsReport, collect_metrics, format_table


@dataclass
class ExperimentResult:
    """One scenario run: the report plus the scenario it came from."""

    config: ScenarioConfig
    report: MetricsReport
    scenario: BuiltScenario

    def row(self, **extra: Any) -> dict:
        row = self.report.as_row()
        row.update(extra)
        return row


def run_scenario(
    config: ScenarioConfig,
    duration: float = 120.0,
    before_run: Optional[Callable[[BuiltScenario], None]] = None,
    during_run: Optional[Callable[[BuiltScenario], None]] = None,
) -> ExperimentResult:
    """Build, run and measure one scenario.

    ``before_run`` is called after the scenario is built but before the
    simulation starts (e.g. to register QoS requirements); ``during_run``
    is called halfway through the run (e.g. to inject failures) -- the run
    is split into two halves around it.  The mobility model is part of the
    config (``ScenarioConfig.mobility``, a registered name), not a
    side-channel argument, so the orchestrator's cache key captures it.
    """
    scenario = build_scenario(config)
    if before_run is not None:
        before_run(scenario)
    scenario.start()
    if during_run is not None:
        scenario.network.simulator.run(duration / 2.0)
        during_run(scenario)
        scenario.network.simulator.run(duration / 2.0)
    else:
        scenario.network.simulator.run(duration)
    report = collect_metrics(
        scenario.network,
        protocol=config.protocol,
        duration=duration,
        backbone_nodes=scenario.backbone_nodes(),
        protocol_stats=scenario.protocol_stats(),
    )
    return ExperimentResult(config=config, report=report, scenario=scenario)


def sweep(
    base_config: ScenarioConfig,
    parameter: str,
    values: Sequence[Any],
    duration: float = 120.0,
    extra_overrides: Optional[Dict[str, Any]] = None,
) -> List[ExperimentResult]:
    """Run the base scenario once per value of ``parameter``, in-process.

    ``parameter`` must be a field of :class:`ScenarioConfig` (dotted
    section axes like ``"hvdb.dimension"`` included); the swept value is
    also attached to each result row under the parameter name.  The value
    grid is expanded by the orchestrator (one axis, one seed), so ordering
    and per-run seeding match a parallel
    :func:`~repro.experiments.orchestrator.run_sweep` of the same grid;
    unlike ``run_sweep``, every returned result keeps its live scenario.
    """
    base = (
        dataclasses.replace(base_config, **extra_overrides)
        if extra_overrides
        else base_config
    )
    spec = SweepSpec(
        name="sweep",
        base=base,
        grid={parameter: list(values)},
        seeds=(base.seed,),
        duration=duration,
    )
    results: List[ExperimentResult] = []
    for run in expand_spec(spec):
        results.append(run_scenario(run.config, duration=run.duration))
    return results


def _config_value(config: ScenarioConfig, name: str) -> Any:
    """Read a plain or dotted (``section.field``) config attribute."""
    value: Any = config
    for part in name.split("."):
        value = getattr(value, part)
    return value


def results_table(
    results: Iterable[ExperimentResult],
    swept: Optional[str] = None,
    title: Optional[str] = None,
) -> str:
    """Format a list of results as an aligned table (one row per run).

    ``swept`` may be a dotted section axis (``"hvdb.dimension"``), same
    as :func:`sweep`'s ``parameter``.
    """
    rows = []
    for result in results:
        extra = {}
        if swept is not None:
            extra[swept] = _config_value(result.config, swept)
        rows.append(result.row(**extra))
    return format_table(rows, title)
