"""Command-line front end for the sweep orchestrator.

::

    python -m repro.experiments list
    python -m repro.experiments run SWEEP [--workers N] [--seeds 1,2,3] ...
    python -m repro.experiments resume SWEEP [...]
    python -m repro.experiments export SWEEP --out DIR [...]

``run`` executes a registered sweep (see ``list``) on a pool of worker
processes, caching finished runs under ``--cache-dir`` so an interrupted
or repeated invocation only executes what is missing; ``resume`` is
``run`` with the additional guarantee that it refuses to start from a
cold cache (catching a mistyped ``--cache-dir``).  ``export`` rebuilds
the CSV/JSON artifacts purely from cached results without running
anything.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional, Sequence

from repro.experiments.orchestrator import (
    ResultCache,
    RunResult,
    SweepSpec,
    expand_spec,
    export_csv,
    export_json,
    run_sweep,
    summarize,
)
from repro.experiments.specs import available_specs, get_spec
from repro.metrics.collectors import format_table

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_OUT_DIR = "artifacts"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, resume and export the repo's experiment sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered sweeps")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("sweep", help="registered sweep name (see `list`)")
        p.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help=f"run-result cache directory (default: {DEFAULT_CACHE_DIR})",
        )
        p.add_argument(
            "--out",
            default=DEFAULT_OUT_DIR,
            help=f"artifact output directory (default: {DEFAULT_OUT_DIR})",
        )
        p.add_argument(
            "--format",
            choices=("csv", "json", "both", "none"),
            default="both",
            help="artifact format(s) to write (default: both)",
        )
        p.add_argument(
            "--seeds",
            default=None,
            help="comma-separated replication seeds overriding the spec's",
        )
        p.add_argument(
            "--duration",
            type=float,
            default=None,
            help="simulated seconds per run, overriding the spec's",
        )

    for name, help_text in (
        ("run", "execute a sweep (incremental: cached runs are reused)"),
        ("resume", "continue a previously started sweep from its cache"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_common(p)
        p.add_argument(
            "--workers",
            type=int,
            default=max(1, min(4, os.cpu_count() or 1)),
            help="worker processes (default: min(4, cpu count))",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="run without reading or writing the cache",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="ignore cached results and re-run everything",
        )

    p = sub.add_parser("export", help="write artifacts from cached results, running nothing")
    add_common(p)
    return parser


class CliError(Exception):
    """A user-input problem reported as a clean message, not a traceback."""


def _customize(spec: SweepSpec, args: argparse.Namespace) -> SweepSpec:
    replacements = {}
    if getattr(args, "seeds", None):
        try:
            replacements["seeds"] = tuple(int(s) for s in args.seeds.split(","))
        except ValueError:
            raise CliError(f"--seeds must be comma-separated integers, got {args.seeds!r}")
    if getattr(args, "duration", None) is not None:
        replacements["duration"] = args.duration
    return dataclasses.replace(spec, **replacements) if replacements else spec


def _write_artifacts(
    spec: SweepSpec, results: Sequence[RunResult], out_dir: str, fmt: str
) -> List[str]:
    written: List[str] = []
    if fmt in ("csv", "both"):
        path = os.path.join(out_dir, f"{spec.name}.csv")
        export_csv(results, path)
        written.append(path)
    if fmt in ("json", "both"):
        path = os.path.join(out_dir, f"{spec.name}.json")
        export_json(results, path, spec=spec)
        written.append(path)
    return written


def _print_summary(spec: SweepSpec, results: Sequence[RunResult]) -> None:
    key_metrics = [
        m for m in ("pdr", "mean_delay", "ctrl_pkts", "tx_per_delivery", "qos_satisfaction")
        if results and m in results[0].metrics
    ]
    rows = summarize(results, metrics=key_metrics)
    display = []
    for row in rows:
        out = {k: v for k, v in row.items() if not k.endswith("_ci95")}
        for metric in key_metrics:
            mean = out.pop(f"{metric}_mean", None)
            ci = row.get(f"{metric}_ci95", 0.0)
            if mean is not None:
                out[metric] = f"{mean:g}±{ci:g}" if ci else f"{mean:g}"
        display.append(out)
    print(format_table(display, title=f"{spec.name}: mean ± 95% CI over seeds"))


def _cmd_list() -> int:
    rows = [
        {
            "sweep": spec.name,
            "runs": spec.run_count,
            "axes": " x ".join(spec.grid.keys()) or "-",
            "seeds": len(spec.seeds),
            "description": spec.description,
        }
        for spec in available_specs()
    ]
    print(format_table(rows, title="Registered sweeps (python -m repro.experiments run NAME)"))
    return 0


def _cmd_run(args: argparse.Namespace, require_cache: bool) -> int:
    spec = _customize(get_spec(args.sweep), args)
    cache_dir: Optional[str] = None if args.no_cache else args.cache_dir
    if require_cache and (cache_dir is None or not os.path.isdir(cache_dir)):
        print(
            f"resume: no cache at {args.cache_dir!r} -- use `run` to start this sweep",
            file=sys.stderr,
        )
        return 2
    results = run_sweep(
        spec,
        workers=args.workers,
        cache_dir=cache_dir,
        force=args.force,
        progress=True,
    )
    _print_summary(spec, results)
    for path in _write_artifacts(spec, results, args.out, args.format):
        print(f"wrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    spec = _customize(get_spec(args.sweep), args)
    if not os.path.isdir(args.cache_dir):
        print(f"export: no cache directory at {args.cache_dir!r}", file=sys.stderr)
        return 2
    cache = ResultCache(args.cache_dir)
    results: List[RunResult] = []
    missing = 0
    for run in expand_spec(spec):
        cached = cache.get(run.cache_key())
        if cached is None:
            missing += 1
        else:
            cached.run_id = run.run_id
            cached.params = dict(run.params)
            results.append(cached)
    if not results:
        print(
            f"export: no cached results for sweep {spec.name!r} "
            "(if the sweep was run with --seeds/--duration overrides, "
            "pass the same overrides to export)",
            file=sys.stderr,
        )
        return 2
    if missing:
        print(
            f"export: {missing} of {spec.run_count} runs not cached; "
            "artifact is partial (use `run` to fill the cache)",
            file=sys.stderr,
        )
    _print_summary(spec, results)
    for path in _write_artifacts(spec, results, args.out, args.format):
        print(f"wrote {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args, require_cache=False)
        if args.command == "resume":
            return _cmd_run(args, require_cache=True)
        if args.command == "export":
            return _cmd_export(args)
    except CliError as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # unknown sweep name from the registry lookup
        print(f"{args.command}: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
