"""Command-line front end for the sweep orchestrator.

::

    python -m repro.experiments list
    python -m repro.experiments protocols [--check-coverage]
    python -m repro.experiments executors
    python -m repro.experiments stores
    python -m repro.experiments run SWEEP [--executor NAME] [--store NAME] ...
    python -m repro.experiments resume SWEEP [...]
    python -m repro.experiments worker --queue-dir DIR [--stale-after S]
    python -m repro.experiments worker --connect HOST:PORT
    python -m repro.experiments export SWEEP --out DIR [...]
    python -m repro.experiments merge SWEEP --cache-dir DEST --from DIR ...
    python -m repro.experiments migrate --from SPEC --to SPEC
    python -m repro.experiments perf SWEEP --baseline PATH --current PATH
    python -m repro.experiments perf SWEEP --current PATH --trend FILE

``run`` executes a registered sweep (see ``list``) through a registered
*executor backend* (see ``executors``: in-process ``serial``, the
default ``process`` pool, a ``thread`` pool, a shared-directory
``queue`` drained by worker processes on any machine that mounts it, or
a networked ``tcp`` coordinator drained by workers on any machine that
can reach ``--host``/``--port``), caching finished runs under
``--cache-dir`` so an interrupted or repeated invocation only executes
what is missing; ``resume`` is ``run`` with the additional guarantee
that it refuses to start from a cold cache (catching a mistyped
``--cache-dir``).  ``worker`` attaches to a live sweep and executes runs
it leases -- via atomic file leases on a ``queue`` directory
(``--queue-dir``), or over a socket to a ``tcp`` coordinator
(``--connect HOST:PORT``) -- until the driver closes the sweep (see
``docs/executors.md`` and ``docs/networked-executor.md``).
``export`` rebuilds the CSV/JSON artifacts purely from cached results
without running anything.

The cache lives behind a registered *result-store backend* (see
``stores``; ``docs/result-store.md``): everywhere a cache path is
accepted, a bare path means the default ``json`` directory layout and a
store spec like ``sqlite:results.db`` selects another backend
(``--store NAME`` names it explicitly).  The store is sweep-cosmetic --
excluded from cache keys, byte-identical artifacts -- and ``migrate``
copies a cache between backends (it is ``merge`` without a sweep:
content-hash keys make it idempotent).

A sweep whose spec carries an :class:`~repro.experiments.orchestrator.
AdaptiveCI` replication policy runs *adaptively*: each grid point adds
replication seeds until the 95% CI half-width of the policy's metric
meets the target (``unconverged`` points are reported when ``max_seeds``
is exhausted), and ``run`` prints the per-point convergence report.
``--adaptive``/``--target-ci``/``--ci-metric`` force or override the
policy from the command line.

``--shard I/N`` restricts ``run``/``resume`` to a deterministic 1-based
slice of the grid (of the *grid points* when adaptive, so one point's
growing seed set never splits across jobs), so N CI jobs sharing nothing
but their cache directories cover the sweep exactly once; ``merge`` then
folds the shard caches together and exports the full artifact set, and
``perf`` diffs the per-run wall times of two result sets (stores,
exported JSON artifacts, or cache generations) and exits non-zero on a
regression.  ``perf --trend FILE`` additionally appends the current
per-point medians to a JSONL trend history and judges them against the
trailing median of the last ``--trend-window`` entries -- the gate as a
trajectory instead of a single frozen baseline; ``--accept`` blesses a
deliberate slowdown (resetting the trend reference and, with
``--baseline``, rewriting the baseline artifact from the current
results).

``protocols`` lists every registered pluggable component (protocol
stacks, radios, MACs, mobility models) and, with ``--check-coverage``,
exits non-zero unless every registered protocol is exercised by at least
one registered sweep (the CI gate keeping new protocols tested).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.experiments.executors import (
    DEFAULT_EXECUTOR,
    DEFAULT_QUEUE_DIR,
    DEFAULT_STALE_AFTER,
    available_executors,
    run_worker,
)
from repro.experiments.net import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    NetWorkerError,
    parse_address,
    run_net_worker,
)
from repro.experiments.orchestrator import (
    AdaptiveCI,
    AdaptiveResult,
    RunResult,
    SpecError,
    SweepSpec,
    export_csv,
    export_json,
    load_adaptive_results,
    load_cached_results,
    merge_caches,
    parse_shard,
    run_sweep,
    run_sweep_adaptive,
    summarize,
)
from repro.experiments.perf import (
    DEFAULT_TOLERANCE,
    DEFAULT_TREND_WINDOW,
    PerfReport,
    TrendReport,
    append_trend,
    check_trend,
    compare_wall_times,
    load_results,
    load_trend,
    trend_entry,
)
from repro.experiments.specs import available_specs, get_spec
from repro.experiments.stores import (
    DEFAULT_STORE,
    StoreError,
    available_stores,
    parse_store_spec,
    store_exists,
    unavailable_stores,
)
from repro.metrics.collectors import format_table
from repro.registry import RegistryError

DEFAULT_CACHE_DIR = ".repro-cache"
DEFAULT_OUT_DIR = "artifacts"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run, resume and export the repo's experiment sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered sweeps")

    p = sub.add_parser(
        "protocols",
        help="list registered protocols/radios/MACs/mobility models "
        "(--check-coverage: fail unless every protocol has a sweep)",
    )
    p.add_argument(
        "--check-coverage",
        action="store_true",
        help="exit 1 unless every registered protocol is exercised by at "
        "least one registered sweep",
    )

    sub.add_parser(
        "executors",
        help="list registered run-execution backends (--executor choices)",
    )

    sub.add_parser(
        "stores",
        help="list registered result-store backends (--store choices / "
        "store-spec prefixes)",
    )

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("sweep", help="registered sweep name (see `list`)")
        p.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help="run-result cache: a directory, or a store spec like "
            f"sqlite:results.db (default: {DEFAULT_CACHE_DIR})",
        )
        p.add_argument(
            "--store",
            default=None,
            metavar="NAME",
            help="result-store backend for --cache-dir (see `stores`); "
            f"default: the spec's, else the path's prefix, else {DEFAULT_STORE!r}",
        )
        p.add_argument(
            "--out",
            default=DEFAULT_OUT_DIR,
            help=f"artifact output directory (default: {DEFAULT_OUT_DIR})",
        )
        p.add_argument(
            "--format",
            choices=("csv", "json", "both", "none"),
            default="both",
            help="artifact format(s) to write (default: both)",
        )
        p.add_argument(
            "--seeds",
            default=None,
            help="comma-separated replication seeds overriding the spec's",
        )
        p.add_argument(
            "--duration",
            type=float,
            default=None,
            help="simulated seconds per run, overriding the spec's",
        )
        p.add_argument(
            "--adaptive",
            action="store_true",
            help="use adaptive seed replication (implied when the spec "
            "carries a replication policy; otherwise requires --target-ci)",
        )
        p.add_argument(
            "--target-ci",
            type=float,
            default=None,
            metavar="HALF_WIDTH",
            help="adaptive target: add seeds per grid point until the 95%% CI "
            "half-width of the chosen metric is at most this (overrides the "
            "spec's policy target)",
        )
        p.add_argument(
            "--ci-metric",
            default=None,
            metavar="METRIC",
            help="metric the adaptive CI target applies to "
            "(default: the spec policy's metric, or 'pdr')",
        )

    for name, help_text in (
        ("run", "execute a sweep (incremental: cached runs are reused)"),
        ("resume", "continue a previously started sweep from its cache"),
    ):
        p = sub.add_parser(name, help=help_text)
        add_common(p)
        p.add_argument(
            "--workers",
            type=int,
            default=max(1, min(4, os.cpu_count() or 1)),
            help="backend parallelism: pool size for process/thread, locally "
            "spawned worker processes for queue (0 = rely on externally "
            "attached workers); default: min(4, cpu count)",
        )
        p.add_argument(
            "--executor",
            default=None,
            metavar="NAME",
            help="run-execution backend (see `executors`); default: the "
            f"spec's, else {DEFAULT_EXECUTOR!r}",
        )
        p.add_argument(
            "--queue-dir",
            default=DEFAULT_QUEUE_DIR,
            help="queue executor only: shared queue directory workers attach "
            f"to (default: {DEFAULT_QUEUE_DIR})",
        )
        p.add_argument(
            "--host",
            default=DEFAULT_HOST,
            help="tcp executor only: coordinator bind address "
            f"(default: {DEFAULT_HOST}; use 0.0.0.0 for remote workers)",
        )
        p.add_argument(
            "--port",
            type=int,
            default=DEFAULT_PORT,
            help="tcp executor only: coordinator port workers --connect to "
            f"(default: {DEFAULT_PORT}; 0 = ephemeral)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="run without reading or writing the cache",
        )
        p.add_argument(
            "--force",
            action="store_true",
            help="ignore cached results and re-run everything",
        )
        p.add_argument(
            "--shard",
            default=None,
            metavar="I/N",
            help="execute only this 1-based shard of the grid (e.g. 2/3); "
            "N jobs sharing a cache directory cover the sweep exactly once",
        )

    p = sub.add_parser("export", help="write artifacts from cached results, running nothing")
    add_common(p)

    p = sub.add_parser(
        "merge",
        help="fold shard caches into one cache directory and export the "
        "merged artifacts (idempotent; fails if runs are still missing)",
    )
    add_common(p)
    p.add_argument(
        "--from",
        dest="sources",
        action="append",
        default=[],
        metavar="STORE",
        help="shard cache (directory or store spec) to fold into "
        "--cache-dir (repeatable)",
    )

    p = sub.add_parser(
        "migrate",
        help="copy every cache entry from one result store into another "
        "(idempotent: content-hash keys make re-runs safe)",
    )
    p.add_argument(
        "--from",
        dest="sources",
        action="append",
        default=[],
        metavar="STORE",
        required=True,
        help="source store (directory or store spec like json:dir, "
        "sqlite:file.db; repeatable)",
    )
    p.add_argument(
        "--to",
        dest="dest",
        required=True,
        metavar="STORE",
        help="destination store (created if missing)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="NAME",
        help="backend for bare paths on both sides (see `stores`); "
        "per-path prefixes win",
    )

    p = sub.add_parser(
        "worker",
        help="attach to a live sweep and execute leased runs: a queue "
        "executor's shared directory (--queue-dir) or a tcp coordinator "
        "(--connect HOST:PORT) for multi-machine sweeps",
    )
    p.add_argument(
        "--queue-dir",
        default=DEFAULT_QUEUE_DIR,
        help=f"shared queue directory (default: {DEFAULT_QUEUE_DIR})",
    )
    p.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="attach to a tcp-executor coordinator over the network "
        "instead of a queue directory (--queue-dir/--stale-after are "
        "then ignored; staleness is judged by the coordinator)",
    )
    p.add_argument(
        "--worker-id",
        default=None,
        help="lease-owner label (default: <hostname>-<pid>)",
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        help="seconds between scans for claimable tasks (default: 0.5)",
    )
    p.add_argument(
        "--stale-after",
        type=float,
        default=DEFAULT_STALE_AFTER,
        help="seconds without a heartbeat before another worker's lease "
        f"counts as abandoned and is stolen (default: {DEFAULT_STALE_AFTER:g})",
    )
    p.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after executing this many runs (default: unlimited)",
    )
    p.add_argument(
        "--forever",
        action="store_true",
        help="keep serving sweep after sweep instead of exiting once the "
        "driver closes the queue (with --connect: keep reconnecting "
        "after the coordinator says goodbye)",
    )
    p.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-run progress output (used by drivers spawned "
        "without --progress)",
    )

    p = sub.add_parser(
        "perf",
        help="diff per-run wall times against a baseline and/or a JSONL "
        "trend history; exit non-zero on a regression beyond the tolerance",
    )
    p.add_argument("sweep", help="registered sweep name (see `list`)")
    p.add_argument(
        "--baseline",
        default=None,
        help="reference wall times: a results JSON artifact, a cache "
        "directory or a store spec (at least one of --baseline/--trend "
        "is required)",
    )
    p.add_argument(
        "--current",
        required=True,
        help="candidate wall times: a results JSON artifact, a cache "
        "directory or a store spec",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional slowdown of a grid point's median wall time "
        f"before it counts as a regression (default: {DEFAULT_TOLERANCE})",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="NAME",
        help="result-store backend for cache paths (see `stores`); also "
        "recorded in appended trend entries",
    )
    p.add_argument(
        "--executor",
        default=None,
        metavar="NAME",
        help="measurement context recorded in appended trend entries "
        "(which executor produced the current wall times)",
    )
    p.add_argument(
        "--trend",
        default=None,
        metavar="FILE",
        help="append the current per-point median wall times to this JSONL "
        "trend history and check them against the trailing median of the "
        "last --trend-window entries",
    )
    p.add_argument(
        "--trend-window",
        type=int,
        default=DEFAULT_TREND_WINDOW,
        metavar="K",
        help="trailing trend entries the regression check medians over "
        f"(default: {DEFAULT_TREND_WINDOW})",
    )
    p.add_argument(
        "--accept",
        action="store_true",
        help="bless the current wall times: the appended trend entry is "
        "marked accepted (resetting the trend reference window) and, with "
        "--baseline pointing at a JSON artifact, the artifact is rewritten "
        "from the current results; regressions then exit 0",
    )
    p.add_argument(
        "--baseline-cache-version",
        type=int,
        default=None,
        help="read the baseline cache directory at this CACHE_VERSION generation",
    )
    p.add_argument(
        "--current-cache-version",
        type=int,
        default=None,
        help="read the current cache directory at this CACHE_VERSION generation",
    )
    p.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the comparison as a JSON report (for CI consumption)",
    )
    p.add_argument(
        "--seeds",
        default=None,
        help="comma-separated replication seeds overriding the spec's "
        "(must match the seeds the caches were produced with)",
    )
    p.add_argument(
        "--duration",
        type=float,
        default=None,
        help="simulated seconds per run, overriding the spec's",
    )
    return parser


class CliError(Exception):
    """A user-input problem reported as a clean message, not a traceback."""


def _store_path(path: str, store: Optional[str]) -> str:
    """Apply ``--store`` to a bare cache path (an embedded prefix wins)."""
    if store and parse_store_spec(path)[0] is None:
        return f"{store}:{path}"
    return path


def _result_source_exists(path: str, store: Optional[str]) -> bool:
    """True if ``path`` -- store spec, cache dir or JSON artifact -- exists."""
    if store or parse_store_spec(path)[0] is not None:
        return store_exists(path, store=store)
    return os.path.exists(path)


def _customize(spec: SweepSpec, args: argparse.Namespace) -> SweepSpec:
    replacements = {}
    if getattr(args, "seeds", None):
        try:
            replacements["seeds"] = tuple(int(s) for s in args.seeds.split(","))
        except ValueError:
            raise CliError(f"--seeds must be comma-separated integers, got {args.seeds!r}")
    if getattr(args, "duration", None) is not None:
        replacements["duration"] = args.duration
    return dataclasses.replace(spec, **replacements) if replacements else spec


def _adaptive_policy(
    spec: SweepSpec, args: argparse.Namespace
) -> Optional[AdaptiveCI]:
    """The adaptive policy this invocation should run under, if any.

    A spec-level ``replication`` policy activates adaptively by itself;
    ``--adaptive`` (or ``--target-ci``) forces the adaptive path for a
    fixed-seed spec, in which case ``--target-ci`` must supply the
    target.  ``--target-ci``/``--ci-metric`` override the corresponding
    policy fields either way.
    """
    policy = spec.replication
    target = getattr(args, "target_ci", None)
    metric = getattr(args, "ci_metric", None)
    if policy is None and not getattr(args, "adaptive", False) and target is None:
        if metric is not None:
            raise CliError("--ci-metric only applies to adaptive runs "
                           "(pass --target-ci, or pick a spec with a policy)")
        return None
    if policy is None:
        if target is None:
            raise CliError(
                f"sweep {spec.name!r} has no replication policy; --adaptive "
                "needs --target-ci HALF_WIDTH (and optionally --ci-metric)"
            )
        return AdaptiveCI(target_half_width=target, metric=metric or "pdr")
    replacements = {}
    if target is not None:
        replacements["target_half_width"] = target
    if metric is not None:
        replacements["metric"] = metric
    return dataclasses.replace(policy, **replacements) if replacements else policy


def _write_artifacts(
    spec: SweepSpec,
    results: Sequence[RunResult],
    out_dir: str,
    fmt: str,
    name: Optional[str] = None,
    adaptive: Optional[AdaptiveResult] = None,
) -> List[str]:
    stem = name or spec.name
    written: List[str] = []
    if fmt in ("csv", "both"):
        path = os.path.join(out_dir, f"{stem}.csv")
        export_csv(results, path)
        written.append(path)
    if fmt in ("json", "both"):
        path = os.path.join(out_dir, f"{stem}.json")
        export_json(results, path, spec=spec, adaptive=adaptive)
        written.append(path)
    return written


def _print_summary(spec: SweepSpec, results: Sequence[RunResult]) -> None:
    key_metrics = [
        m for m in ("pdr", "mean_delay", "ctrl_pkts", "tx_per_delivery", "qos_satisfaction")
        if results and m in results[0].metrics
    ]
    rows = summarize(results, metrics=key_metrics)
    display = []
    for row in rows:
        out = {k: v for k, v in row.items() if not k.endswith("_ci95")}
        for metric in key_metrics:
            mean = out.pop(f"{metric}_mean", None)
            ci = row.get(f"{metric}_ci95", 0.0)
            if mean is not None:
                out[metric] = f"{mean:g}±{ci:g}" if ci else f"{mean:g}"
        display.append(out)
    print(format_table(display, title=f"{spec.name}: mean ± 95% CI over seeds"))


def _print_convergence(adaptive: AdaptiveResult) -> None:
    policy = adaptive.policy
    rows = [
        {
            "grid_point": p.point,
            "seeds": p.n_seeds,
            "rounds": p.rounds,
            f"{policy.metric}_mean": f"{p.mean:g}",
            "ci95_half_width": f"{p.half_width:g}",
            "status": p.status,
        }
        for p in adaptive.points
    ]
    print(
        format_table(
            rows,
            title=f"{adaptive.sweep}: adaptive replication on {policy.metric!r} "
            f"(target half-width {policy.target_half_width:g}, "
            f"{policy.min_seeds}..{policy.max_seeds} seeds, batch {policy.batch})",
        )
    )
    print(
        f"adaptive: {len(adaptive.converged)}/{len(adaptive.points)} point(s) "
        f"converged; {adaptive.executed} executed + {adaptive.cached} cached = "
        f"{len(adaptive.results)} runs "
        f"(fixed grid at max_seeds: {adaptive.fixed_equivalent_runs} runs)"
    )


def _cmd_list() -> int:
    rows = [
        {
            "sweep": spec.name,
            "runs": spec.run_count,
            "axes": " x ".join(spec.grid.keys()) or "-",
            "seeds": len(spec.seeds),
            "description": spec.description,
        }
        for spec in available_specs()
    ]
    print(format_table(rows, title="Registered sweeps (python -m repro.experiments run NAME)"))
    return 0


def _component_coverage() -> dict:
    """Map registered protocols/radios/MACs to the sweeps exercising them.

    One expansion pass over every registered spec; the result maps each
    component kind (``protocol``/``radio``/``mac``) to ``{name: [sweep
    names]}`` over every *registered* component of that kind.
    """
    from repro.experiments.orchestrator import expand_spec
    from repro.registry import MACS, PROTOCOL_STACKS, RADIOS

    coverage = {
        "protocol": {name: [] for name in PROTOCOL_STACKS.names()},
        "radio": {name: [] for name in RADIOS.names()},
        "mac": {name: [] for name in MACS.names()},
    }
    for spec in available_specs():
        runs = expand_spec(spec)
        for kind in coverage:
            for name in {getattr(run.config, kind) for run in runs}:
                if name in coverage[kind]:
                    coverage[kind][name].append(spec.name)
    return coverage


def _protocol_coverage() -> dict:
    """Map each registered protocol to the sweeps whose grids exercise it."""
    return _component_coverage()["protocol"]


def _cmd_protocols(args: argparse.Namespace) -> int:
    from repro.registry import MOBILITY_MODELS

    coverage = _component_coverage()
    rows = [
        {
            "protocol": name,
            "sweeps": ", ".join(sorted(specs)) or "(none)",
        }
        for name, specs in coverage["protocol"].items()
    ]
    print(format_table(rows, title="Registered protocol stacks and the sweeps exercising them"))
    print()
    components = [
        {"kind": kind, "name": name, "sweeps": ", ".join(sorted(specs)) or "(none)"}
        for kind in ("radio", "mac")
        for name, specs in coverage[kind].items()
    ] + [
        {"kind": "mobility", "name": name, "sweeps": ""}
        for name in MOBILITY_MODELS.names()
    ]
    print(format_table(components, title="Other registered components"))
    if args.check_coverage:
        uncovered = sorted(
            f"{kind} {name!r}"
            for kind, names in coverage.items()
            for name, specs in names.items()
            if not specs
        )
        if uncovered:
            print(
                "protocols: FAIL: registered component(s) exercised by no "
                f"registered sweep: {', '.join(uncovered)} -- add a spec "
                "(or an axis value) covering them",
                file=sys.stderr,
            )
            return 1
        counts = {kind: len(names) for kind, names in coverage.items()}
        print(
            f"protocols: OK ({counts['protocol']} protocols, "
            f"{counts['radio']} radios, {counts['mac']} MACs -- every one "
            "exercised by at least one registered sweep)"
        )
    return 0


def _cmd_executors() -> int:
    rows = [
        {"executor": name, "description": description}
        for name, description in available_executors()
    ]
    print(
        format_table(
            rows,
            title="Registered executor backends "
            f"(run SWEEP --executor NAME; default: {DEFAULT_EXECUTOR})",
        )
    )
    return 0


def _cmd_stores() -> int:
    rows = [
        {"store": name, "description": description}
        for name, description in available_stores()
    ]
    print(
        format_table(
            rows,
            title="Registered result-store backends "
            f"(run SWEEP --store NAME, or prefix cache paths like "
            f"sqlite:results.db; default: {DEFAULT_STORE})",
        )
    )
    missing = unavailable_stores()
    if missing:
        for name, reason in missing:
            print(f"(optional backend {name!r} not registered: {reason})")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    if args.connect is not None:
        try:
            address = parse_address(args.connect)
        except ValueError as exc:
            raise CliError(str(exc)) from None
        if not args.quiet:
            print(
                f"worker: connecting to coordinator at {args.connect}",
                file=sys.stderr,
            )
        executed = run_net_worker(
            address,
            worker_id=args.worker_id,
            poll_interval=args.poll_interval,
            max_tasks=args.max_tasks,
            forever=args.forever,
            progress=not args.quiet,
        )
        if not args.quiet:
            print(f"worker: executed {executed} run(s) from {args.connect}")
        return 0
    if not args.quiet:
        print(
            f"worker: attaching to queue {args.queue_dir!r} "
            f"(stale leases stolen after {args.stale_after:g}s)",
            file=sys.stderr,
        )
    executed = run_worker(
        args.queue_dir,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        stale_after=args.stale_after,
        max_tasks=args.max_tasks,
        exit_when_closed=not args.forever,
        progress=not args.quiet,
    )
    if not args.quiet:
        print(f"worker: executed {executed} run(s) from {args.queue_dir}")
    return 0


def _cmd_run(args: argparse.Namespace, require_cache: bool) -> int:
    spec = _customize(get_spec(args.sweep), args)
    cache_dir: Optional[str] = None if args.no_cache else args.cache_dir
    store = args.store or spec.store
    if require_cache and (
        cache_dir is None or not store_exists(cache_dir, store=store)
    ):
        print(
            f"resume: no cache at {args.cache_dir!r} -- use `run` to start this sweep",
            file=sys.stderr,
        )
        return 2
    shard = parse_shard(args.shard) if args.shard else None
    # only the work-stealing backends take options; run_sweep resolves
    # the name eagerly (RegistryError with alternatives) before any state
    # is touched
    executor = args.executor or spec.executor or DEFAULT_EXECUTOR
    executor_options = {}
    if executor == "queue":
        executor_options["queue_dir"] = args.queue_dir
        # the queue's result store follows the sweep's, so worker
        # publishing scales the same way the main cache does
        queue_store = store or (
            parse_store_spec(cache_dir)[0] if cache_dir is not None else None
        )
        if queue_store is not None:
            executor_options["store"] = queue_store
    elif executor == "tcp":
        # the tcp coordinator streams results back to this process; the
        # result store stays driver-local and never crosses the wire
        executor_options["host"] = args.host
        executor_options["port"] = args.port
    policy = _adaptive_policy(spec, args)
    adaptive: Optional[AdaptiveResult] = None
    if policy is not None:
        adaptive = run_sweep_adaptive(
            spec,
            workers=args.workers,
            cache_dir=cache_dir,
            force=args.force,
            progress=True,
            shard=shard,
            policy=policy,
            executor=executor,
            executor_options=executor_options,
            store=args.store,
        )
        results = adaptive.results
    else:
        results = run_sweep(
            spec,
            workers=args.workers,
            cache_dir=cache_dir,
            force=args.force,
            progress=True,
            shard=shard,
            executor=executor,
            executor_options=executor_options,
            store=args.store,
        )
    _print_summary(spec, results)
    if adaptive is not None:
        _print_convergence(adaptive)
    # a shard writes suffixed artifacts so it never masquerades as the
    # full result set; `merge`/`export` produce the unsuffixed ones
    stem = f"{spec.name}.shard-{shard[0]}-of-{shard[1]}" if shard else spec.name
    for path in _write_artifacts(
        spec, results, args.out, args.format, name=stem, adaptive=adaptive
    ):
        print(f"wrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    spec = _customize(get_spec(args.sweep), args)
    if not store_exists(args.cache_dir, store=args.store or spec.store):
        print(f"export: no result store at {args.cache_dir!r}", file=sys.stderr)
        return 2
    policy = _adaptive_policy(spec, args)
    adaptive: Optional[AdaptiveResult] = None
    if policy is not None:
        adaptive, missing_ids = load_adaptive_results(
            spec, args.cache_dir, policy=policy, store=args.store
        )
        results = adaptive.results
    else:
        results, missing_ids = load_cached_results(
            spec, args.cache_dir, store=args.store
        )
    missing = len(missing_ids)
    if not results:
        print(
            f"export: no cached results for sweep {spec.name!r} "
            "(if the sweep was run with --seeds/--duration overrides, "
            "pass the same overrides to export)",
            file=sys.stderr,
        )
        return 2
    if missing:
        print(
            f"export: {missing} run(s) not cached (first: {missing_ids[0]}); "
            "artifact is partial (use `run` to fill the cache)",
            file=sys.stderr,
        )
    _print_summary(spec, results)
    if adaptive is not None:
        _print_convergence(adaptive)
    for path in _write_artifacts(spec, results, args.out, args.format, adaptive=adaptive):
        print(f"wrote {path}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    spec = _customize(get_spec(args.sweep), args)
    if args.sources:
        copied, skipped = merge_caches(
            args.sources, args.cache_dir, store=args.store
        )
        print(
            f"merge: folded {len(args.sources)} shard cache(s) into "
            f"{args.cache_dir}: {copied} new entries, {skipped} already present"
        )
    if not store_exists(args.cache_dir, store=args.store or spec.store):
        print(
            f"merge: no result store at {args.cache_dir!r} "
            "(use --from to fold shard caches into it)",
            file=sys.stderr,
        )
        return 2
    policy = _adaptive_policy(spec, args)
    adaptive: Optional[AdaptiveResult] = None
    if policy is not None:
        # replay the adaptive stopping rule against the merged cache: the
        # run set is whatever the per-point CI tests demand, not a static
        # expansion, and any gap shows up as missing/incomplete below
        adaptive, missing = load_adaptive_results(
            spec, args.cache_dir, policy=policy, store=args.store
        )
        results = adaptive.results
        expected = "the adaptive replay"
    else:
        results, missing = load_cached_results(
            spec, args.cache_dir, store=args.store
        )
        expected = f"{spec.run_count} runs"
    if missing:
        print(
            f"merge: {len(missing)} run(s) of {expected} missing from the "
            f"merged cache (first missing: {missing[0]}); run the remaining "
            "shards (or check --seeds/--duration overrides) before merging",
            file=sys.stderr,
        )
        return 1
    _print_summary(spec, results)
    if adaptive is not None:
        _print_convergence(adaptive)
    for path in _write_artifacts(spec, results, args.out, args.format, adaptive=adaptive):
        print(f"wrote {path}")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    spec = _customize(get_spec(args.sweep), args)
    if args.baseline is None and args.trend is None:
        raise CliError(
            "nothing to compare against: pass --baseline PATH (two-point "
            "diff) and/or --trend FILE (trajectory check)"
        )
    if args.accept and args.baseline is not None:
        if parse_store_spec(args.baseline)[0] is not None or os.path.isdir(
            args.baseline
        ):
            raise CliError(
                "--accept rewrites a results JSON artifact; "
                f"--baseline {args.baseline!r} is a result store"
            )
    sides = [("current", args.current)]
    if args.baseline is not None:
        sides.insert(0, ("baseline", args.baseline))
    for side, path in sides:
        if not _result_source_exists(path, args.store):
            print(f"perf: {side} {path!r} does not exist", file=sys.stderr)
            return 2
    current = load_results(
        _store_path(args.current, args.store),
        spec,
        cache_version=args.current_cache_version,
    )
    if not current:
        print(
            f"perf: current {args.current!r} holds no results for sweep "
            f"{spec.name!r}",
            file=sys.stderr,
        )
        return 2

    exit_code = 0
    report: Optional[PerfReport] = None
    if args.baseline is not None:
        baseline = load_results(
            _store_path(args.baseline, args.store),
            spec,
            cache_version=args.baseline_cache_version,
        )
        if not baseline:
            print(
                f"perf: baseline {args.baseline!r} holds no results for "
                f"sweep {spec.name!r}",
                file=sys.stderr,
            )
            return 2
        report = compare_wall_times(
            baseline, current, tolerance=args.tolerance, sweep=spec.name
        )
        _print_perf(report)
        if report.regressed:
            exit_code = 1
        else:
            # grid points present in the baseline but absent from the
            # current set mean the comparison is incomplete (partial
            # merge, changed grid) -- that must not pass a CI gate as "no
            # regression".  Points only in the current set
            # (missing-baseline) are informational: new grid points
            # simply have no reference trajectory yet.
            missing_current = [
                p for p in report.points if p.status == "missing-current"
            ]
            if missing_current:
                print(
                    f"perf: {len(missing_current)} grid point(s) have no "
                    f"current results (first: {missing_current[0].point}); "
                    "the comparison is incomplete",
                    file=sys.stderr,
                )
                exit_code = 2

    trend_report: Optional[TrendReport] = None
    if args.trend is not None:
        entry = trend_entry(
            spec.name,
            current,
            store=args.store or parse_store_spec(args.current)[0] or "",
            executor=args.executor or "",
            accepted=args.accept,
        )
        append_trend(args.trend, entry)
        print(f"perf: appended trend entry for {entry.commit[:12] or '(no commit)'} to {args.trend}")
        trend_report = check_trend(
            load_trend(args.trend, sweep=spec.name),
            tolerance=args.tolerance,
            window=args.trend_window,
        )
        _print_trend(trend_report)
        if trend_report.regressed and exit_code == 0:
            exit_code = 1

    if args.report:
        document = {
            key: value.to_dict()
            for key, value in (("comparison", report), ("trend", trend_report))
            if value is not None
        }
        os.makedirs(os.path.dirname(args.report) or ".", exist_ok=True)
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(
                document["comparison"] if list(document) == ["comparison"] else document,
                fh,
                indent=2,
            )
        print(f"wrote {args.report}")

    if args.accept:
        if args.baseline is not None:
            export_json(current, args.baseline, spec=spec)
            print(f"perf: accepted -- refreshed baseline {args.baseline}")
        return 0
    return exit_code


def _print_trend(report: TrendReport) -> None:
    rows = []
    for point in report.points:
        curve = " -> ".join(f"{v:g}" for v in point.curve[-5:])
        rows.append(
            {
                "grid_point": point.point,
                "trailing_s": (
                    f"{point.trailing_median:g} (n={point.history_n})"
                    if point.history_n
                    else "-"
                ),
                "current_s": f"{point.current_median:g}",
                "ratio": f"{point.ratio:g}" if point.ratio else "-",
                "curve": curve,
                "status": point.status,
            }
        )
    print(
        format_table(
            rows,
            title=f"{report.sweep}: wall-time trend vs trailing median of "
            f"{report.entries} entr{'y' if report.entries == 1 else 'ies'} "
            f"(window {report.window}, tolerance {report.tolerance:g})",
        )
    )
    counts = ", ".join(f"{n} {status}" for status, n in sorted(report.counts().items()))
    verdict = "REGRESSED" if report.regressed else "ok"
    print(f"perf trend: {verdict} ({counts or 'no grid points'})")


def _cmd_migrate(args: argparse.Namespace) -> int:
    copied, skipped = merge_caches(args.sources, args.dest, store=args.store)
    print(
        f"migrate: {copied} entries copied into {args.dest}, "
        f"{skipped} already present"
    )
    return 0


def _print_perf(report: PerfReport) -> None:
    rows = []
    for point in report.points:
        rows.append(
            {
                "grid_point": point.point,
                "baseline_s": f"{point.baseline_median:g} (n={point.baseline_n})",
                "current_s": f"{point.current_median:g} (n={point.current_n})",
                "ratio": f"{point.ratio:g}" if point.ratio else "-",
                "p": f"{point.p_value:g}" if point.p_value is not None else "-",
                "status": point.status,
            }
        )
    print(
        format_table(
            rows,
            title=f"{report.sweep}: wall-time comparison "
            f"(tolerance {report.tolerance:g})",
        )
    )
    counts = ", ".join(f"{n} {status}" for status, n in sorted(report.counts().items()))
    verdict = "REGRESSED" if report.regressed else "ok"
    print(f"perf: {verdict} ({counts or 'no grid points'})")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "protocols":
            return _cmd_protocols(args)
        if args.command == "executors":
            return _cmd_executors()
        if args.command == "stores":
            return _cmd_stores()
        if args.command == "worker":
            return _cmd_worker(args)
        if args.command == "run":
            return _cmd_run(args, require_cache=False)
        if args.command == "resume":
            return _cmd_run(args, require_cache=True)
        if args.command == "export":
            return _cmd_export(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "migrate":
            return _cmd_migrate(args)
        if args.command == "perf":
            return _cmd_perf(args)
    except (CliError, SpecError, StoreError, RegistryError, NetWorkerError) as exc:
        print(f"{args.command}: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        # a queue worker is normally detached by Ctrl-C; its completed
        # work is already published, so this is a clean exit
        print(f"{args.command}: interrupted", file=sys.stderr)
        return 130
    except KeyError as exc:
        # unknown sweep name from the registry lookup
        print(f"{args.command}: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
