"""Scenario construction.

A :class:`ScenarioConfig` fully describes one simulation run: deployment
area, node count, radio range, mobility, multicast groups, traffic and the
protocol under test.  :func:`build_scenario` turns it into a ready-to-run
:class:`BuiltScenario` (network + sources + protocol-specific stack).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.dsm import DSM_PROTOCOL, DsmAgent
from repro.baselines.flooding import FLOODING_PROTOCOL, FloodingMulticastAgent
from repro.baselines.sgm import SGM_PROTOCOL, SgmAgent
from repro.baselines.spbm import SPBM_PROTOCOL, SpbmAgent
from repro.core.protocol import HVDB_PROTOCOL, HVDBParameters, HVDBStack
from repro.core.qos import QoSRequirement
from repro.geo.area import Area
from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.static import StaticMobility
from repro.simulation.groups import MulticastGroupManager
from repro.simulation.mac import SimpleCsmaMac
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.radio import UnitDiskRadio
from repro.simulation.traffic import CbrMulticastSource
from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

#: protocols the harness knows how to build
PROTOCOLS = (HVDB_PROTOCOL, FLOODING_PROTOCOL, SGM_PROTOCOL, DSM_PROTOCOL, SPBM_PROTOCOL)


@dataclass
class ScenarioConfig:
    """Complete description of one simulation run."""

    protocol: str = HVDB_PROTOCOL
    n_nodes: int = 100
    area_size: float = 2000.0           #: square area side length, metres
    radio_range: float = 250.0
    max_speed: float = 5.0              #: m/s; 0 gives a static network
    pause_time: float = 5.0
    mobility_step: float = 1.0
    seed: int = 1

    # multicast workload
    n_groups: int = 1
    group_size: int = 10
    sources_per_group: int = 1
    traffic_interval: float = 1.0       #: seconds between CBR packets
    payload_bytes: int = 512
    traffic_start: float = 30.0         #: warm-up before data traffic starts

    # HVDB-specific structure
    vc_cols: int = 8
    vc_rows: int = 8
    dimension: int = 4
    clustering_interval: float = 2.0
    hvdb_params: Optional[HVDBParameters] = None
    qos_requirements: Dict[int, QoSRequirement] = field(default_factory=dict)

    # baseline knobs
    dsm_position_period: float = 15.0
    spbm_levels: int = 3

    def area(self) -> Area:
        return Area(self.area_size, self.area_size)


@dataclass
class BuiltScenario:
    """A ready-to-run scenario."""

    config: ScenarioConfig
    network: Network
    groups: MulticastGroupManager
    sources: List[CbrMulticastSource]
    stack: Optional[HVDBStack] = None       #: only for the HVDB protocol

    def start(self) -> None:
        """Start clustering (if any) and the network."""
        if self.stack is not None:
            self.stack.start()
        else:
            self.network.start()

    def run(self, duration: float) -> None:
        if self.stack is not None and not self.network.simulator.processed_events:
            self.start()
            self.network.simulator.run(duration)
        else:
            self.network.run(duration)

    def backbone_nodes(self) -> Optional[List[int]]:
        if self.stack is not None:
            return self.stack.model.cluster_heads()
        return None

    def protocol_stats(self) -> Dict[str, int]:
        if self.stack is not None:
            return self.stack.aggregate_stats()
        return {}


def _make_mobility(config: ScenarioConfig, node_ids: Sequence[int]) -> MobilityModel:
    area = config.area()
    if config.max_speed <= 0:
        return StaticMobility(area, node_ids, seed=config.seed)
    return RandomWaypointMobility(
        area,
        node_ids,
        min_speed=max(0.5, config.max_speed * 0.1),
        max_speed=config.max_speed,
        pause_time=config.pause_time,
        seed=config.seed,
    )


def build_scenario(
    config: ScenarioConfig,
    mobility_factory: Optional[Callable[[ScenarioConfig, Sequence[int]], MobilityModel]] = None,
) -> BuiltScenario:
    """Assemble a complete scenario for the configured protocol.

    ``mobility_factory`` overrides the default random-waypoint mobility
    (used e.g. by the group-mobility example).
    """
    if config.protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {config.protocol!r}; choose one of {PROTOCOLS}")
    node_ids = list(range(config.n_nodes))
    mobility = (
        mobility_factory(config, node_ids)
        if mobility_factory is not None
        else _make_mobility(config, node_ids)
    )
    network = Network(
        NetworkConfig(
            area=config.area(),
            radio=UnitDiskRadio(config.radio_range),
            mac=SimpleCsmaMac(),
            mobility_step=config.mobility_step,
            seed=config.seed,
        ),
        mobility,
    )
    for node_id in node_ids:
        network.add_node(MobileNode(node_id))

    stack: Optional[HVDBStack] = None
    if config.protocol == HVDB_PROTOCOL:
        stack = HVDBStack(
            network,
            vc_cols=config.vc_cols,
            vc_rows=config.vc_rows,
            dimension=config.dimension,
            params=config.hvdb_params,
            clustering_interval=config.clustering_interval,
            qos_requirements=config.qos_requirements,
            seed=config.seed,
        )
        stack.install_agents()
    else:
        for node in network.nodes.values():
            if config.protocol in (SGM_PROTOCOL, SPBM_PROTOCOL):
                node.attach_agent(GeoUnicastAgent())
            if config.protocol == FLOODING_PROTOCOL:
                node.attach_agent(FloodingMulticastAgent())
            elif config.protocol == SGM_PROTOCOL:
                node.attach_agent(SgmAgent())
            elif config.protocol == DSM_PROTOCOL:
                node.attach_agent(DsmAgent(config.dsm_position_period))
            elif config.protocol == SPBM_PROTOCOL:
                node.attach_agent(SpbmAgent(levels=config.spbm_levels))

    groups = MulticastGroupManager(network, seed=config.seed + 1)
    sources: List[CbrMulticastSource] = []
    for g in range(config.n_groups):
        group_id = g + 1
        members = groups.create_random_group(
            group_id, min(config.group_size, config.n_nodes), candidates=node_ids
        )
        source_pool = [n for n in node_ids]
        for s in range(config.sources_per_group):
            source_node = members[s % len(members)] if members else source_pool[0]
            sources.append(
                CbrMulticastSource(
                    network,
                    source_node=source_node,
                    group=group_id,
                    protocol_name=config.protocol,
                    interval=config.traffic_interval,
                    payload_bytes=config.payload_bytes,
                    start_time=config.traffic_start + 0.37 * s,
                    jitter=0.2,
                    seed=config.seed + 100 + s,
                )
            )
    return BuiltScenario(
        config=config, network=network, groups=groups, sources=sources, stack=stack
    )
