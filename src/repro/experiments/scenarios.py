"""Scenario construction.

A :class:`ScenarioConfig` fully describes one simulation run: a *core*
section (deployment area, node count, motion, multicast workload, seed),
the registered names of the pluggable components (``protocol``, ``radio``,
``mac``, ``mobility``) and one typed per-protocol section per configurable
stack (:class:`~repro.core.protocol.HVDBConfig`,
:class:`~repro.baselines.sgm.SgmConfig`, ...).
:func:`build_scenario` resolves every name through :mod:`repro.registry`
and turns the config into a ready-to-run :class:`BuiltScenario` -- there
is no protocol-specific branching here: the selected
:class:`~repro.simulation.stack.ProtocolStack` installs itself and
answers ``backbone_nodes()`` / ``aggregate_stats()`` uniformly.

Sweep grids address the typed sections with dotted axes
(``"hvdb.dimension"``, ``"dsm.position_period"``) -- including the
physical-layer sections (``"sinr.capture_db"``,
``"csma_ca.duty_cycle"``; see :mod:`repro.simulation.phy` and
:data:`PHY_SECTIONS`); see :func:`config_axis_names` for the full axis
vocabulary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List

from repro.baselines.dsm import DSM_PROTOCOL, DsmConfig
from repro.baselines.flooding import FLOODING_PROTOCOL
from repro.baselines.sgm import SGM_PROTOCOL, SgmConfig
from repro.baselines.spbm import SPBM_PROTOCOL, SpbmConfig
from repro.core.protocol import HVDB_PROTOCOL, HVDBConfig
from repro.geo.area import Area
from repro.registry import MACS, MOBILITY_MODELS, PROTOCOL_STACKS, RADIOS, RegistryError
from repro.simulation.groups import MulticastGroupManager
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import MobileNode
from repro.simulation.phy import CsmaCaMacConfig, SinrRadioConfig
from repro.simulation.stack import ProtocolStack
from repro.simulation.traffic import CbrMulticastSource

#: the bundled protocol stacks.  A fixed literal, not a registry
#: snapshot, so grids built on it (e.g. ``protocol_comparison``) expand
#: identically in every process regardless of what third-party protocols
#: happen to be imported -- the byte-identical shard/merge guarantee
#: depends on that.  Third-party registrations extend the registry only.
PROTOCOLS = (
    HVDB_PROTOCOL,
    FLOODING_PROTOCOL,
    SGM_PROTOCOL,
    DSM_PROTOCOL,
    SPBM_PROTOCOL,
)


@dataclass
class ScenarioConfig:
    """Complete description of one simulation run."""

    # pluggable components, by registered name (see repro.registry)
    protocol: str = HVDB_PROTOCOL
    radio: str = "unit_disk"
    mac: str = "csma"
    mobility: str = "random_waypoint"

    # deployment and motion
    n_nodes: int = 100
    area_size: float = 2000.0           #: square area side length, metres
    radio_range: float = 250.0
    max_speed: float = 5.0              #: m/s; 0 gives a static network
    pause_time: float = 5.0
    mobility_step: float = 1.0
    seed: int = 1

    # multicast workload
    n_groups: int = 1
    group_size: int = 10
    sources_per_group: int = 1
    traffic_interval: float = 1.0       #: seconds between CBR packets
    payload_bytes: int = 512
    traffic_start: float = 30.0         #: warm-up before data traffic starts

    # typed per-protocol sections (dotted grid axes: "hvdb.dimension", ...)
    hvdb: HVDBConfig = field(default_factory=HVDBConfig)
    sgm: SgmConfig = field(default_factory=SgmConfig)
    dsm: DsmConfig = field(default_factory=DsmConfig)
    spbm: SpbmConfig = field(default_factory=SpbmConfig)

    # typed physical-layer sections (dotted grid axes: "sinr.capture_db",
    # "csma_ca.duty_cycle", ...); see PHY_SECTIONS for their cache-key
    # semantics
    sinr: SinrRadioConfig = field(default_factory=SinrRadioConfig)
    csma_ca: CsmaCaMacConfig = field(default_factory=CsmaCaMacConfig)

    def area(self) -> Area:
        return Area(self.area_size, self.area_size)


#: Physical-layer config sections tied to a pluggable component: the
#: section (key) only parameterises runs whose component field (value)
#: selects the same-named component.  The orchestrator's
#: :func:`~repro.experiments.orchestrator.canonical_config` drops
#: inactive sections from cache keys and artifact spec blocks, so adding
#: these sections did not invalidate the cached results (or change the
#: artifacts) of any pre-existing unit-disk/csma sweep -- and future phy
#: sections can follow the same rule.
PHY_SECTIONS = {"sinr": "radio", "csma_ca": "mac"}


def config_axis_names() -> frozenset:
    """Every name a sweep grid axis (or coupled override key) may use.

    Plain :class:`ScenarioConfig` field names, plus ``section.field`` for
    every field of each typed per-protocol section (any dataclass-valued
    config field is a section).
    """
    names = set()
    default = ScenarioConfig()
    for config_field in dataclasses.fields(ScenarioConfig):
        names.add(config_field.name)
        value = getattr(default, config_field.name)
        if dataclasses.is_dataclass(value):
            names.update(
                f"{config_field.name}.{sub.name}"
                for sub in dataclasses.fields(value)
            )
    return frozenset(names)


@dataclass
class BuiltScenario:
    """A ready-to-run scenario: network + workload + its protocol stack."""

    config: ScenarioConfig
    network: Network
    groups: MulticastGroupManager
    sources: List[CbrMulticastSource]
    stack: ProtocolStack

    def start(self) -> None:
        """Start the protocol stack (which starts the network)."""
        self.stack.start()

    def run(self, duration: float) -> None:
        """Start (if needed) and run for ``duration`` simulated seconds."""
        if not self.network.started:
            self.start()
        self.network.simulator.run(duration)

    def backbone_nodes(self) -> "List[int] | None":
        """Backbone node ids, or ``None`` for backbone-less protocols."""
        return self.stack.backbone_nodes()

    def protocol_stats(self) -> Dict[str, int]:
        """Protocol counters aggregated over the network."""
        return self.stack.aggregate_stats()


def build_scenario(config: ScenarioConfig) -> BuiltScenario:
    """Assemble a complete scenario for the configured protocol.

    Every pluggable component -- protocol stack, radio, MAC, mobility --
    is resolved by registered name; an unknown name raises
    :class:`~repro.registry.RegistryError` listing the alternatives.
    """
    stack_factory = PROTOCOL_STACKS.get(config.protocol)
    mobility_factory = MOBILITY_MODELS.get(config.mobility)
    radio = RADIOS.get(config.radio)(config)
    mac = MACS.get(config.mac)(config)

    node_ids = list(range(config.n_nodes))
    mobility = mobility_factory(config, node_ids)
    network = Network(
        NetworkConfig(
            area=config.area(),
            radio=radio,
            mac=mac,
            mobility_step=config.mobility_step,
            seed=config.seed,
        ),
        mobility,
    )
    for node_id in node_ids:
        network.add_node(MobileNode(node_id))

    stack = stack_factory()
    stack.install(network, config)
    # fail here, not at traffic_start deep in the event loop, if the
    # stack's agents do not actually speak the registered protocol name
    # (traffic sources address agents by config.protocol)
    missing = [
        node_id
        for node_id, node in network.nodes.items()
        if not node.has_agent(config.protocol)
    ]
    if missing:
        raise RegistryError(
            f"protocol stack registered as {config.protocol!r} "
            f"({type(stack).__name__}) attached no agent speaking "
            f"{config.protocol!r} on node(s) {missing[:3]}; its agents "
            f"must set protocol_name = {config.protocol!r}"
        )

    groups = MulticastGroupManager(network, seed=config.seed + 1)
    sources: List[CbrMulticastSource] = []
    for g in range(config.n_groups):
        group_id = g + 1
        members = groups.create_random_group(
            group_id, min(config.group_size, config.n_nodes), candidates=node_ids
        )
        if config.sources_per_group > len(members):
            raise ValueError(
                f"sources_per_group={config.sources_per_group} exceeds the "
                f"{len(members)} member(s) of group {group_id}; raise "
                "group_size (sources are distinct group members)"
            )
        for s in range(config.sources_per_group):
            sources.append(
                CbrMulticastSource(
                    network,
                    source_node=members[s],
                    group=group_id,
                    protocol_name=config.protocol,
                    interval=config.traffic_interval,
                    payload_bytes=config.payload_bytes,
                    start_time=config.traffic_start + 0.37 * s,
                    jitter=0.2,
                    seed=config.seed + 100 + s,
                )
            )
    return BuiltScenario(
        config=config, network=network, groups=groups, sources=sources, stack=stack
    )
