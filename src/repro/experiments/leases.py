"""Lease/heartbeat/stale-reclaim semantics shared by work-stealing executors.

Two executor backends hand out *leases* on pending runs -- the ``queue``
backend over a shared filesystem (claim files whose mtime is the
heartbeat, :class:`~repro.experiments.executors.WorkQueue`) and the
``tcp`` backend over sockets (an in-memory table on the coordinator,
:class:`~repro.experiments.net.coordinator.Coordinator`).  Both follow
the same state machine:

* a pending run may be **claimed** by exactly one worker at a time;
* the holder refreshes the lease's **heartbeat** while executing;
* a lease whose heartbeat is older than ``stale_after`` is **abandoned**
  (the worker crashed or went silent mid-run) and may be **reclaimed**,
  after which the run is re-leased to another worker and re-executed --
  churn never loses a run, and deterministic results make the
  re-execution byte-identical;
* a dispossessed worker (its stale lease was stolen) must never refresh
  or release the *new* holder's lease.

This module is the single home of that protocol's constants and rules --
:data:`DEFAULT_STALE_AFTER` and :func:`is_stale` are shared verbatim by
both backends -- plus the pieces that do not depend on the transport:
:class:`LeaseTable`, the in-memory implementation the TCP coordinator
drives from its own clock (the file queue keeps its state *in* the
filesystem, claim files being what makes it multi-process safe, but
delegates the staleness decision here), and :class:`ExecutorStats`, the
robustness counters both backends surface in the run summary (leases
reclaimed, workers seen/lost, runs re-executed after churn).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: seconds without a heartbeat before a lease counts as abandoned and
#: may be reclaimed by another worker -- the one shared default of the
#: file-queue and TCP lease protocols
DEFAULT_STALE_AFTER = 60.0


def is_stale(age: float, stale_after: float) -> bool:
    """The reclaim rule: a lease is abandoned iff its heartbeat is older
    than ``stale_after`` seconds.

    ``age`` must be measured on a single clock the judging side owns --
    the shared filesystem's mtime clock for the file queue, the
    coordinator's monotonic clock for TCP -- never by comparing
    timestamps produced by different machines.
    """
    return age > stale_after


class LeaseLost(OSError):
    """A heartbeat or release was attempted on a lease the worker no
    longer holds (it went stale and another worker reclaimed it)."""


@dataclass
class ExecutorStats:
    """Churn counters a work-stealing backend surfaces in the run summary.

    A reclaimed lease used to be invisible unless you read the queue
    directory; these counters make worker churn first-class output of
    ``run_sweep`` for both the ``queue`` and ``tcp`` backends.
    """

    leases_reclaimed: int = 0   #: leases broken after crash/silence/disconnect
    workers_seen: int = 0       #: distinct workers that participated
    workers_lost: int = 0       #: workers that disconnected or went silent mid-run
    runs_reexecuted: int = 0    #: runs completed after at least one reclaim

    def __bool__(self) -> bool:
        return any(dataclasses.astuple(self))

    def add(self, other: "ExecutorStats") -> None:
        """Fold ``other``'s counters into this one (cumulative summaries)."""
        self.leases_reclaimed += other.leases_reclaimed
        self.workers_seen += other.workers_seen
        self.workers_lost += other.workers_lost
        self.runs_reexecuted += other.runs_reexecuted

    def describe(self) -> str:
        """The one-line churn summary ``run_sweep`` logs when non-zero."""
        return (
            f"{self.leases_reclaimed} lease(s) reclaimed, "
            f"{self.runs_reexecuted} run(s) re-executed, "
            f"{self.workers_seen} worker(s) seen, {self.workers_lost} lost"
        )


@dataclass
class Lease:
    """One held lease: which worker holds which task, and its liveness."""

    task_id: str
    owner: str
    last_beat: float              #: judging side's clock at last sign of life


@dataclass
class LeaseTable:
    """In-memory lease table driven entirely by the owner's clock.

    The TCP coordinator's half of the lease protocol: every timestamp
    passed in is the *coordinator's* monotonic clock at the moment a
    worker's message arrived, so staleness never depends on worker
    clocks (which may disagree across machines by more than
    ``stale_after``).  Not thread-safe by itself -- the coordinator
    serialises access under its own lock.
    """

    stale_after: float = DEFAULT_STALE_AFTER
    _leases: Dict[str, Lease] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._leases)

    def owner(self, task_id: str) -> Optional[str]:
        lease = self._leases.get(task_id)
        return lease.owner if lease is not None else None

    def claim(self, task_id: str, owner: str, now: float) -> bool:
        """Lease ``task_id`` to ``owner``; False if live-leased elsewhere.

        A stale incumbent is displaced (the in-memory analogue of the
        file queue's rename-aside reclaim); a live one is never touched.
        """
        lease = self._leases.get(task_id)
        if lease is not None and not is_stale(now - lease.last_beat, self.stale_after):
            return False
        self._leases[task_id] = Lease(task_id=task_id, owner=owner, last_beat=now)
        return True

    def heartbeat(self, task_id: str, owner: str, now: float) -> None:
        """Refresh the lease's liveness stamp; :class:`LeaseLost` if lost."""
        lease = self._leases.get(task_id)
        if lease is None or lease.owner != owner:
            raise LeaseLost(f"lease on {task_id} is no longer held by {owner}")
        lease.last_beat = now

    def touch_owner(self, owner: str, now: float) -> None:
        """Refresh every lease ``owner`` holds (any message is a heartbeat)."""
        for lease in self._leases.values():
            if lease.owner == owner:
                lease.last_beat = now

    def release(self, task_id: str, owner: Optional[str] = None) -> bool:
        """Drop the lease; with ``owner``, only if still its holder.

        Returns True iff a lease was removed.  The ownership check keeps
        a dispossessed worker from releasing the new holder's lease.
        """
        lease = self._leases.get(task_id)
        if lease is None:
            return False
        if owner is not None and lease.owner != owner:
            return False
        del self._leases[task_id]
        return True

    def release_owner(self, owner: str) -> List[Lease]:
        """Drop (and return) every lease ``owner`` holds -- a disconnect."""
        dropped = [l for l in self._leases.values() if l.owner == owner]
        for lease in dropped:
            del self._leases[lease.task_id]
        return dropped

    def reclaim_stale(self, now: float) -> List[Lease]:
        """Remove and return every lease whose heartbeat has gone stale."""
        stale = [
            lease
            for lease in self._leases.values()
            if is_stale(now - lease.last_beat, self.stale_after)
        ]
        for lease in stale:
            del self._leases[lease.task_id]
        return stale
