"""Pluggable result-store backends for the sweep orchestrator.

Result persistence used to be hardwired to one layout: a directory of
JSON files, one per content-hash cache key (the ``ResultCache`` of
:mod:`repro.experiments.orchestrator`).  That layout is perfect for a
handful of runs and hopeless for the million-run sweeps the roadmap
targets -- ``export``, ``merge``, ``perf`` and adaptive replay all pay
one ``open()`` per run.  This module extracts the choice into a registry
of named *store* backends (the same pattern as the protocol and executor
registries): a :class:`ResultStore` maps content-hash keys to
:class:`~repro.experiments.orchestrator.RunResult` records, readers go
through the batch-oriented :meth:`ResultStore.scan` (one column scan, not
N file opens), and every consumer dispatches through :data:`STORES`.

Three backends ship:

* ``json`` -- the original one-file-per-run directory layout and the
  registered **default**: existing cache directories keep working
  unchanged, and ``ResultCache`` survives as a thin alias.
* ``sqlite`` -- a single-file columnar table (key plus schema-versioned
  params/metrics columns) in WAL journal mode, so any number of
  concurrent writers -- queue workers on a shared filesystem included --
  can publish while readers scan.
* ``parquet`` -- registered only when :mod:`pyarrow` is importable
  (optional, never a hard dependency): a directory of per-run parquet
  parts read back as one columnar dataset scan.

Which store holds a cache is a *sweep-cosmetic* choice exactly like the
executor: it never enters cache keys, so the same spec swept under any
backend produces byte-identical exported artifacts, and a cache warmed
under one backend replays with zero executions under the same backend.

Stores are addressed by *store specs* -- ``json:.repro-cache``,
``sqlite:results.db`` -- anywhere a cache path is accepted; a bare path
keeps meaning ``json:`` (the compatibility shim for every pre-existing
call site and cache directory).  Register third-party backends exactly
like built-ins::

    from repro.experiments.stores import ResultStore, register_store

    @register_store("redis")
    class RedisStore(ResultStore):
        ...
"""

from __future__ import annotations

import json
import os
import sqlite3
import uuid
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.registry import Registry

#: result-store factories; ``SweepSpec.store`` / ``--store`` / store-spec
#: prefixes resolve here.  Bootstraps this module (the built-ins) plus
#: the specs module, mirroring the executor registry.
STORES = Registry(
    "store",
    bootstrap=("repro.experiments.stores", "repro.experiments.specs"),
)

#: the backend used when neither the spec, the caller nor a store-spec
#: prefix names one -- the pre-registry behaviour (a JSON directory)
DEFAULT_STORE = "json"

#: version stamped into every persisted record's schema slot; bump when
#: the column layout of a backend changes shape (a mismatched record is
#: treated as corrupt and re-executed, never misread)
RESULT_SCHEMA_VERSION = 1

#: optional backends and the import they need; shown by the ``stores``
#: CLI listing when the dependency is missing (they are simply not
#: registered, so a lookup error still lists real alternatives)
OPTIONAL_STORES = {"parquet": "pyarrow"}


class StoreError(ValueError):
    """A store spec (or a store/prefix combination) is invalid."""


def register_store(name: str):
    """Register a :class:`ResultStore` factory (usually the class) under ``name``."""
    return STORES.register(name)


def parse_store_spec(spec: str) -> Tuple[Optional[str], str]:
    """Split ``"sqlite:runs.db"`` into ``("sqlite", "runs.db")``.

    A bare path (no ``name:`` prefix) returns ``(None, path)`` -- the
    caller decides the default backend, which keeps every pre-existing
    ``cache_dir`` call site meaning ``json``.  Only a prefix shaped like
    a backend name (``[A-Za-z][A-Za-z0-9_-]+``, so at least two
    characters -- a single letter is a Windows drive) counts; a path
    whose first segment happens to contain a colon must be written with
    an explicit ``json:`` prefix.
    """
    name, sep, rest = spec.partition(":")
    if sep and len(name) >= 2 and name.replace("_", "").replace("-", "").isalnum() \
            and not name[0].isdigit() and "/" not in name and "\\" not in name \
            and "." not in name:
        return name, rest
    return None, spec


def make_store(target: Any, store: Optional[str] = None, **options: Any) -> "ResultStore":
    """Open the result store addressed by ``target``.

    ``target`` is an existing :class:`ResultStore` (returned as-is), a
    store spec (``"sqlite:runs.db"``), or a bare path (meaning the
    ``store`` argument's backend, default ``json``).  The backend name is
    resolved eagerly through :data:`STORES` -- an unknown name raises
    :class:`~repro.registry.RegistryError` listing the registered
    alternatives before any directory or file is created.  ``options``
    are backend keyword arguments.
    """
    if isinstance(target, ResultStore):
        return target
    prefix, path = parse_store_spec(str(target))
    if store is not None and prefix is not None and store != prefix:
        raise StoreError(
            f"store spec {target!r} names backend {prefix!r} but store="
            f"{store!r} was also requested; drop one of the two"
        )
    name = store or prefix or DEFAULT_STORE
    if not path:
        raise StoreError(f"store spec {target!r} has an empty path")
    return STORES.get(name)(path, **options)


def store_exists(target: Any, store: Optional[str] = None) -> bool:
    """True if the store addressed by ``target`` already exists on disk.

    Opening a store *creates* it (directory or database file), so
    callers that must refuse a cold cache -- ``resume``, ``export``,
    ``merge`` sources -- probe here first.
    """
    if isinstance(target, ResultStore):
        return True
    prefix, path = parse_store_spec(str(target))
    name = store or prefix or DEFAULT_STORE
    return bool(path) and STORES.get(name).exists(path)


def available_stores() -> List[Tuple[str, str]]:
    """Sorted ``(name, one-line description)`` pairs of registered backends."""
    rows = []
    for name in STORES.names():
        entry = STORES.get(name)
        doc = (entry.__doc__ or "").strip()
        rows.append((name, doc.splitlines()[0] if doc else ""))
    return rows


def unavailable_stores() -> List[Tuple[str, str]]:
    """Optional backends whose dependency is missing, with the reason."""
    rows = []
    for name, dependency in sorted(OPTIONAL_STORES.items()):
        if name not in STORES:
            rows.append((name, f"requires {dependency} (not installed)"))
    return rows


def _result_from_dict(data: Dict[str, Any]) -> Any:
    # lazy import: orchestrator imports this module at top level
    from repro.experiments.orchestrator import RunResult

    result = RunResult.from_dict(data)
    result.from_cache = True
    return result


def _result_to_dict(result: Any) -> Dict[str, Any]:
    # normalise provenance on write: ``from_cache`` describes how the
    # *reading* invocation obtained a record, so the persisted form is
    # always False -- merging a store into another must reproduce the
    # bytes a live run would have written
    data = result.to_dict()
    data["from_cache"] = False
    return data


class ResultStore:
    """One result-persistence strategy: the contract every consumer speaks.

    Keys are the runs' content-hash cache keys
    (:meth:`~repro.experiments.orchestrator.RunSpec.cache_key`); values
    are :class:`~repro.experiments.orchestrator.RunResult` records.
    :meth:`get`/:meth:`put` are the per-run path the executors use;
    :meth:`scan` is the batch read path -- ``export``, ``merge``,
    ``perf`` and warm-cache resolution hand it every wanted key at once
    so a columnar backend answers with one scan instead of N point
    lookups.  :meth:`put` must be atomic and idempotent under concurrent
    writers publishing the same deterministic result.

    Every store counts ``hits``/``misses`` and -- the failure mode the
    old cache swallowed silently -- ``corrupt_entries``: records that
    exist but cannot be decoded are counted, treated as misses (the run
    re-executes and the rewrite heals the store) and surfaced in run
    summaries by the orchestrator.
    """

    #: registered name, for progress lines and error messages
    name = "base"

    #: conventional location of a queue's results store, relative to the
    #: queue directory (directory-backed stores share ``results``)
    queue_filename = "results"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.corrupt_entries = 0

    # -- the storage contract ---------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        """The record under ``key``, or None (missing or corrupt)."""
        raise NotImplementedError

    def put(self, key: str, result: Any) -> None:
        """Persist ``result`` under ``key`` (atomic; replaces any entry)."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Drop the entry under ``key`` if present (``--force`` re-runs)."""
        raise NotImplementedError

    def keys(self) -> List[str]:
        """Every stored key, sorted."""
        raise NotImplementedError

    def scan(self, keys: Optional[Iterable[str]] = None) -> Iterator[Tuple[str, Any]]:
        """Batch read: yield ``(key, RunResult)`` for every stored key.

        With ``keys`` given, only those keys are read (missing ones are
        counted as misses and skipped), in the requested order with
        duplicates collapsed; without, the whole store streams in sorted
        key order.  The base implementation loops over :meth:`get`;
        columnar backends override it with a single scan.
        """
        wanted = self.keys() if keys is None else list(dict.fromkeys(keys))
        for key in wanted:
            result = self.get(key)
            if result is not None:
                yield key, result

    def close(self) -> None:
        """Release backend state (connections, buffers); idempotent."""

    def describe(self) -> str:
        """Human-readable ``name:location`` for progress lines."""
        return self.name

    @staticmethod
    def exists(path: str) -> bool:
        """Whether a store already exists at ``path`` (see :func:`store_exists`)."""
        return os.path.exists(path)


@register_store("json")
class JsonStore(ResultStore):
    """One JSON file per run in a directory (the default; the seed layout).

    Simple, merge-friendly (entries are independent files named by
    content hash) and humanly greppable, but every read is one
    ``open()`` -- fine for smoke grids, O(N) for large sweeps.  Existing
    cache directories from earlier releases are valid ``json`` stores
    as-is.
    """

    name = "json"

    def __init__(self, directory: str) -> None:
        super().__init__()
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[Any]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            # the entry exists but cannot be decoded: a half-written or
            # damaged record.  Counted (the orchestrator surfaces it in
            # the run summary) and treated as a miss so the run
            # re-executes and the rewrite heals the store.
            self.misses += 1
            self.corrupt_entries += 1
            return None
        self.hits += 1
        return _result_from_dict(data)

    def put(self, key: str, result: Any) -> None:
        # unique tmp name: concurrent writers of the same key (possible
        # when a queue worker's stale lease was reclaimed and both
        # executions publish the same deterministic result) must not
        # share a tmp path, or the loser's os.replace raises after the
        # winner's rename already consumed it
        tmp = f"{self._path(key)}.tmp-{uuid.uuid4().hex[:8]}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(_result_to_dict(result), fh)
        os.replace(tmp, self._path(key))

    def delete(self, key: str) -> None:
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            pass

    def keys(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        return sorted(n[: -len(".json")] for n in names if n.endswith(".json"))

    def describe(self) -> str:
        return f"json:{self.directory}"

    @staticmethod
    def exists(path: str) -> bool:
        return os.path.isdir(path)


#: SELECT/INSERT column order of the sqlite backend (params/metrics are
#: JSON-encoded text columns preserving insertion order, so a round trip
#: is byte-identical to the json backend's artifacts)
_SQLITE_COLUMNS = (
    "run_id",
    "seed",
    "duration",
    "wall_time",
    "cache_key",
    "adaptive_round",
    "params",
    "metrics",
)


@register_store("sqlite")
class SqliteStore(ResultStore):
    """Single-file columnar SQLite table in WAL mode (concurrent-writer safe).

    One ``results`` table keyed by content hash with schema-versioned
    params/metrics columns.  WAL journal mode lets readers scan while
    any number of writers -- queue workers on a shared filesystem
    included -- publish concurrently; every operation opens its own
    short-lived connection, so one store object is safe to share across
    threads and processes.  :meth:`scan` is a single ``SELECT`` (chunked
    ``IN`` lists), which is what turns export/merge/perf/replay from N
    file opens into one column scan.
    """

    name = "sqlite"
    queue_filename = "results.db"

    #: keys per IN-list chunk of a constrained scan (SQLite's default
    #: variable limit is 999; stay comfortably below it)
    SCAN_CHUNK = 400

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        super().__init__()
        self.path = path
        self.timeout = timeout
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with self._connect() as con:
            con.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " key TEXT PRIMARY KEY,"
                " schema_version INTEGER NOT NULL,"
                " run_id TEXT NOT NULL,"
                " seed INTEGER NOT NULL,"
                " duration REAL NOT NULL,"
                " wall_time REAL NOT NULL,"
                " cache_key TEXT NOT NULL,"
                " adaptive_round INTEGER NOT NULL,"
                " params TEXT NOT NULL,"
                " metrics TEXT NOT NULL)"
            )
        con.close()

    def _connect(self) -> sqlite3.Connection:
        con = sqlite3.connect(self.path, timeout=self.timeout)
        # WAL persists in the database file, so setting it on every
        # connection is a cheap no-op after the first; NORMAL sync is
        # durable-enough for a cache that can always re-execute
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA synchronous=NORMAL")
        return con

    def _decode(self, key: str, row: Tuple) -> Optional[Any]:
        schema = row[0]
        if schema != RESULT_SCHEMA_VERSION:
            self.corrupt_entries += 1
            return None
        values = dict(zip(_SQLITE_COLUMNS, row[1:]))
        try:
            values["params"] = json.loads(values["params"])
            values["metrics"] = json.loads(values["metrics"])
        except (TypeError, ValueError):
            self.corrupt_entries += 1
            return None
        return _result_from_dict(values)

    _SELECT = (
        "SELECT schema_version, " + ", ".join(_SQLITE_COLUMNS) + " FROM results"
    )

    def get(self, key: str) -> Optional[Any]:
        con = self._connect()
        try:
            row = con.execute(self._SELECT + " WHERE key = ?", (key,)).fetchone()
        finally:
            con.close()
        if row is None:
            self.misses += 1
            return None
        result = self._decode(key, row)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: Any) -> None:
        data = _result_to_dict(result)
        con = self._connect()
        try:
            with con:
                con.execute(
                    "INSERT OR REPLACE INTO results (key, schema_version, "
                    + ", ".join(_SQLITE_COLUMNS)
                    + ") VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        RESULT_SCHEMA_VERSION,
                        data["run_id"],
                        data["seed"],
                        data["duration"],
                        data["wall_time"],
                        data["cache_key"],
                        data["adaptive_round"],
                        json.dumps(data["params"]),
                        json.dumps(data["metrics"]),
                    ),
                )
        finally:
            con.close()

    def delete(self, key: str) -> None:
        con = self._connect()
        try:
            with con:
                con.execute("DELETE FROM results WHERE key = ?", (key,))
        finally:
            con.close()

    def keys(self) -> List[str]:
        con = self._connect()
        try:
            rows = con.execute("SELECT key FROM results ORDER BY key").fetchall()
        finally:
            con.close()
        return [row[0] for row in rows]

    def scan(self, keys: Optional[Iterable[str]] = None) -> Iterator[Tuple[str, Any]]:
        con = self._connect()
        try:
            if keys is None:
                rows = con.execute(self._SELECT + " ORDER BY key").fetchall()
                keyed = con.execute("SELECT key FROM results ORDER BY key").fetchall()
                pairs = [(k[0], row) for k, row in zip(keyed, rows)]
            else:
                wanted = list(dict.fromkeys(keys))
                pairs = []
                fetched: Dict[str, Tuple] = {}
                for start in range(0, len(wanted), self.SCAN_CHUNK):
                    chunk = wanted[start : start + self.SCAN_CHUNK]
                    marks = ", ".join("?" for _ in chunk)
                    for row in con.execute(
                        "SELECT key, schema_version, "
                        + ", ".join(_SQLITE_COLUMNS)
                        + f" FROM results WHERE key IN ({marks})",
                        chunk,
                    ):
                        fetched[row[0]] = row[1:]
                pairs = [(k, fetched[k]) for k in wanted if k in fetched]
                self.misses += len(wanted) - len(pairs)
        finally:
            con.close()
        for key, row in pairs:
            result = self._decode(key, row)
            if result is None:
                self.misses += 1
                continue
            self.hits += 1
            yield key, result

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    @staticmethod
    def exists(path: str) -> bool:
        return os.path.isfile(path)


try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow  # noqa: F401
    import pyarrow.parquet  # noqa: F401

    _HAVE_PYARROW = True
except ImportError:
    _HAVE_PYARROW = False


if _HAVE_PYARROW:  # pragma: no cover - optional backend

    @register_store("parquet")
    class ParquetStore(ResultStore):
        """Directory of per-run parquet parts read as one columnar dataset.

        Registered only when :mod:`pyarrow` is importable -- never a hard
        dependency.  Each :meth:`put` writes an independent
        ``part-<key>.parquet`` (atomic rename, so concurrent writers are
        safe exactly like the json layout); :meth:`scan` reads the whole
        directory back as a single Arrow dataset scan.  Best suited to
        archival exports of finished sweeps.
        """

        name = "parquet"
        queue_filename = "results.parquet"

        _FIELDS = ("key", "schema_version") + _SQLITE_COLUMNS

        def __init__(self, directory: str) -> None:
            super().__init__()
            self.directory = directory
            os.makedirs(directory, exist_ok=True)

        def _path(self, key: str) -> str:
            return os.path.join(self.directory, f"part-{key}.parquet")

        def _row(self, key: str, result: Any) -> Dict[str, Any]:
            data = _result_to_dict(result)
            return {
                "key": key,
                "schema_version": RESULT_SCHEMA_VERSION,
                "run_id": data["run_id"],
                "seed": data["seed"],
                "duration": data["duration"],
                "wall_time": data["wall_time"],
                "cache_key": data["cache_key"],
                "adaptive_round": data["adaptive_round"],
                "params": json.dumps(data["params"]),
                "metrics": json.dumps(data["metrics"]),
            }

        def _decode_row(self, row: Dict[str, Any]) -> Optional[Any]:
            if row.get("schema_version") != RESULT_SCHEMA_VERSION:
                self.corrupt_entries += 1
                return None
            try:
                values = {
                    name: row[name]
                    for name in _SQLITE_COLUMNS
                    if name not in ("params", "metrics")
                }
                values["params"] = json.loads(row["params"])
                values["metrics"] = json.loads(row["metrics"])
            except (KeyError, TypeError, ValueError):
                self.corrupt_entries += 1
                return None
            return _result_from_dict(values)

        def get(self, key: str) -> Optional[Any]:
            import pyarrow.parquet as pq

            path = self._path(key)
            if not os.path.isfile(path):
                self.misses += 1
                return None
            try:
                table = pq.read_table(path)
                row = table.to_pylist()[0]
            except Exception:
                self.misses += 1
                self.corrupt_entries += 1
                return None
            result = self._decode_row(row)
            if result is None:
                self.misses += 1
                return None
            self.hits += 1
            return result

        def put(self, key: str, result: Any) -> None:
            import pyarrow as pa
            import pyarrow.parquet as pq

            table = pa.Table.from_pylist([self._row(key, result)])
            tmp = f"{self._path(key)}.tmp-{uuid.uuid4().hex[:8]}"
            pq.write_table(table, tmp)
            os.replace(tmp, self._path(key))

        def delete(self, key: str) -> None:
            try:
                os.unlink(self._path(key))
            except FileNotFoundError:
                pass

        def keys(self) -> List[str]:
            try:
                names = os.listdir(self.directory)
            except FileNotFoundError:
                return []
            return sorted(
                n[len("part-") : -len(".parquet")]
                for n in names
                if n.startswith("part-") and n.endswith(".parquet")
            )

        def scan(self, keys: Optional[Iterable[str]] = None) -> Iterator[Tuple[str, Any]]:
            import pyarrow.parquet as pq

            wanted = None if keys is None else set(dict.fromkeys(keys))
            try:
                dataset = pq.ParquetDataset(self.directory)
                rows = dataset.read().to_pylist()
            except Exception:
                rows = []
            by_key = {row["key"]: row for row in rows}
            order = sorted(by_key) if wanted is None else [
                k for k in dict.fromkeys(keys) if k in by_key
            ]
            if wanted is not None:
                self.misses += len(wanted) - len(order)
            for key in order:
                result = self._decode_row(by_key[key])
                if result is None:
                    self.misses += 1
                    continue
                self.hits += 1
                yield key, result

        def describe(self) -> str:
            return f"parquet:{self.directory}"

        @staticmethod
        def exists(path: str) -> bool:
            return os.path.isdir(path)
