"""Remote worker for the networked (``tcp``) executor.

:func:`run_net_worker` is the loop behind ``python -m repro.experiments
worker --connect HOST:PORT``: connect to a coordinator, negotiate the
protocol version (:mod:`~repro.experiments.net.protocol`), then
repeatedly ask for work (``drain``), execute each leased
:class:`~repro.experiments.orchestrator.RunSpec` while a background
thread heartbeats over the same socket (the send lock in
:class:`~repro.experiments.net.protocol.FrameConnection` keeps frames
from interleaving), and stream the ``result`` -- or a terminal ``error``
-- back.

Elasticity and churn:

* a dropped connection (coordinator restart, network blip) is retried
  with **jittered exponential backoff**; any run in flight at the drop is
  abandoned -- the coordinator reclaims its lease and re-leases it, and
  determinism makes the eventual result byte-identical, so the worker
  never tries to deliver stale work after reconnecting;
* workers may attach and detach mid-sweep: Ctrl-C (or any
  ``BaseException``) sends a best-effort ``close`` frame so the
  coordinator releases the leases immediately instead of waiting out
  ``stale_after``;
* a protocol-version mismatch is *fatal*, not retried --
  :class:`NetWorkerError` propagates so a mixed-version fleet fails
  loudly instead of spinning.

With ``forever=True`` the worker outlives coordinators: after a clean
``close`` (sweep finished) or exhausted retries it keeps knocking, so a
fleet of long-lived workers serves sweep after sweep.
"""

from __future__ import annotations

import os
import random
import socket
import sys
import threading
import time
from typing import Any, Callable, Optional, Tuple, Union

from repro.experiments.leases import DEFAULT_STALE_AFTER
from repro.experiments.net import protocol
from repro.experiments.net.protocol import FrameConnection, ProtocolError

#: first retry delay; doubles per consecutive failure up to the cap
BACKOFF_BASE = 0.5
BACKOFF_CAP = 15.0

#: consecutive connection failures before a non-``forever`` worker gives up
DEFAULT_MAX_RETRIES = 8

#: socket timeout for handshake/ack reads (execution time is unbounded,
#: but no single protocol exchange should ever take this long)
_SOCKET_TIMEOUT = 60.0


class NetWorkerError(RuntimeError):
    """A fatal worker-side condition (e.g. protocol-version mismatch)."""


def parse_address(text: str) -> Tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)``; ValueError on anything else."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--connect expects HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--connect expects a numeric port, got {text!r}") from None
    if not 0 < port <= 65535:
        raise ValueError(f"--connect port out of range: {text!r}")
    return host, port


def _backoff_delay(failures: int, rng: random.Random) -> float:
    """Exponential backoff with full jitter (uniform over the window)."""
    window = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** max(failures - 1, 0)))
    return rng.uniform(0, window)


def _log(progress: bool, message: str) -> None:
    if progress:
        print(message, file=sys.stderr, flush=True)


def run_net_worker(
    address: Union[str, Tuple[str, int]],
    worker_id: Optional[str] = None,
    poll_interval: float = 0.5,
    heartbeat_interval: Optional[float] = None,
    execute: Optional[Callable] = None,
    max_tasks: Optional[int] = None,
    forever: bool = False,
    max_retries: int = DEFAULT_MAX_RETRIES,
    progress: bool = False,
) -> int:
    """Attach to a coordinator and execute leased runs until told to stop.

    Returns the number of runs executed to completion.  Exits when the
    coordinator sends ``close`` (sweep over), when ``max_tasks`` runs
    have completed (mainly for tests), or -- without ``forever`` -- after
    ``max_retries`` consecutive failed connection attempts.  ``execute``
    defaults to :func:`~repro.experiments.orchestrator.execute_run`;
    ``heartbeat_interval`` defaults to a quarter of the coordinator's
    advertised ``stale_after``.
    """
    from repro.experiments.orchestrator import execute_run

    execute = execute or execute_run
    host, port = address if isinstance(address, tuple) else parse_address(address)
    wid = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    rng = random.Random(f"{wid}:{host}:{port}")
    executed = 0
    failures = 0
    while True:
        if max_tasks is not None and executed >= max_tasks:
            return executed
        try:
            sock = socket.create_connection((host, port), timeout=_SOCKET_TIMEOUT)
        except OSError as exc:
            failures += 1
            if not forever and failures > max_retries:
                _log(
                    progress,
                    f"[worker {wid}] giving up on {host}:{port} after "
                    f"{failures} failed connection attempt(s): {exc!r}",
                )
                return executed
            time.sleep(_backoff_delay(failures, rng))
            continue
        conn = FrameConnection(sock)
        try:
            budget = None if max_tasks is None else max_tasks - executed
            closed, count = _session(
                conn,
                wid,
                poll_interval=poll_interval,
                heartbeat_interval=heartbeat_interval,
                execute=execute,
                budget=budget,
                progress=progress,
            )
            executed += count
            failures = 0
            if closed and not forever:
                return executed
            if closed:
                # forever: the coordinator said goodbye, but another
                # sweep may start one later -- keep knocking, gently
                time.sleep(poll_interval)
        except NetWorkerError:
            raise  # fatal (version mismatch): never retried
        except (ProtocolError, OSError) as exc:
            # dropped mid-session: the coordinator reclaims our leases;
            # reconnect with backoff and start clean
            failures += 1
            if not forever and failures > max_retries:
                _log(
                    progress,
                    f"[worker {wid}] connection to {host}:{port} lost "
                    f"({exc!r}); retries exhausted",
                )
                return executed
            _log(progress, f"[worker {wid}] connection lost ({exc!r}); reconnecting")
            time.sleep(_backoff_delay(failures, rng))
        except BaseException:
            # Ctrl-C / SystemExit: detach cleanly so the coordinator
            # releases our leases now instead of waiting out stale_after
            try:
                conn.send(protocol.FRAME_CLOSE, {})
            except (ProtocolError, OSError):
                pass
            raise
        finally:
            conn.close()


def _session(
    conn: FrameConnection,
    wid: str,
    *,
    poll_interval: float,
    heartbeat_interval: Optional[float],
    execute: Callable,
    budget: Optional[int],
    progress: bool,
) -> Tuple[bool, int]:
    """One connected session; returns (coordinator said close, executed)."""
    conn.send(protocol.FRAME_HELLO, protocol.hello_payload(wid))
    frame = conn.recv()
    if frame is None:
        raise ProtocolError("connection closed during handshake")
    kind, payload = frame
    if kind == protocol.FRAME_ERROR:
        raise NetWorkerError(
            f"coordinator refused worker {wid}: "
            f"{payload.get('error', 'unknown error')}"
        )
    if kind != protocol.FRAME_HELLO:
        raise ProtocolError(f"expected hello reply, got {kind}")
    if payload.get("version") != protocol.PROTOCOL_VERSION:
        raise NetWorkerError(
            f"protocol version mismatch: worker speaks "
            f"{protocol.PROTOCOL_VERSION}, coordinator speaks "
            f"{payload.get('version')!r}"
        )
    stale_after = float(payload.get("stale_after", DEFAULT_STALE_AFTER))
    beat_every = heartbeat_interval or max(stale_after / 4.0, 0.05)
    executed = 0
    while True:
        if budget is not None and executed >= budget:
            conn.send(protocol.FRAME_CLOSE, {})
            return True, executed
        conn.send(protocol.FRAME_DRAIN, {})
        frame = conn.recv()
        if frame is None:
            raise ProtocolError("connection closed while waiting for work")
        kind, payload = frame
        if kind == protocol.FRAME_CLOSE:
            _log(progress, f"[worker {wid}] coordinator closed; detaching")
            return True, executed
        if kind == protocol.FRAME_DRAIN:
            time.sleep(poll_interval)
            continue
        if kind != protocol.FRAME_LEASE:
            raise ProtocolError(f"expected lease/drain/close, got {kind}")
        task_id = payload.get("task_id")
        run = protocol.decode_run(payload.get("run", ""))
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(beat_every):
                try:
                    conn.send(protocol.FRAME_HEARTBEAT, {"task_id": task_id})
                except (ProtocolError, OSError):
                    return  # connection gone; the session loop notices
        beater = threading.Thread(target=beat, daemon=True)
        beater.start()
        try:
            try:
                result = execute(run)
            except Exception as exc:
                conn.send(
                    protocol.FRAME_ERROR,
                    {
                        "task_id": task_id,
                        "run_id": getattr(run, "run_id", task_id),
                        "error": repr(exc),
                    },
                )
                _ack(conn, protocol.FRAME_ERROR)
                _log(
                    progress,
                    f"[worker {wid}] FAILED {getattr(run, 'run_id', task_id)}: {exc!r}",
                )
            else:
                conn.send(
                    protocol.FRAME_RESULT,
                    {"task_id": task_id, "result": protocol.encode_result(result)},
                )
                _ack(conn, protocol.FRAME_RESULT)
                executed += 1
                _log(
                    progress,
                    f"[worker {wid}] {result.run_id} ({result.wall_time:.1f}s)",
                )
        finally:
            stop.set()
            beater.join()


def _ack(conn: FrameConnection, expected: str) -> None:
    """Consume the coordinator's echo ack for a result/error frame."""
    frame = conn.recv()
    if frame is None:
        raise ProtocolError("connection closed while waiting for ack")
    kind, _payload = frame
    if kind != expected:
        raise ProtocolError(f"expected {expected} ack, got {kind}")
