"""Driver side of the networked (``tcp``) executor.

:class:`Coordinator` is a small threaded TCP service the driver process
runs for the duration of a sweep: it listens on ``host:port``, performs
the :mod:`~repro.experiments.net.protocol` handshake with each connecting
worker, leases pending :class:`~repro.experiments.orchestrator.RunSpec`\\ s
to them, and collects streamed results/errors.  Lease liveness follows
the shared state machine of :mod:`repro.experiments.leases` with the same
``stale_after`` default as the file queue, judged **entirely on the
coordinator's monotonic clock**: every frame received from a worker --
heartbeat or otherwise -- refreshes that worker's leases at the moment of
arrival, and worker-side timestamps are never consulted, so machines with
disagreeing clocks cannot break leases (or keep dead ones alive).

Churn tolerance:

* a worker that **disconnects** (crash, ``kill -9``, network drop -- TCP
  EOF or reset) has its leases released back to the pending pool
  immediately;
* a worker that stays connected but goes **silent** longer than
  ``stale_after`` has its leases reclaimed by the executor's poll loop;
* either way the runs are re-leased to the next worker that asks, and a
  dispossessed worker's late result is dropped -- every run is recorded
  exactly once, and deterministic execution makes the re-run
  byte-identical;
* a **malformed frame** kills only the offending connection.

:class:`TcpExecutor` (registered as ``tcp``) wraps the coordinator in the
:class:`~repro.experiments.executors.Executor` contract: like every
backend it is sweep-cosmetic (excluded from cache keys; artifacts stay
byte-identical to serial/process/thread/queue), results land in the
*driver's* result store via the orchestrator's ``record`` callback (the
store spec never crosses the wire), and a warm-cache sweep never even
binds the listening socket.
"""

from __future__ import annotations

import collections
import os
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.executors import (
    Executor,
    WorkerTaskError,
    _log,
    register_executor,
)
from repro.experiments.leases import (
    DEFAULT_STALE_AFTER,
    ExecutorStats,
    LeaseTable,
)
from repro.experiments.net import protocol
from repro.experiments.net.protocol import (
    DEFAULT_MAX_PAYLOAD,
    FrameConnection,
    ProtocolError,
)

#: default bind address -- loopback; bind 0.0.0.0 explicitly for fleets
DEFAULT_HOST = "127.0.0.1"

#: default coordinator port (0 = bind an ephemeral port and read
#: :attr:`Coordinator.port` back)
DEFAULT_PORT = 7653


class Coordinator:
    """Threaded lease-granting TCP service owned by the driver process.

    Thread model: one accept thread plus one handler thread per
    connection, all daemons, all serialised on one lock around the task
    pool, the :class:`~repro.experiments.leases.LeaseTable` and the
    completed/failed maps.  The driver thread interacts through
    :meth:`submit`/:meth:`drain`/:meth:`reclaim_stale`, so results flow:
    worker socket -> handler thread -> completed map -> ``drain()`` ->
    the orchestrator's ``record`` callback -> the driver's result store.
    """

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        stale_after: float = DEFAULT_STALE_AFTER,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        self.host = host
        self.port = port
        self.stale_after = stale_after
        self.max_payload = max_payload
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._tasks: Dict[str, Any] = {}          # outstanding task -> RunSpec
        self._queue: collections.deque = collections.deque()  # leasable ids
        self._leases = LeaseTable(stale_after=stale_after)
        self._completed: Dict[str, Any] = {}      # task -> RunResult
        self._failed: Dict[str, Dict[str, str]] = {}
        self._stats = ExecutorStats()
        self._seen_workers: set = set()
        self._active_workers: collections.Counter = collections.Counter()
        self._reclaimed: set = set()              # tasks reclaimed >= once
        self._server: Optional[socket.socket] = None
        self._conns: set = set()
        self._threads: List[threading.Thread] = []
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Bind, listen and start accepting; returns the bound port.

        Idempotent -- the executor calls this lazily from its first
        ``map_runs`` batch, so a warm-cache sweep never opens a socket.
        """
        with self._lock:
            if self._server is not None:
                return self.port
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
            server.listen()
            self.port = server.getsockname()[1]
            self._server = server
        acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        acceptor.start()
        self._threads.append(acceptor)
        return self.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self, grace: float = 5.0) -> None:
        """Stop serving: idle workers get ``close`` on their next drain.

        Waits up to ``grace`` seconds for connected workers to say
        goodbye (they poll within their own poll interval), then drops
        any remaining connections.  Idempotent; a never-started
        coordinator closes instantly.
        """
        with self._lock:
            self._closing = True
            server, self._server = self._server, None
        if server is not None:
            try:
                server.close()
            except OSError:
                pass
            deadline = time.monotonic() + grace
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._conns:
                        break
                time.sleep(0.05)
        with self._lock:
            remaining = list(self._conns)
        for conn in remaining:
            conn.close()

    # -- driver-side API ---------------------------------------------------

    def submit(self, task_id: str, run: Any) -> None:
        """Add one pending run to the leasable pool (dedup by task id)."""
        with self._lock:
            if task_id in self._tasks:
                return
            self._tasks[task_id] = run
            self._queue.append(task_id)

    def drain(self, timeout: float) -> Tuple[Dict[str, Any], Dict[str, Dict[str, str]]]:
        """Pop everything finished so far, waiting up to ``timeout``."""
        with self._done:
            if not self._completed and not self._failed:
                self._done.wait(timeout)
            results, self._completed = self._completed, {}
            errors, self._failed = self._failed, {}
            return results, errors

    def reclaim_stale(self) -> int:
        """Requeue leases silent past ``stale_after`` (coordinator clock)."""
        with self._lock:
            stale = self._leases.reclaim_stale(time.monotonic())
            for lease in stale:
                self._requeue_locked(lease.task_id)
            return len(stale)

    def status(self) -> Tuple[int, int, int]:
        """(outstanding runs, currently leased, connected workers)."""
        with self._lock:
            return len(self._tasks), len(self._leases), sum(
                1 for count in self._active_workers.values() if count > 0
            )

    def worker_count(self) -> int:
        with self._lock:
            return sum(1 for count in self._active_workers.values() if count > 0)

    def stats(self) -> ExecutorStats:
        with self._lock:
            stats = ExecutorStats(
                leases_reclaimed=self._stats.leases_reclaimed,
                workers_seen=len(self._seen_workers),
                workers_lost=self._stats.workers_lost,
                runs_reexecuted=self._stats.runs_reexecuted,
            )
            return stats

    def _requeue_locked(self, task_id: str) -> None:
        """Put a reclaimed lease's run back up for leasing (lock held)."""
        if task_id in self._tasks and task_id not in self._queue:
            self._queue.append(task_id)
            self._reclaimed.add(task_id)
            self._stats.leases_reclaimed += 1

    # -- the service -------------------------------------------------------

    def _accept_loop(self) -> None:
        server = self._server
        while server is not None:
            try:
                sock, _addr = server.accept()
            except OSError:  # listener closed: shutting down
                return
            conn = FrameConnection(sock, max_payload=self.max_payload)
            with self._lock:
                if self._closing:
                    conn.close()
                    return
                self._conns.add(conn)
            handler = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            handler.start()
            self._threads.append(handler)
            with self._lock:
                server = self._server

    def _serve_connection(self, conn: FrameConnection) -> None:
        worker: Optional[str] = None
        clean_goodbye = False
        try:
            frame = conn.recv()
            if frame is None:
                return
            kind, payload = frame
            if kind != protocol.FRAME_HELLO:
                raise ProtocolError(f"expected hello, got {kind}")
            try:
                worker = protocol.check_hello(payload)
            except ProtocolError as exc:
                # version mismatch / bad hello: refused explicitly, with
                # the reason on the wire, before any run is leased
                conn.send(protocol.FRAME_ERROR, {"error": str(exc), "fatal": True})
                return
            conn.send(
                protocol.FRAME_HELLO,
                {
                    "version": protocol.PROTOCOL_VERSION,
                    "stale_after": self.stale_after,
                },
            )
            with self._lock:
                self._seen_workers.add(worker)
                self._active_workers[worker] += 1
            clean_goodbye = self._serve_worker(conn, worker)
        except (ProtocolError, OSError):
            pass  # kill this connection only; the coordinator lives on
        finally:
            with self._lock:
                self._conns.discard(conn)
                if worker is not None:
                    self._active_workers[worker] -= 1
                    dropped = self._leases.release_owner(worker)
                    for lease in dropped:
                        self._requeue_locked(lease.task_id)
                    if not clean_goodbye and not self._closing:
                        self._stats.workers_lost += 1
            conn.close()

    def _serve_worker(self, conn: FrameConnection, worker: str) -> bool:
        """Serve one identified worker; True iff it said goodbye cleanly."""
        while True:
            frame = conn.recv()
            if frame is None:
                return False  # EOF without close: crashed / killed
            kind, payload = frame
            now = time.monotonic()
            with self._lock:
                # any frame is proof of life for every lease this worker
                # holds, stamped with *our* clock at arrival
                self._leases.touch_owner(worker, now)
            if kind == protocol.FRAME_HEARTBEAT:
                continue  # never replied to (the beat thread shares the socket)
            if kind == protocol.FRAME_DRAIN:
                self._handle_drain(conn, worker, now)
            elif kind == protocol.FRAME_RESULT:
                self._handle_result(conn, payload)
            elif kind == protocol.FRAME_ERROR:
                self._handle_error(conn, payload)
            elif kind == protocol.FRAME_CLOSE:
                return True  # voluntary detach (not churn)
            else:
                raise ProtocolError(f"unexpected {kind} frame from worker")

    def _handle_drain(self, conn: FrameConnection, worker: str, now: float) -> None:
        with self._lock:
            task_id = None
            while self._queue:
                candidate = self._queue.popleft()
                if candidate in self._tasks:  # skip ids finished meanwhile
                    task_id = candidate
                    break
            if task_id is not None:
                self._leases.claim(task_id, worker, now)
                run = self._tasks[task_id]
                reply = (
                    protocol.FRAME_LEASE,
                    {"task_id": task_id, "run": protocol.encode_run(run)},
                )
            elif self._closing:
                reply = (protocol.FRAME_CLOSE, {})
            else:
                # nothing leasable right now -- outstanding work may still
                # come back via reclaim, and adaptive sweeps submit more
                # rounds, so the worker stays attached and retries
                reply = (protocol.FRAME_DRAIN, {"outstanding": len(self._tasks)})
        conn.send(*reply)

    def _handle_result(self, conn: FrameConnection, payload: Dict[str, Any]) -> None:
        task_id = payload.get("task_id")
        with self._done:  # the condition wraps self._lock
            if isinstance(task_id, str) and task_id in self._tasks:
                result = protocol.decode_result(payload.get("result") or {})
                self._completed[task_id] = result
                del self._tasks[task_id]
                self._leases.release(task_id)
                if task_id in self._reclaimed:
                    self._stats.runs_reexecuted += 1
                self._done.notify_all()
            # else: a dispossessed worker finished a run someone else
            # already completed -- drop it (exactly-once recording)
        conn.send(protocol.FRAME_RESULT, {"task_id": task_id})

    def _handle_error(self, conn: FrameConnection, payload: Dict[str, Any]) -> None:
        task_id = payload.get("task_id")
        with self._done:
            if isinstance(task_id, str) and task_id in self._tasks:
                self._failed[task_id] = {
                    "run_id": str(payload.get("run_id", task_id)),
                    "error": str(payload.get("error", "unknown error")),
                }
                del self._tasks[task_id]
                self._leases.release(task_id)
                self._done.notify_all()
        conn.send(protocol.FRAME_ERROR, {"task_id": task_id})


@register_executor("tcp")
class TcpExecutor(Executor):
    """Networked coordinator/worker execution over TCP (no shared mount).

    The driver listens on ``host:port`` (``--host``/``--port``); workers
    on any reachable machine attach with ``python -m repro.experiments
    worker --connect HOST:PORT`` and may come and go mid-sweep --
    disconnect and silence both trigger lease reclaim, so churn costs a
    re-execution, never a lost or double-recorded run.  ``--workers N``
    spawns N local workers as subprocesses (``0`` relies entirely on
    external ones).  Results stream back over the socket and are
    recorded into the driver's result store; workers never see the store
    spec.  Like every backend the choice is sweep-cosmetic: artifacts
    are byte-identical to serial/process/thread/queue, and a warm cache
    replays with zero executions (the coordinator never even binds).
    """

    name = "tcp"

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        poll_interval: float = 0.2,
        stale_after: float = DEFAULT_STALE_AFTER,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
    ) -> None:
        if poll_interval <= 0:
            raise ValueError(f"tcp poll_interval must be > 0, got {poll_interval!r}")
        if stale_after <= 0:
            raise ValueError(f"tcp stale_after must be > 0, got {stale_after!r}")
        if not 0 <= int(port) <= 65535:
            raise ValueError(f"tcp port must be in [0, 65535], got {port!r}")
        self.poll_interval = poll_interval
        self.coordinator = Coordinator(
            host=host, port=int(port), stale_after=stale_after, max_payload=max_payload
        )
        self._procs: List[subprocess.Popen] = []

    def describe(self, workers: int) -> str:
        suffix = f"[tcp {self.coordinator.host}:{self.coordinator.port}]"
        if workers <= 0:
            return f"external worker(s) {suffix}"
        return f"{workers} worker(s) {suffix}"

    def stats(self) -> Optional[ExecutorStats]:
        return self.coordinator.stats()

    def start(self) -> int:
        """Bind the coordinator now (tests use port 0 to learn the port)."""
        return self.coordinator.start()

    def _spawn_local_workers(self, workers: int, progress: bool) -> None:
        if self._procs or workers <= 0:
            return
        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "worker",
            "--connect",
            f"127.0.0.1:{self.coordinator.port}",
            "--poll-interval",
            str(self.poll_interval),
        ]
        if not progress:
            command.append("--quiet")
        for _ in range(workers):
            self._procs.append(subprocess.Popen(command, env=env))

    def map_runs(self, pending, execute, record, fail, *, workers, label, progress,
                 fresh=False):
        # fresh needs no special handling: unlike the queue, tcp has no
        # backend-local result store to discard from
        del execute, fresh
        self.coordinator.start()
        by_task: Dict[str, List[tuple]] = {}
        for key, run in pending:
            by_task.setdefault(run.cache_key(), []).append((key, run))
        for task_id, entries in by_task.items():
            self.coordinator.submit(task_id, entries[0][1])
        self._spawn_local_workers(workers, progress)

        import copy

        outstanding = set(by_task)
        last_wait_note = time.monotonic()
        while outstanding:
            results, errors = self.coordinator.drain(timeout=self.poll_interval)
            progressed = False
            for task_id in sorted(results):
                if task_id not in outstanding:
                    continue
                result = results[task_id]
                result.from_cache = False
                for index, (key, run) in enumerate(by_task[task_id]):
                    entry = result if index == 0 else copy.deepcopy(result)
                    # several pending runs may share this cache key but
                    # differ in run_id/params; stamp each entry's own
                    entry.run_id = run.run_id
                    entry.params = dict(run.params)
                    try:
                        record(key, entry)
                    except Exception as exc:
                        fail(run, exc)
                outstanding.discard(task_id)
                progressed = True
            for task_id in sorted(errors):
                if task_id not in outstanding:
                    continue
                error = errors[task_id]
                exc = WorkerTaskError(
                    f"leased run {error.get('run_id', task_id)} failed on a "
                    f"worker: {error.get('error', 'unknown error')}"
                )
                for key, run in by_task[task_id]:
                    fail(run, exc)
                outstanding.discard(task_id)
                progressed = True
            self.coordinator.reclaim_stale()
            if not outstanding or progressed:
                last_wait_note = time.monotonic()
                continue
            if time.monotonic() - last_wait_note >= 10.0:
                _total, leased, connected = self.coordinator.status()
                _log(
                    progress,
                    f"[{label}] tcp {self.coordinator.address}: waiting on "
                    f"{len(outstanding)} run(s) ({leased} leased, {connected} "
                    "worker(s) connected); attach workers with `python -m "
                    f"repro.experiments worker --connect {self.coordinator.address}`",
                )
                last_wait_note = time.monotonic()
            if (
                self._procs
                and all(proc.poll() is not None for proc in self._procs)
                and self.coordinator.worker_count() == 0
            ):
                codes = [proc.returncode for proc in self._procs]
                exc = WorkerTaskError(
                    f"all {len(self._procs)} local tcp worker(s) exited "
                    f"(exit codes {codes}) with {len(outstanding)} run(s) "
                    "outstanding and no external workers connected; "
                    "completed runs are cached -- a re-run resumes from them"
                )
                for task_id in sorted(outstanding):
                    for key, run in by_task[task_id]:
                        fail(run, exc)
                return

    def close(self) -> None:
        self.coordinator.close(grace=max(10 * self.poll_interval, 5.0))
        deadline = time.monotonic() + max(10 * self.poll_interval, 5.0)
        for proc in self._procs:
            try:
                proc.wait(timeout=max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:  # pragma: no cover - slow worker
                proc.terminate()
                proc.wait()
        self._procs = []
