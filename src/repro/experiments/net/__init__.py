"""Networked sweep execution: the ``tcp`` coordinator/worker subsystem.

The :mod:`repro.experiments.executors` queue backend scales a sweep
across every process that can mount one directory; this package scales
it across every machine the driver can reach over TCP, speaking the same
lease/heartbeat/stale-reclaim state machine
(:mod:`repro.experiments.leases`) over sockets instead of claim files:

* :mod:`repro.experiments.net.protocol` -- the wire format:
  length-prefixed, versioned JSON frames
  (hello/lease/heartbeat/result/error/drain/close) with payload caps and
  malformed-frame rejection that kills a connection, never the
  coordinator;
* :mod:`repro.experiments.net.coordinator` -- the driver side:
  :class:`Coordinator` leases pending runs to connected workers, judges
  lease staleness on its own monotonic clock from last-message-received,
  reclaims on disconnect or silence, and collects streamed results;
  :class:`TcpExecutor` registers it as the ``tcp`` executor backend;
* :mod:`repro.experiments.net.worker` -- the remote side:
  :func:`run_net_worker` behind ``python -m repro.experiments worker
  --connect HOST:PORT``, executing leased runs with a background
  heartbeat thread and reconnecting with jittered exponential backoff.

See ``docs/networked-executor.md`` for the frame reference, the lease
lifecycle and deployment recipes.
"""

from repro.experiments.net.coordinator import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    Coordinator,
    TcpExecutor,
)
from repro.experiments.net.protocol import (
    DEFAULT_MAX_PAYLOAD,
    PROTOCOL_VERSION,
    FrameConnection,
    ProtocolError,
)
from repro.experiments.net.worker import NetWorkerError, parse_address, run_net_worker

__all__ = [
    "Coordinator",
    "DEFAULT_HOST",
    "DEFAULT_MAX_PAYLOAD",
    "DEFAULT_PORT",
    "FrameConnection",
    "NetWorkerError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "TcpExecutor",
    "parse_address",
    "run_net_worker",
]
