"""Wire protocol for the networked (``tcp``) executor.

Everything the coordinator and remote workers exchange travels as
length-prefixed *frames* on one TCP connection per worker:

.. code-block:: text

   +----------------+--------+------------------------+
   | payload length | type   | payload (JSON, UTF-8)  |
   | 4 bytes, BE    | 1 byte | ``length`` bytes       |
   +----------------+--------+------------------------+

Seven frame kinds cover the whole lease protocol -- ``hello`` (version
negotiation, replied with ``hello`` or a fatal ``error``), ``lease``
(coordinator hands a run to a worker), ``heartbeat`` (worker liveness
while executing; never replied to, so a background thread can emit them
without interleaving replies), ``result`` / ``error`` (a finished or
failed run, acked by echoing the kind), ``drain`` (worker asks for work;
an idle coordinator echoes ``drain`` back meaning "nothing leasable
right now, retry") and ``close`` (coordinator: sweep over, detach;
worker: voluntary goodbye).

Safety properties enforced here rather than in callers:

* **version negotiation** -- every ``hello`` carries
  :data:`PROTOCOL_VERSION`; a mismatch is refused with a fatal ``error``
  frame before any run is leased;
* **payload caps** -- frames above ``max_payload`` (default
  :data:`DEFAULT_MAX_PAYLOAD`) are refused on send and on receive, so a
  corrupt length prefix cannot make the coordinator allocate gigabytes;
* **malformed-frame rejection** -- garbage bytes, unknown frame types,
  truncated frames and invalid JSON raise :class:`ProtocolError`, which
  kills that one connection, never the coordinator.

Results cross the wire via the existing
:meth:`~repro.experiments.orchestrator.RunResult.to_dict` /
``from_dict`` round-trip -- the same serialization every result store
uses -- so artifacts from a ``tcp`` sweep stay byte-identical to every
other executor.  Leased :class:`~repro.experiments.orchestrator.RunSpec`
payloads travel as base64-wrapped pickles (both ends run this codebase).
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import threading
from typing import Any, BinaryIO, Dict, Mapping, Optional, Tuple

#: the one protocol version this build speaks; both ends must match
PROTOCOL_VERSION = 1

#: refuse frames larger than this (a RunResult is a few KiB; 8 MiB
#: leaves room for metric-heavy collectors without letting a corrupt
#: length prefix trigger a giant allocation)
DEFAULT_MAX_PAYLOAD = 8 * 1024 * 1024

_HEADER = struct.Struct(">IB")  # payload length, frame type

#: frame kind <-> wire byte
FRAME_HELLO = "hello"
FRAME_LEASE = "lease"
FRAME_HEARTBEAT = "heartbeat"
FRAME_RESULT = "result"
FRAME_ERROR = "error"
FRAME_DRAIN = "drain"
FRAME_CLOSE = "close"

_KIND_TO_BYTE = {
    FRAME_HELLO: 1,
    FRAME_LEASE: 2,
    FRAME_HEARTBEAT: 3,
    FRAME_RESULT: 4,
    FRAME_ERROR: 5,
    FRAME_DRAIN: 6,
    FRAME_CLOSE: 7,
}
_BYTE_TO_KIND = {code: kind for kind, code in _KIND_TO_BYTE.items()}


class ProtocolError(RuntimeError):
    """A malformed, oversized or out-of-spec frame.

    Raising this is always a connection-level event: the peer that
    produced the bad bytes loses its connection (and its leases go back
    to the pool), while the coordinator keeps serving everyone else.
    """


def pack_frame(
    kind: str,
    payload: Optional[Mapping[str, Any]] = None,
    *,
    max_payload: int = DEFAULT_MAX_PAYLOAD,
) -> bytes:
    """Serialize one frame; :class:`ProtocolError` on unknown kind/oversize."""
    code = _KIND_TO_BYTE.get(kind)
    if code is None:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    # insertion order is preserved, never sorted: a RunResult's metrics
    # dict order is what artifact exporters derive CSV columns from, and
    # byte-identical artifacts across executors is a hard invariant
    body = json.dumps(dict(payload or {}), separators=(",", ":")).encode("utf-8")
    if len(body) > max_payload:
        raise ProtocolError(
            f"{kind} frame payload is {len(body)} bytes (cap {max_payload})"
        )
    return _HEADER.pack(len(body), code) + body


def _read_exact(reader: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes; b"" only at a clean frame boundary EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = reader.read(remaining)
        if not chunk:
            if remaining == n and not chunks:
                return b""
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(
    reader: BinaryIO, *, max_payload: int = DEFAULT_MAX_PAYLOAD
) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Any other shortfall -- truncated header/payload, a length above
    ``max_payload``, an unknown type byte, non-JSON payload -- raises
    :class:`ProtocolError`.
    """
    header = _read_exact(reader, _HEADER.size)
    if not header:
        return None
    length, code = _HEADER.unpack(header)
    if length > max_payload:
        raise ProtocolError(f"frame payload of {length} bytes exceeds cap {max_payload}")
    kind = _BYTE_TO_KIND.get(code)
    if kind is None:
        raise ProtocolError(f"unknown frame type byte {code}")
    body = _read_exact(reader, length) if length else b""
    if length and len(body) != length:
        raise ProtocolError("connection closed mid-frame")
    try:
        payload = json.loads(body.decode("utf-8")) if length else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return kind, payload


class FrameConnection:
    """One end of a framed connection: locked sends, buffered receives.

    The send lock is what lets a worker's background heartbeat thread
    share the socket with the main execute loop -- frames never
    interleave mid-write.  Receives are single-threaded by construction
    (each end has exactly one reader loop).
    """

    def __init__(self, sock: socket.socket, *, max_payload: int = DEFAULT_MAX_PAYLOAD):
        self.sock = sock
        self.max_payload = max_payload
        self._reader = sock.makefile("rb")
        self._send_lock = threading.Lock()

    def send(self, kind: str, payload: Optional[Mapping[str, Any]] = None) -> None:
        frame = pack_frame(kind, payload, max_payload=self.max_payload)
        with self._send_lock:
            self.sock.sendall(frame)

    def recv(self) -> Optional[Tuple[str, Dict[str, Any]]]:
        return recv_frame(self._reader, max_payload=self.max_payload)

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


def hello_payload(worker_id: str) -> Dict[str, Any]:
    """The worker's opening frame: who it is and what it speaks."""
    return {"version": PROTOCOL_VERSION, "worker": worker_id}


def check_hello(payload: Mapping[str, Any]) -> str:
    """Validate a worker ``hello``; returns the worker id.

    A version mismatch raises :class:`ProtocolError` -- the coordinator
    reports it back as a fatal ``error`` frame and drops the connection
    before leasing anything.
    """
    version = payload.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: coordinator speaks {PROTOCOL_VERSION}, "
            f"worker speaks {version!r}"
        )
    worker = payload.get("worker")
    if not isinstance(worker, str) or not worker:
        raise ProtocolError("hello frame carries no worker id")
    return worker


def encode_run(run: Any) -> str:
    """A ``RunSpec`` as it travels inside a ``lease`` frame."""
    return base64.b64encode(pickle.dumps(run)).decode("ascii")


def decode_run(text: str) -> Any:
    """Inverse of :func:`encode_run`; :class:`ProtocolError` on garbage."""
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:  # pickle raises wildly varied types
        raise ProtocolError(f"lease frame carries an undecodable run: {exc}") from exc


def encode_result(result: Any) -> Dict[str, Any]:
    """A ``RunResult`` as it travels inside a ``result`` frame -- the
    same ``to_dict`` round-trip the result stores use, which is what
    keeps tcp artifacts byte-identical to every other executor."""
    return result.to_dict()


def decode_result(payload: Mapping[str, Any]) -> Any:
    """Inverse of :func:`encode_result`."""
    from repro.experiments.orchestrator import RunResult

    try:
        return RunResult.from_dict(dict(payload))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"result frame carries an undecodable result: {exc}") from exc
