"""Named, declarative sweep specifications.

Every experiment the repo ships -- the benchmark grids regenerating the
paper's figures, the example scenarios, the smoke sweep -- is defined
here as a :class:`~repro.experiments.orchestrator.SweepSpec` and
registered under a stable name.  The ``python -m repro.experiments`` CLI,
the ``benchmarks/bench_*.py`` files and the ``examples/`` scripts all
pull their configuration from this registry, so a scenario grid is
defined exactly once.

Look specs up with :func:`get_spec`, enumerate them with
:func:`available_specs`, add new ones with :func:`register_spec`::

    from repro.experiments import get_spec, run_sweep

    results = run_sweep(get_spec("e2_scalability"), workers=4)
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List

from repro.baselines.dsm import DsmConfig
from repro.core.membership import BroadcasterCriterion
from repro.core.protocol import HVDBConfig, HVDBParameters, HVDBStack
from repro.core.qos import QoSRequirement, qos_satisfaction_ratio
from repro.experiments.orchestrator import (
    AdaptiveCI,
    SweepSpec,
    register_collector,
    register_hook,
)
from repro.experiments.scenarios import PROTOCOLS, ScenarioConfig
from repro.metrics.availability import compute_availability

SPECS: Dict[str, SweepSpec] = {}


def register_spec(spec: SweepSpec) -> SweepSpec:
    """Add ``spec`` to the registry (replacing any same-named spec)."""
    SPECS[spec.name] = spec
    return spec


def get_spec(name: str) -> SweepSpec:
    """Look up a registered spec by name."""
    if name not in SPECS:
        raise KeyError(f"unknown sweep {name!r}; known sweeps: {', '.join(sorted(SPECS))}")
    return SPECS[name]


def available_specs() -> List[SweepSpec]:
    """All registered specs, sorted by name."""
    return [SPECS[name] for name in sorted(SPECS)]


# ---------------------------------------------------------------------------
# Collectors (run inside the worker, with access to the live scenario)
# ---------------------------------------------------------------------------

#: end-to-end delay bound used by the QoS experiments (paper Section 4.1)
QOS_DELAY_BOUND = QoSRequirement(max_delay=0.25)


@register_collector("qos_satisfaction_250ms")
def _qos_satisfaction(result) -> Dict[str, float]:
    """Fraction of deliveries meeting the 250 ms bound (experiment E7)."""
    network = result.scenario.network
    delays = [d for record in network.deliveries.values() for d in record.delays()]
    return {"qos_satisfaction": qos_satisfaction_ratio(delays, QOS_DELAY_BOUND)}


#: default run length of the availability experiment (the failure hook
#: fires at the midpoint of whatever duration actually runs)
E5_DURATION = 120.0

#: fractions of the cluster-head population the E5 grid destroys mid-run
E5_FAIL_FRACTIONS = (0.1, 0.2, 0.4)


def _make_ch_failure_hook(fraction: float):
    def fail_cluster_heads(scenario) -> None:
        # backbone protocols lose cluster heads (possibly none, if the
        # backbone is transiently empty); backbone-less ones lose the
        # same fraction of arbitrary nodes
        backbone = scenario.backbone_nodes()
        pool = backbone if backbone is not None else sorted(scenario.network.nodes.keys())
        if not pool:
            return
        count = max(1, int(fraction * len(pool)))
        victims = pool[:: max(1, len(pool) // count)][:count]
        scenario.network.fail_nodes(victims)

    return fail_cluster_heads


def e5_failure_hook_name(fraction: float) -> str:
    """Registered ``during_run`` hook killing ``fraction`` of the CHs."""
    return f"fail_cluster_heads_{int(round(fraction * 100))}"


for _fraction in E5_FAIL_FRACTIONS:
    register_hook(e5_failure_hook_name(_fraction))(_make_ch_failure_hook(_fraction))


@register_collector("availability_mid_run_failure")
def _availability(result) -> Dict[str, float]:
    """Delivery before/during/after the mid-run failure (experiment E5).

    Needs the live delivery ledger, so it runs inside the worker.  The
    windows anchor on the *actual* run duration (``during_run`` hooks
    fire at its midpoint), so ``--duration`` overrides stay correct.  A
    never-recovered run reports ``recovered=0`` with ``recovery_s=-1``
    (keeping every metric a finite scalar for JSON/CSV artifacts).
    """
    availability = compute_availability(
        result.scenario.network,
        failure_time=result.report.duration / 2.0,
        failure_duration=20.0,
        window=10.0,
    )
    recovered = math.isfinite(availability.recovery_time)
    return {
        "pdr_before": availability.pre_failure_ratio,
        "pdr_during": availability.during_failure_ratio,
        "pdr_after": availability.post_failure_ratio,
        "availability": availability.availability,
        "recovered": 1.0 if recovered else 0.0,
        "recovery_s": availability.recovery_time if recovered else -1.0,
    }


#: group-churn rates (membership changes per second) the E8 grids drive
E8_CHURN_RATES = (0.0, 0.05, 0.1, 0.2)


def _make_churn_hook(rate: float):
    def start_group_churn(scenario) -> None:
        if rate > 0:
            scenario.groups.start_churn(1, rate=rate, min_members=3)

    return start_group_churn


def e8_churn_hook_name(rate: float) -> str:
    """Registered ``before_run`` hook driving ``rate`` changes/second."""
    return f"group_churn_{rate:g}"


for _rate in E8_CHURN_RATES:
    register_hook(e8_churn_hook_name(_rate))(_make_churn_hook(_rate))


@register_collector("membership_change_count")
def _membership_changes(result) -> Dict[str, float]:
    """Join/leave events beyond the initial memberships (experiment E8)."""
    config = result.config
    initial = config.n_groups * min(config.group_size, config.n_nodes)
    return {
        "membership_changes": max(0, len(result.scenario.groups.history) - initial)
    }


@register_collector("hypercube_structure")
def _hypercube_structure(result) -> Dict[str, float]:
    """Backbone-shape figures from the live HVDB model (experiment A1)."""
    stack = result.scenario.stack
    if not isinstance(stack, HVDBStack):
        return {}
    summary = stack.model.backbone_summary()
    return {"possible_hypercubes": int(summary["possible_hypercubes"])}


# ---------------------------------------------------------------------------
# Smoke / example sweeps
# ---------------------------------------------------------------------------

register_spec(
    SweepSpec(
        name="smoke",
        description="Tiny 2-axis sweep (seconds to run); exercises the whole "
        "orchestrator path: grid expansion, workers, cache, export.",
        base=ScenarioConfig(
            protocol="flooding",
            area_size=700.0,
            radio_range=250.0,
            max_speed=2.0,
            traffic_start=5.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [15, 25], "group_size": [4, 6]},
        seeds=(1, 2, 3),
        duration=20.0,
    )
)

register_spec(
    SweepSpec(
        name="smoke_adaptive",
        description="Adaptive-replication smoke: the tiny flooding grid under "
        "an AdaptiveCI policy with a loose target, so the sequential-sampling "
        "loop (expand rounds, per-point stopping, cache replay) runs in "
        "seconds in CI.",
        base=ScenarioConfig(
            protocol="flooding",
            area_size=700.0,
            radio_range=250.0,
            max_speed=2.0,
            traffic_start=5.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [15, 25]},
        seeds=(1, 2),
        duration=15.0,
        replication=AdaptiveCI(
            target_half_width=0.25, metric="pdr", min_seeds=2, max_seeds=4, batch=1
        ),
    )
)

register_spec(
    SweepSpec(
        name="quickstart",
        description="The quickstart scenario: HVDB on a 100-node random-waypoint "
        "MANET, one multicast group (examples/quickstart.py).",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=100,
            area_size=1500.0,
            radio_range=250.0,
            max_speed=5.0,
            n_groups=1,
            group_size=10,
            traffic_interval=1.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        ),
        grid={},
        seeds=(7,),
        duration=120.0,
    )
)

register_spec(
    SweepSpec(
        name="protocol_comparison",
        description="HVDB vs. flooding, SGM, DSM and SPBM on one 100-node "
        "workload (examples/protocol_comparison.py).",
        base=ScenarioConfig(
            n_nodes=100,
            area_size=1500.0,
            radio_range=250.0,
            max_speed=4.0,
            n_groups=1,
            group_size=12,
            traffic_interval=1.0,
            traffic_start=30.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
            dsm=DsmConfig(position_period=15.0),
        ),
        grid={"protocol": list(PROTOCOLS)},
        seeds=(31,),
        duration=120.0,
    )
)


# ---------------------------------------------------------------------------
# Benchmark grids (the paper's evaluation figures)
# ---------------------------------------------------------------------------

#: constant-density scaling used by E2: m^2 of area per node
E2_AREA_PER_NODE = 150.0 * 150.0


def _e2_axis(n_nodes: int) -> Dict[str, float]:
    """Couple the area to the node count so density stays constant."""
    return {
        "n_nodes": n_nodes,
        "area_size": math.sqrt(n_nodes * E2_AREA_PER_NODE),
        "group_size": max(8, n_nodes // 10),
    }


register_spec(
    SweepSpec(
        name="e2_scalability",
        description="E2: delivery ratio and per-packet cost vs. network size "
        "at constant density (HVDB / flooding / SGM).",
        base=ScenarioConfig(
            radio_range=250.0,
            max_speed=4.0,
            traffic_interval=1.0,
            traffic_start=30.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        ),
        grid={
            "n_nodes": [_e2_axis(n) for n in (60, 120, 200)],
            "protocol": ["hvdb", "flooding", "sgm"],
        },
        seeds=(7,),
        duration=90.0,
    )
)

# derived from e2_scalability (same base and grid, by construction) so
# the fixed and adaptive variants cannot drift apart
register_spec(
    dataclasses.replace(
        get_spec("e2_scalability"),
        name="e2_scalability_adaptive",
        description="E2 under adaptive replication: per-seed delivery "
        "spreads as the constant-density network grows to 200 nodes, so "
        "each (size, protocol) point gets seeds until the delivery-ratio "
        "95% CI half-width drops to 0.05 (max 10 seeds/point).",
        seeds=(7, 8, 9),
        replication=AdaptiveCI(
            target_half_width=0.05, metric="pdr", min_seeds=3, max_seeds=10, batch=2
        ),
    )
)

register_spec(
    SweepSpec(
        name="e3_membership_overhead",
        description="E3: control overhead of summary-based membership vs. DSM "
        "and SPBM, as a function of network size and group count.",
        base=ScenarioConfig(
            area_size=1500.0,
            radio_range=250.0,
            max_speed=3.0,
            group_size=8,
            traffic_interval=2.0,
            traffic_start=40.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
            dsm=DsmConfig(position_period=15.0),
        ),
        grid={
            "n_nodes": [60, 120],
            "n_groups": [1, 4],
            "protocol": ["hvdb", "spbm", "dsm"],
        },
        seeds=(13,),
        duration=80.0,
    )
)

# derived from e3_membership_overhead (same base, grid and protocols, by
# construction).  Registered as e3_membership_adaptive: the overhead
# figures are ratios over achieved deliveries, so the stopping rule
# replicates until *delivery* is pinned down -- the per-delivery
# overhead columns inherit the stability.
register_spec(
    dataclasses.replace(
        get_spec("e3_membership_overhead"),
        name="e3_membership_adaptive",
        description="E3 under adaptive replication: membership-overhead "
        "ratios are normalised by achieved deliveries, so each (size, "
        "groups, protocol) point gets seeds until the delivery-ratio 95% "
        "CI half-width drops to 0.05 (max 10 seeds/point).",
        seeds=(13, 14, 15),
        replication=AdaptiveCI(
            target_half_width=0.05, metric="pdr", min_seeds=3, max_seeds=10, batch=2
        ),
    )
)

register_spec(
    SweepSpec(
        name="e6_mobility",
        description="E6: delivery and cluster-head churn vs. maximum node "
        "speed (random waypoint), HVDB vs. flooding.",
        base=ScenarioConfig(
            n_nodes=100,
            area_size=1400.0,
            radio_range=250.0,
            pause_time=2.0,
            group_size=10,
            traffic_interval=1.0,
            traffic_start=30.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        ),
        grid={
            "protocol": ["hvdb", "flooding"],
            "max_speed": [0.0, 5.0, 10.0, 20.0],
        },
        seeds=(37,),
        duration=90.0,
    )
)

# derived from e6_mobility (same base and grid, by construction) so the
# fixed and adaptive variants cannot drift apart
register_spec(
    dataclasses.replace(
        get_spec("e6_mobility"),
        name="e6_mobility_adaptive",
        description="E6 under adaptive replication: the mobility grid is the "
        "noisiest in the evaluation (CH churn at 10-20 m/s), so seeds are "
        "added per grid point until the delivery-ratio 95% CI half-width "
        "drops to 0.05 (max 10 seeds/point).",
        seeds=(37, 38, 39),
        replication=AdaptiveCI(
            target_half_width=0.05, metric="pdr", min_seeds=3, max_seeds=10, batch=2
        ),
    )
)

register_spec(
    SweepSpec(
        name="e5_availability",
        description="E5: delivery before/during/after destroying a growing "
        "fraction of the cluster heads mid-run (HVDB vs. flooding).",
        base=ScenarioConfig(
            n_nodes=110,
            area_size=1500.0,
            radio_range=270.0,
            max_speed=2.0,
            group_size=12,
            traffic_interval=0.5,
            traffic_start=25.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        ),
        grid={
            "protocol": ["hvdb", "flooding"],
            "during_run": [e5_failure_hook_name(f) for f in E5_FAIL_FRACTIONS],
        },
        seeds=(29,),
        duration=E5_DURATION,
        collector="availability_mid_run_failure",
    )
)

# derived from e5_availability (same base, grid and collector, by
# construction).  Availability is the most seed-sensitive figure in the
# evaluation -- which fraction of a random backbone the failure hook
# destroys, and how the survivors reconverge, swings run to run -- so
# seeds are added per (protocol, failure-fraction) point until the
# availability 95% CI half-width reaches 0.05.  The variance-aware
# growth factor doubles a point's batch while it is still far (>2x)
# from the target, so catastrophically noisy points reach their seed
# budget in a few rounds.
register_spec(
    dataclasses.replace(
        get_spec("e5_availability"),
        name="e5_availability_adaptive",
        description="E5 under adaptive replication: mid-run cluster-head "
        "destruction makes availability highly seed-sensitive, so each "
        "(protocol, failure-fraction) point gets seeds until the "
        "availability 95% CI half-width drops to 0.05 (max 10 seeds/point, "
        "variance-aware batch growth).",
        seeds=(29, 30, 31),
        replication=AdaptiveCI(
            target_half_width=0.05,
            metric="availability",
            min_seeds=3,
            max_seeds=10,
            batch=2,
            growth=2.0,
        ),
    )
)

#: shared base of the two E8 grids (membership under group churn)
_E8_BASE = ScenarioConfig(
    protocol="hvdb",
    n_nodes=90,
    area_size=1400.0,
    radio_range=260.0,
    max_speed=2.0,
    group_size=10,
    traffic_interval=1.0,
    traffic_start=30.0,
    hvdb=HVDBConfig(
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        params=HVDBParameters(
            broadcaster_criterion=BroadcasterCriterion.NEIGHBORHOOD_MEMBERS
        ),
    ),
)

register_spec(
    SweepSpec(
        name="e8_churn",
        description="E8a: delivery and membership-control overhead vs. group "
        "churn rate (joins/leaves during the run).",
        base=_E8_BASE,
        grid={
            "before_run": [e8_churn_hook_name(r) for r in (0.0, 0.05, 0.2)],
        },
        seeds=(43,),
        duration=100.0,
        collector="membership_change_count",
    )
)

# derived from e8_churn (same base, grid and collector, by construction)
register_spec(
    dataclasses.replace(
        get_spec("e8_churn"),
        name="e8_churn_adaptive",
        description="E8a under adaptive replication: group churn makes "
        "per-seed delivery highly variable, so each churn rate gets seeds "
        "until the delivery-ratio 95% CI half-width reaches 0.04 (max 12 "
        "seeds/point) instead of a one-size seed list.",
        seeds=(43, 44, 45),
        replication=AdaptiveCI(
            target_half_width=0.04, metric="pdr", min_seeds=3, max_seeds=12, batch=3
        ),
    )
)

register_spec(
    SweepSpec(
        name="e8_criteria",
        description="E8b: designated-broadcaster criteria of Section 4.2 "
        "compared under 0.1/s group churn.",
        base=_E8_BASE,
        grid={
            "criterion": [
                {
                    "criterion": criterion.value,
                    "hvdb.params": HVDBParameters(broadcaster_criterion=criterion),
                }
                for criterion in BroadcasterCriterion
            ],
        },
        seeds=(43,),
        duration=100.0,
        before_run=e8_churn_hook_name(0.1),
    )
)

register_spec(
    SweepSpec(
        name="a1_dimension",
        description="A1: hypercube-dimension ablation on a fixed physical "
        "network (mesh- vs. cube-tier forwarding trade-off).",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=110,
            area_size=1500.0,
            radio_range=250.0,
            max_speed=3.0,
            group_size=12,
            traffic_interval=1.0,
            traffic_start=30.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8),
        ),
        grid={"hvdb.dimension": [2, 3, 4, 6]},
        seeds=(47,),
        duration=90.0,
        collector="hypercube_structure",
    )
)

# derived from a1_dimension (same base, grid and collector, by
# construction) so the fixed and adaptive variants cannot drift apart
register_spec(
    dataclasses.replace(
        get_spec("a1_dimension"),
        name="a1_dimension_adaptive",
        description="A1 under adaptive replication: the mesh-vs-cube "
        "forwarding trade-off moves delivery seed to seed, so each "
        "hypercube dimension gets seeds until the delivery-ratio 95% CI "
        "half-width drops to 0.05 (max 10 seeds/point).",
        seeds=(47, 48, 49),
        replication=AdaptiveCI(
            target_half_width=0.05, metric="pdr", min_seeds=3, max_seeds=10, batch=2
        ),
    )
)

#: A2's proactive-maintenance variants: timer rates and route horizons
A2_VARIANTS = {
    "fast (1.5x rate)": HVDBParameters(
        local_membership_period=2.0,
        mnt_summary_period=4.0,
        ht_summary_period=8.0,
        route_beacon_period=2.0,
    ),
    "default": HVDBParameters(),
    "slow (0.5x rate)": HVDBParameters(
        local_membership_period=6.0,
        mnt_summary_period=12.0,
        ht_summary_period=24.0,
        route_beacon_period=6.0,
    ),
    "k=2 horizon": HVDBParameters(max_logical_hops=2),
    "k=6 horizon": HVDBParameters(max_logical_hops=6),
}

register_spec(
    SweepSpec(
        name="a2_maintenance",
        description="A2: proactive-maintenance intensity ablation "
        "(beacon/summary timer rates and local-route horizon k).",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=100,
            area_size=1400.0,
            radio_range=250.0,
            max_speed=4.0,
            group_size=10,
            traffic_interval=1.0,
            traffic_start=30.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        ),
        grid={
            "variant": [
                {"variant": name, "hvdb.params": params}
                for name, params in A2_VARIANTS.items()
            ],
        },
        seeds=(53,),
        duration=90.0,
    )
)

# derived from a2_maintenance (same base and variant grid, by
# construction) so the fixed and adaptive variants cannot drift apart
register_spec(
    dataclasses.replace(
        get_spec("a2_maintenance"),
        name="a2_maintenance_adaptive",
        description="A2 under adaptive replication: each maintenance "
        "variant (timer rates, route horizon) gets seeds until the "
        "delivery-ratio 95% CI half-width drops to 0.05 (max 10 "
        "seeds/point).",
        seeds=(53, 54, 55),
        replication=AdaptiveCI(
            target_half_width=0.05, metric="pdr", min_seeds=3, max_seeds=10, batch=2
        ),
    )
)

register_spec(
    SweepSpec(
        name="e7_qos_load",
        description="E7: fraction of deliveries meeting a 250 ms delay bound "
        "as the number of concurrent CBR sessions grows.",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=100,
            area_size=1400.0,
            radio_range=250.0,
            max_speed=3.0,
            n_groups=1,
            group_size=10,
            traffic_interval=0.5,
            traffic_start=30.0,
            hvdb=HVDBConfig(
                vc_cols=8,
                vc_rows=8,
                dimension=4,
                qos_requirements={1: QOS_DELAY_BOUND},
            ),
        ),
        grid={"sources_per_group": [1, 3, 6, 10]},
        seeds=(41,),
        duration=90.0,
        collector="qos_satisfaction_250ms",
    )
)

# derived from e7_qos_load (same base, grid and collector, by
# construction): QoS satisfaction under load depends on which sources
# happen to contend, so the loaded points (6-10 concurrent sessions)
# need far more seeds than the light ones -- exactly the shape adaptive
# per-point stopping exploits
register_spec(
    dataclasses.replace(
        get_spec("e7_qos_load"),
        name="e7_qos_adaptive",
        description="E7 under adaptive replication: the 250 ms QoS "
        "satisfaction ratio gets noisier as concurrent CBR sessions grow, "
        "so each load level gets seeds until its 95% CI half-width drops "
        "to 0.05 (max 10 seeds/point, variance-aware batch growth).",
        seeds=(41, 42, 43),
        replication=AdaptiveCI(
            target_half_width=0.05,
            metric="qos_satisfaction",
            min_seeds=3,
            max_seeds=10,
            batch=2,
            growth=2.0,
        ),
    )
)

register_spec(
    SweepSpec(
        name="a3_phy_contention",
        description="A3: HVDB vs flooding under physical-layer contention "
        "-- radio model (idealized unit disk vs SINR/capture with "
        "concurrent-interferer bookkeeping) x MAC (abstract CSMA vs "
        "slotted CSMA/CA with airtime accounting) x offered load.",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=60,
            area_size=1000.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=12,
            traffic_interval=1.0,
            traffic_start=15.0,
            hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        ),
        grid={
            "protocol": ["hvdb", "flooding"],
            "radio": ["unit_disk", "sinr"],
            "mac": ["csma", "csma_ca"],
            "offered_load": [
                {"offered_load": "low", "traffic_interval": 2.0},
                {"offered_load": "high", "traffic_interval": 0.5},
            ],
        },
        seeds=(61,),
        duration=60.0,
    )
)

# derived from a3_phy_contention (same base and grid, by construction)
# so the fixed and adaptive variants cannot drift apart; contention
# outcomes (who captures, who defers) move packet delivery seed to seed
# far more than the idealized radio does, which is the shape adaptive
# per-point stopping exploits
register_spec(
    dataclasses.replace(
        get_spec("a3_phy_contention"),
        name="a3_phy_contention_adaptive",
        description="A3 under adaptive replication: capture and backoff "
        "make delivery noisy under load, so each protocol x radio x MAC "
        "x load point gets seeds until the delivery-ratio 95% CI "
        "half-width drops to 0.05 (max 8 seeds/point).",
        seeds=(61, 62, 63),
        replication=AdaptiveCI(
            target_half_width=0.05, metric="pdr", min_seeds=3, max_seeds=8, batch=2
        ),
    )
)

register_spec(
    SweepSpec(
        name="phy_smoke",
        description="Seconds-long physical-layer smoke grid: one tiny "
        "seeded scenario per registered (radio, MAC) combination -- the "
        "SINR/capture radio and the CSMA/CA MAC included -- backing "
        "`make phy-smoke` and the radio/MAC coverage gate.",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=14,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=5,
            traffic_interval=1.0,
            traffic_start=3.0,
        ),
        grid={
            "radio": ["unit_disk", "log_distance", "sinr"],
            "mac": ["csma", "ideal", "csma_ca"],
        },
        seeds=(9,),
        duration=12.0,
    )
)
