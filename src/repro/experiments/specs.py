"""Named, declarative sweep specifications.

Every experiment the repo ships -- the benchmark grids regenerating the
paper's figures, the example scenarios, the smoke sweep -- is defined
here as a :class:`~repro.experiments.orchestrator.SweepSpec` and
registered under a stable name.  The ``python -m repro.experiments`` CLI,
the ``benchmarks/bench_*.py`` files and the ``examples/`` scripts all
pull their configuration from this registry, so a scenario grid is
defined exactly once.

Look specs up with :func:`get_spec`, enumerate them with
:func:`available_specs`, add new ones with :func:`register_spec`::

    from repro.experiments import get_spec, run_sweep

    results = run_sweep(get_spec("e2_scalability"), workers=4)
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.qos import QoSRequirement, qos_satisfaction_ratio
from repro.experiments.orchestrator import SweepSpec, register_collector
from repro.experiments.scenarios import PROTOCOLS, ScenarioConfig

SPECS: Dict[str, SweepSpec] = {}


def register_spec(spec: SweepSpec) -> SweepSpec:
    """Add ``spec`` to the registry (replacing any same-named spec)."""
    SPECS[spec.name] = spec
    return spec


def get_spec(name: str) -> SweepSpec:
    """Look up a registered spec by name."""
    if name not in SPECS:
        raise KeyError(f"unknown sweep {name!r}; known sweeps: {', '.join(sorted(SPECS))}")
    return SPECS[name]


def available_specs() -> List[SweepSpec]:
    """All registered specs, sorted by name."""
    return [SPECS[name] for name in sorted(SPECS)]


# ---------------------------------------------------------------------------
# Collectors (run inside the worker, with access to the live scenario)
# ---------------------------------------------------------------------------

#: end-to-end delay bound used by the QoS experiments (paper Section 4.1)
QOS_DELAY_BOUND = QoSRequirement(max_delay=0.25)


@register_collector("qos_satisfaction_250ms")
def _qos_satisfaction(result) -> Dict[str, float]:
    """Fraction of deliveries meeting the 250 ms bound (experiment E7)."""
    network = result.scenario.network
    delays = [d for record in network.deliveries.values() for d in record.delays()]
    return {"qos_satisfaction": qos_satisfaction_ratio(delays, QOS_DELAY_BOUND)}


# ---------------------------------------------------------------------------
# Smoke / example sweeps
# ---------------------------------------------------------------------------

register_spec(
    SweepSpec(
        name="smoke",
        description="Tiny 2-axis sweep (seconds to run); exercises the whole "
        "orchestrator path: grid expansion, workers, cache, export.",
        base=ScenarioConfig(
            protocol="flooding",
            area_size=700.0,
            radio_range=250.0,
            max_speed=2.0,
            traffic_start=5.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [15, 25], "group_size": [4, 6]},
        seeds=(1, 2, 3),
        duration=20.0,
    )
)

register_spec(
    SweepSpec(
        name="quickstart",
        description="The quickstart scenario: HVDB on a 100-node random-waypoint "
        "MANET, one multicast group (examples/quickstart.py).",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=100,
            area_size=1500.0,
            radio_range=250.0,
            max_speed=5.0,
            n_groups=1,
            group_size=10,
            traffic_interval=1.0,
            vc_cols=8,
            vc_rows=8,
            dimension=4,
        ),
        grid={},
        seeds=(7,),
        duration=120.0,
    )
)

register_spec(
    SweepSpec(
        name="protocol_comparison",
        description="HVDB vs. flooding, SGM, DSM and SPBM on one 100-node "
        "workload (examples/protocol_comparison.py).",
        base=ScenarioConfig(
            n_nodes=100,
            area_size=1500.0,
            radio_range=250.0,
            max_speed=4.0,
            n_groups=1,
            group_size=12,
            traffic_interval=1.0,
            traffic_start=30.0,
            vc_cols=8,
            vc_rows=8,
            dimension=4,
            dsm_position_period=15.0,
        ),
        grid={"protocol": list(PROTOCOLS)},
        seeds=(31,),
        duration=120.0,
    )
)


# ---------------------------------------------------------------------------
# Benchmark grids (the paper's evaluation figures)
# ---------------------------------------------------------------------------

#: constant-density scaling used by E2: m^2 of area per node
E2_AREA_PER_NODE = 150.0 * 150.0


def _e2_axis(n_nodes: int) -> Dict[str, float]:
    """Couple the area to the node count so density stays constant."""
    return {
        "n_nodes": n_nodes,
        "area_size": math.sqrt(n_nodes * E2_AREA_PER_NODE),
        "group_size": max(8, n_nodes // 10),
    }


register_spec(
    SweepSpec(
        name="e2_scalability",
        description="E2: delivery ratio and per-packet cost vs. network size "
        "at constant density (HVDB / flooding / SGM).",
        base=ScenarioConfig(
            radio_range=250.0,
            max_speed=4.0,
            traffic_interval=1.0,
            traffic_start=30.0,
            vc_cols=8,
            vc_rows=8,
            dimension=4,
        ),
        grid={
            "n_nodes": [_e2_axis(n) for n in (60, 120, 200)],
            "protocol": ["hvdb", "flooding", "sgm"],
        },
        seeds=(7,),
        duration=90.0,
    )
)

register_spec(
    SweepSpec(
        name="e3_membership_overhead",
        description="E3: control overhead of summary-based membership vs. DSM "
        "and SPBM, as a function of network size and group count.",
        base=ScenarioConfig(
            area_size=1500.0,
            radio_range=250.0,
            max_speed=3.0,
            group_size=8,
            traffic_interval=2.0,
            traffic_start=40.0,
            vc_cols=8,
            vc_rows=8,
            dimension=4,
            dsm_position_period=15.0,
        ),
        grid={
            "n_nodes": [60, 120],
            "n_groups": [1, 4],
            "protocol": ["hvdb", "spbm", "dsm"],
        },
        seeds=(13,),
        duration=80.0,
    )
)

register_spec(
    SweepSpec(
        name="e6_mobility",
        description="E6: delivery and cluster-head churn vs. maximum node "
        "speed (random waypoint), HVDB vs. flooding.",
        base=ScenarioConfig(
            n_nodes=100,
            area_size=1400.0,
            radio_range=250.0,
            pause_time=2.0,
            group_size=10,
            traffic_interval=1.0,
            traffic_start=30.0,
            vc_cols=8,
            vc_rows=8,
            dimension=4,
        ),
        grid={
            "protocol": ["hvdb", "flooding"],
            "max_speed": [0.0, 5.0, 10.0, 20.0],
        },
        seeds=(37,),
        duration=90.0,
    )
)

register_spec(
    SweepSpec(
        name="e7_qos_load",
        description="E7: fraction of deliveries meeting a 250 ms delay bound "
        "as the number of concurrent CBR sessions grows.",
        base=ScenarioConfig(
            protocol="hvdb",
            n_nodes=100,
            area_size=1400.0,
            radio_range=250.0,
            max_speed=3.0,
            n_groups=1,
            group_size=10,
            traffic_interval=0.5,
            traffic_start=30.0,
            vc_cols=8,
            vc_rows=8,
            dimension=4,
            qos_requirements={1: QOS_DELAY_BOUND},
        ),
        grid={"sources_per_group": [1, 3, 6, 10]},
        seeds=(41,),
        duration=90.0,
        collector="qos_satisfaction_250ms",
    )
)
