"""Hypercube node labels and bit-string algebra.

An *n*-dimensional hypercube has ``2**n`` nodes, each labelled by a bit
string ``k1 ... kn``.  Two nodes are adjacent iff their labels differ in
exactly one bit; the Hamming distance between two labels is the number of
differing bits (paper Section 2.1).  Labels are represented as plain
Python integers in ``[0, 2**n)`` -- dimension *i* corresponds to bit
``1 << i``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence


def is_valid_label(label: int, dimension: int) -> bool:
    """True if ``label`` is a legal node label of a ``dimension``-cube."""
    return 0 <= label < (1 << dimension)


def _check_label(label: int, dimension: int) -> None:
    if not is_valid_label(label, dimension):
        raise ValueError(
            f"label {label} out of range for a {dimension}-dimensional hypercube"
        )


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions in which labels ``a`` and ``b`` differ."""
    return (a ^ b).bit_count()


def differing_dimensions(a: int, b: int) -> List[int]:
    """Sorted list of dimensions (bit indices) in which ``a`` and ``b`` differ."""
    diff = a ^ b
    dims: List[int] = []
    i = 0
    while diff:
        if diff & 1:
            dims.append(i)
        diff >>= 1
        i += 1
    return dims


def flip_bit(label: int, dimension: int) -> int:
    """Return the label with bit ``dimension`` flipped (the neighbour along it)."""
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    return label ^ (1 << dimension)


def neighbors(label: int, dimension: int) -> List[int]:
    """All ``dimension`` neighbours of ``label`` in a complete hypercube."""
    _check_label(label, dimension)
    return [label ^ (1 << d) for d in range(dimension)]


def all_labels(dimension: int) -> range:
    """All labels of a complete ``dimension``-cube, in increasing order."""
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    return range(1 << dimension)


def label_to_bits(label: int, dimension: int) -> str:
    """Render a label as a bit string of length ``dimension`` (MSB first).

    This matches the paper's notation, e.g. node ``1000`` of the 4-D cube
    of Figure 3 is label ``8``.
    """
    _check_label(label, dimension)
    return format(label, f"0{dimension}b")


def bits_to_label(bits: str) -> int:
    """Parse a bit-string label such as ``"1010"`` into its integer form."""
    if not bits or any(c not in "01" for c in bits):
        raise ValueError(f"not a bit string: {bits!r}")
    return int(bits, 2)


def subcube_members(fixed_bits: str) -> List[int]:
    """Expand a subcube pattern into its member labels.

    ``fixed_bits`` is a string over ``{'0', '1', '*'}`` (MSB first); ``*``
    positions are free.  For example ``"1**0"`` denotes a 2-dimensional
    subcube of the 4-cube with 4 members.  The paper's symmetry property
    states every (k+1)-dimensional subcube splits into two k-dimensional
    subcubes; this helper makes that decomposition testable.
    """
    if not fixed_bits or any(c not in "01*" for c in fixed_bits):
        raise ValueError(f"not a subcube pattern: {fixed_bits!r}")
    members = [0]
    for char in fixed_bits:
        if char == "*":
            members = [m << 1 for m in members] + [(m << 1) | 1 for m in members]
        else:
            bit = int(char)
            members = [(m << 1) | bit for m in members]
    return sorted(members)


def gray_code(n: int) -> List[int]:
    """The ``n``-bit reflected Gray code sequence (length ``2**n``).

    Consecutive entries differ in exactly one bit, i.e. the sequence is a
    Hamiltonian path of the ``n``-cube.  Used by tests as an independent
    witness of hypercube connectivity and by ring-embedding utilities.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return [i ^ (i >> 1) for i in range(1 << n)]


def iter_dimension_order(a: int, b: int, ascending: bool = True) -> Iterator[int]:
    """Iterate the dimensions to correct when routing from ``a`` to ``b``.

    Dimension-ordered (e-cube) routing corrects differing bits in a fixed
    order; ``ascending`` selects lowest-dimension-first (the conventional
    choice) or highest-first.
    """
    dims = differing_dimensions(a, b)
    return iter(dims if ascending else list(reversed(dims)))


def weight(label: int) -> int:
    """Hamming weight (number of set bits) of a label."""
    return label.bit_count()


def canonical_subcube(labels: Sequence[int], dimension: int) -> str:
    """Return the smallest subcube pattern containing every label given.

    Bits that agree across all labels stay fixed; bits that differ become
    ``*``.  Useful for summarising where a multicast group's members sit
    inside a hypercube.
    """
    if not labels:
        raise ValueError("labels must be non-empty")
    for lab in labels:
        _check_label(lab, dimension)
    fixed_and = labels[0]
    fixed_or = labels[0]
    for lab in labels[1:]:
        fixed_and &= lab
        fixed_or |= lab
    pattern = []
    for d in reversed(range(dimension)):
        bit = 1 << d
        if (fixed_and & bit) == (fixed_or & bit):
            pattern.append("1" if fixed_and & bit else "0")
        else:
            pattern.append("*")
    return "".join(pattern)
