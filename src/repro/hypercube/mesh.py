"""The Mesh Tier: a logical 2-D (possibly incomplete) mesh of hypercubes.

"The Mesh Tier (MT) is a logical 2-dimensional mesh network by viewing each
k-dimensional hypercube as one mesh node.  In the same way, the
2-dimensional mesh is possibly an incomplete mesh, and the link between two
adjacent mesh nodes is logical and physically multi-hop." (paper Section 3)

Mesh nodes are addressed by integer ``(column, row)`` coordinates -- the
Mesh Node ID (MNID) of the identifier scheme in Section 4.1.  A mesh node
is *actual* only when a logical hypercube (i.e. at least one CH) exists in
its region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.hypercube.multicast_tree import MulticastTree

#: Mesh node coordinate (column, row) == MNID.
MeshCoord = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class MeshNode:
    """One node of the mesh tier: a whole logical hypercube."""

    coord: MeshCoord
    hypercube_id: int

    @property
    def column(self) -> int:
        return self.coord[0]

    @property
    def row(self) -> int:
        return self.coord[1]


class MeshGrid:
    """A ``cols x rows`` logical mesh, possibly with absent nodes/links.

    Adjacency is the 4-neighbourhood.  Absent nodes model regions with no
    cluster heads at all; absent links model adjacent regions whose border
    cluster heads cannot currently reach each other.
    """

    def __init__(self, cols: int, rows: int, present: Optional[Iterable[MeshCoord]] = None) -> None:
        if cols <= 0 or rows <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.cols = cols
        self.rows = rows
        if present is None:
            self._present: Set[MeshCoord] = {
                (c, r) for c in range(cols) for r in range(rows)
            }
        else:
            self._present = set()
            for coord in present:
                self._validate(coord)
                self._present.add(coord)
        self._removed_links: Set[Tuple[MeshCoord, MeshCoord]] = set()

    def _validate(self, coord: MeshCoord) -> None:
        c, r = coord
        if not (0 <= c < self.cols and 0 <= r < self.rows):
            raise ValueError(f"mesh coordinate {coord} outside {self.cols}x{self.rows} grid")

    @staticmethod
    def _norm(a: MeshCoord, b: MeshCoord) -> Tuple[MeshCoord, MeshCoord]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, coord: MeshCoord) -> None:
        self._validate(coord)
        self._present.add(coord)

    def remove_node(self, coord: MeshCoord) -> None:
        self._present.discard(coord)

    def remove_link(self, a: MeshCoord, b: MeshCoord) -> None:
        if not self._adjacent(a, b):
            raise ValueError(f"{a} and {b} are not mesh-adjacent")
        self._removed_links.add(self._norm(a, b))

    def restore_link(self, a: MeshCoord, b: MeshCoord) -> None:
        self._removed_links.discard(self._norm(a, b))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _adjacent(self, a: MeshCoord, b: MeshCoord) -> bool:
        return abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def __contains__(self, coord: MeshCoord) -> bool:
        return coord in self._present

    def __len__(self) -> int:
        return len(self._present)

    def nodes(self) -> Iterator[MeshCoord]:
        return iter(sorted(self._present))

    def has_node(self, coord: MeshCoord) -> bool:
        return coord in self._present

    def has_link(self, a: MeshCoord, b: MeshCoord) -> bool:
        return (
            a in self._present
            and b in self._present
            and self._adjacent(a, b)
            and self._norm(a, b) not in self._removed_links
        )

    def neighbors(self, coord: MeshCoord) -> List[MeshCoord]:
        if coord not in self._present:
            raise KeyError(f"mesh node {coord} not present")
        c, r = coord
        out: List[MeshCoord] = []
        for dc, dr in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            other = (c + dc, r + dr)
            if 0 <= other[0] < self.cols and 0 <= other[1] < self.rows:
                if self.has_link(coord, other):
                    out.append(other)
        return out

    def manhattan(self, a: MeshCoord, b: MeshCoord) -> int:
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def is_connected(self) -> bool:
        if not self._present:
            return True
        start = next(iter(self._present))
        return len(self.reachable_from(start)) == len(self._present)

    def reachable_from(self, source: MeshCoord) -> Set[MeshCoord]:
        if source not in self._present:
            raise KeyError(f"mesh node {source} not present")
        seen = {source}
        stack = [source]
        while stack:
            current = stack.pop()
            for nb in self.neighbors(current):
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return seen

    def shortest_path(self, source: MeshCoord, destination: MeshCoord) -> List[MeshCoord]:
        """BFS shortest path over present mesh nodes (inclusive endpoints)."""
        if source not in self._present or destination not in self._present:
            raise KeyError("source or destination not present in mesh")
        if source == destination:
            return [source]
        parent: Dict[MeshCoord, MeshCoord] = {source: source}
        frontier = [source]
        while frontier:
            next_frontier: List[MeshCoord] = []
            for current in frontier:
                for nb in self.neighbors(current):
                    if nb in parent:
                        continue
                    parent[nb] = current
                    if nb == destination:
                        path = [destination]
                        while path[-1] != source:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    next_frontier.append(nb)
            frontier = next_frontier
        raise ValueError(f"no mesh route from {source} to {destination}")


@dataclass
class MeshMulticastTree:
    """A multicast tree whose nodes are mesh coordinates (MNIDs)."""

    root: MeshCoord
    children: Dict[MeshCoord, List[MeshCoord]] = field(default_factory=dict)
    members: Set[MeshCoord] = field(default_factory=set)

    def nodes(self) -> Set[MeshCoord]:
        out = {self.root}
        for parent, kids in self.children.items():
            out.add(parent)
            out.update(kids)
        return out

    def edges(self) -> List[Tuple[MeshCoord, MeshCoord]]:
        out: List[Tuple[MeshCoord, MeshCoord]] = []
        for parent, kids in self.children.items():
            for kid in kids:
                out.append((parent, kid))
        return out

    def children_of(self, node: MeshCoord) -> List[MeshCoord]:
        return list(self.children.get(node, []))

    def covers(self, members: Iterable[MeshCoord]) -> bool:
        nodes = self.nodes()
        return all(m in nodes for m in members)

    def depth(self) -> int:
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for kid in self.children.get(node, []):
                stack.append((kid, d + 1))
        return best

    def serialize(self) -> Dict[str, object]:
        return {
            "root": list(self.root),
            "children": {f"{k[0]},{k[1]}": [list(v) for v in kids] for k, kids in self.children.items()},
            "members": sorted([list(m) for m in self.members]),
        }

    @classmethod
    def deserialize(cls, data: Dict[str, object]) -> "MeshMulticastTree":
        children: Dict[MeshCoord, List[MeshCoord]] = {}
        for key, kids in dict(data["children"]).items():
            c, r = key.split(",")
            children[(int(c), int(r))] = [tuple(k) for k in kids]  # type: ignore[misc]
        return cls(
            root=tuple(data["root"]),  # type: ignore[arg-type]
            children=children,
            members={tuple(m) for m in data["members"]},  # type: ignore[misc]
        )


def mesh_multicast_tree(
    mesh: MeshGrid, root: MeshCoord, members: Iterable[MeshCoord]
) -> MeshMulticastTree:
    """Shortest-path multicast tree over the mesh tier.

    The source's CH computes this tree from its MT-Summary: ``members`` are
    the mesh coordinates (logical hypercubes) known to contain group
    members (paper Section 4.3, step 2 of Figure 6).  Unreachable members
    are skipped; the caller compares ``tree.members`` to detect gaps.
    """
    member_list = sorted({m for m in members})
    tree = MeshMulticastTree(root=root, members=set())
    if root not in mesh:
        return tree
    in_tree: Set[MeshCoord] = {root}
    parent_map: Dict[MeshCoord, MeshCoord] = {}
    for member in member_list:
        if member == root:
            tree.members.add(member)
            continue
        if member not in mesh:
            continue
        try:
            path = mesh.shortest_path(root, member)
        except (ValueError, KeyError):
            continue
        for a, b in zip(path, path[1:]):
            if b in in_tree:
                continue
            parent_map[b] = a
            in_tree.add(b)
        tree.members.add(member)
    for child, parent in parent_map.items():
        tree.children.setdefault(parent, []).append(child)
    for kids in tree.children.values():
        kids.sort()
    return tree
