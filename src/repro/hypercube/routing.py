"""Routing inside (possibly incomplete) hypercubes.

The hypercube tier routes packets between cluster heads using the local
logical routes each CH maintains proactively (paper Section 4.1).  Three
strategies are provided:

* **e-cube (dimension-ordered) routing** on a complete hypercube -- the
  classical deadlock-free strategy; optimal (Hamming-distance many hops).
* **shortest-path routing** on an incomplete hypercube via BFS -- what a CH
  computes from its k-logical-hop route table.
* **fault-tolerant routing** that first tries e-cube and falls back to a
  detour search when nodes/links are missing, mimicking the paper's claim
  that "if the current logical route is broken, multiple candidate logical
  routes become available immediately".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.hypercube.labels import differing_dimensions, hamming_distance
from repro.hypercube.topology import Hypercube, IncompleteHypercube


class RoutingError(RuntimeError):
    """Raised when no route exists between the requested endpoints."""


def ecube_next_hop(current: int, destination: int, ascending: bool = True) -> int:
    """Next hop of dimension-ordered routing on a *complete* hypercube.

    Corrects the lowest (or highest) differing dimension first.  Raises
    :class:`RoutingError` if ``current == destination`` (there is no next
    hop to take).
    """
    if current == destination:
        raise RoutingError("already at destination")
    dims = differing_dimensions(current, destination)
    dim = dims[0] if ascending else dims[-1]
    return current ^ (1 << dim)


def ecube_path(source: int, destination: int, ascending: bool = True) -> List[int]:
    """Full dimension-ordered path on a complete hypercube (inclusive ends)."""
    path = [source]
    current = source
    while current != destination:
        current = ecube_next_hop(current, destination, ascending)
        path.append(current)
    return path


def shortest_path(
    cube: IncompleteHypercube, source: int, destination: int
) -> List[int]:
    """Shortest path on an incomplete hypercube (BFS), inclusive of endpoints.

    Raises :class:`RoutingError` when the destination is unreachable or
    either endpoint is absent.
    """
    if source not in cube:
        raise RoutingError(f"source {source} not present")
    if destination not in cube:
        raise RoutingError(f"destination {destination} not present")
    if source == destination:
        return [source]
    parent: Dict[int, int] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: List[int] = []
        for current in frontier:
            for nb in cube.neighbors(current):
                if nb in parent:
                    continue
                parent[nb] = current
                if nb == destination:
                    return _reconstruct(parent, source, destination)
                next_frontier.append(nb)
        frontier = next_frontier
    raise RoutingError(f"no route from {source} to {destination}")


def _reconstruct(parent: Dict[int, int], source: int, destination: int) -> List[int]:
    path = [destination]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def fault_tolerant_path(
    cube: IncompleteHypercube,
    source: int,
    destination: int,
    avoid: Optional[Iterable[int]] = None,
) -> List[int]:
    """Route on an incomplete hypercube, optionally avoiding extra nodes.

    First tries the e-cube path; if every hop of it is present (and not in
    ``avoid``) that optimal path is returned.  Otherwise a BFS detour that
    skips absent/avoided nodes is computed.  This is the mechanism behind
    the availability experiments: when a CH on the preferred route fails,
    an alternative logical route is found immediately from already-known
    local information.
    """
    avoid_set: Set[int] = set(avoid) if avoid else set()
    if source in avoid_set or destination in avoid_set:
        raise RoutingError("source or destination is in the avoid set")
    if source not in cube or destination not in cube:
        raise RoutingError("source or destination not present in the hypercube")
    if source == destination:
        return [source]

    candidate = ecube_path(source, destination)
    usable = True
    for a, b in zip(candidate, candidate[1:]):
        if b in avoid_set or not cube.has_edge(a, b):
            usable = False
            break
    if usable:
        return candidate

    # Detour: BFS over present nodes excluding the avoid set.
    parent: Dict[int, int] = {source: source}
    frontier = [source]
    while frontier:
        next_frontier: List[int] = []
        for current in frontier:
            for nb in cube.neighbors(current):
                if nb in parent or nb in avoid_set:
                    continue
                parent[nb] = current
                if nb == destination:
                    return _reconstruct(parent, source, destination)
                next_frontier.append(nb)
        frontier = next_frontier
    raise RoutingError(
        f"no fault-tolerant route from {source} to {destination} avoiding {sorted(avoid_set)}"
    )


def path_is_valid(cube: IncompleteHypercube, path: Sequence[int]) -> bool:
    """True if every consecutive pair of ``path`` is a present logical link."""
    if not path:
        return False
    if len(path) == 1:
        return path[0] in cube
    return all(cube.has_edge(a, b) for a, b in zip(path, path[1:]))


def logical_hop_count(path: Sequence[int]) -> int:
    """Number of logical hops of a logical route (paper Section 4.1).

    A path of ``m`` nodes is the concatenation of ``m - 1`` 1-logical-hop
    routes, e.g. ``1000 -> 1100 -> 1101`` has 2 logical hops.
    """
    if not path:
        raise ValueError("empty path has no hop count")
    return len(path) - 1
