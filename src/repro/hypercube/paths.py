"""Node-disjoint paths in hypercubes.

"The hypercube offers n node disjoint paths between each pair of nodes,
therefore it can sustain up to n - 1 node failures" (paper Section 2.1).
This module constructs those paths both on complete hypercubes (classical
rotation construction) and on incomplete hypercubes (max-flow style
augmentation), and is the basis of the availability experiments (E1, E5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.hypercube.labels import differing_dimensions, hamming_distance
from repro.hypercube.topology import Hypercube, IncompleteHypercube


def are_node_disjoint(paths: Sequence[Sequence[int]]) -> bool:
    """True if no two paths share an intermediate node.

    Endpoints (first and last node of each path) are allowed to coincide,
    as in the standard definition of node-disjoint paths between a fixed
    source/destination pair.
    """
    seen: Set[int] = set()
    for path in paths:
        for node in path[1:-1]:
            if node in seen:
                return False
            seen.add(node)
    return True


def _complete_disjoint_paths(dimension: int, source: int, destination: int) -> List[List[int]]:
    """The classical ``n`` node-disjoint paths on a complete ``n``-cube.

    Construction (Saad & Schultz): let ``D`` be the set of dimensions in
    which source and destination differ (``|D| = h``).  For each
    ``i in 0..h-1`` rotate the correction order of ``D`` by ``i`` to get a
    shortest path; these ``h`` paths are internally node-disjoint.  For
    each dimension ``d`` *not* in ``D`` take a path that first steps out
    along ``d``, then corrects all of ``D`` in order, then steps back along
    ``d``; these ``n - h`` paths have length ``h + 2`` and are disjoint
    from each other and from the shortest ones.
    """
    if source == destination:
        return [[source]]
    diff = differing_dimensions(source, destination)
    h = len(diff)
    paths: List[List[int]] = []
    # h shortest paths from rotations of the correction order
    for i in range(h):
        order = diff[i:] + diff[:i]
        node = source
        path = [node]
        for d in order:
            node ^= 1 << d
            path.append(node)
        paths.append(path)
    # n - h paths of length h + 2 through the remaining dimensions
    for d in range(dimension):
        if d in diff:
            continue
        node = source ^ (1 << d)
        path = [source, node]
        for dd in diff:
            node ^= 1 << dd
            path.append(node)
        node ^= 1 << d
        path.append(node)
        paths.append(path)
    return paths


def node_disjoint_paths(
    cube: "Hypercube | IncompleteHypercube",
    source: int,
    destination: int,
    max_paths: Optional[int] = None,
) -> List[List[int]]:
    """Node-disjoint paths between ``source`` and ``destination``.

    On a complete :class:`Hypercube` the classical explicit construction is
    used and exactly ``n`` paths are returned.  On an
    :class:`IncompleteHypercube` a unit-capacity max-flow (node-splitting +
    BFS augmentation) computes a maximum set of vertex-disjoint paths that
    exist in the damaged cube.  ``max_paths`` caps the number of paths
    searched for (useful when only a couple of backup routes are needed).
    """
    if isinstance(cube, Hypercube):
        paths = _complete_disjoint_paths(cube.dimension, source, destination)
        if max_paths is not None:
            paths = paths[:max_paths]
        return paths
    return _incomplete_disjoint_paths(cube, source, destination, max_paths)


# ----------------------------------------------------------------------
# Max-flow based construction for incomplete hypercubes
# ----------------------------------------------------------------------
_IN = 0
_OUT = 1


def _incomplete_disjoint_paths(
    cube: IncompleteHypercube,
    source: int,
    destination: int,
    max_paths: Optional[int],
) -> List[List[int]]:
    if source not in cube or destination not in cube:
        return []
    if source == destination:
        return [[source]]

    limit = max_paths if max_paths is not None else cube.dimension

    # Node-split flow network: each node v becomes v_in -> v_out with
    # capacity 1 (except source/destination which are uncapacitated).
    # Every logical link (u, v) becomes u_out -> v_in and v_out -> u_in.
    # We run BFS augmentation on residual capacities.
    flow: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = {}

    def residual_neighbors(vertex: Tuple[int, int]) -> List[Tuple[int, int]]:
        label, side = vertex
        out: List[Tuple[int, int]] = []
        if side == _IN:
            forward = (label, _OUT)
            cap = 10**9 if label in (source, destination) else 1
            if flow.get((vertex, forward), 0) < cap:
                out.append(forward)
            # residual edges back along incoming link flow
            for nb in cube.neighbors(label):
                back = (nb, _OUT)
                if flow.get((back, vertex), 0) > 0:
                    out.append(back)
        else:  # _OUT
            for nb in cube.neighbors(label):
                forward = (nb, _IN)
                if flow.get((vertex, forward), 0) < 1:
                    out.append(forward)
            back = (label, _IN)
            if flow.get((back, vertex), 0) > 0:
                out.append(back)
        return out

    src_vertex = (source, _OUT)
    dst_vertex = (destination, _IN)

    found = 0
    while found < limit:
        # BFS for an augmenting path in the residual graph.
        parent: Dict[Tuple[int, int], Tuple[int, int]] = {src_vertex: src_vertex}
        frontier = [src_vertex]
        reached = False
        while frontier and not reached:
            next_frontier: List[Tuple[int, int]] = []
            for current in frontier:
                for nb in residual_neighbors(current):
                    if nb in parent:
                        continue
                    parent[nb] = current
                    if nb == dst_vertex:
                        reached = True
                        break
                    next_frontier.append(nb)
                if reached:
                    break
            frontier = next_frontier
        if not reached:
            break
        # Augment along the path by 1 unit.
        vertex = dst_vertex
        while vertex != src_vertex:
            prev = parent[vertex]
            if flow.get((vertex, prev), 0) > 0:
                flow[(vertex, prev)] -= 1
            else:
                flow[(prev, vertex)] = flow.get((prev, vertex), 0) + 1
            vertex = prev
        found += 1

    if found == 0:
        return []

    # Decompose the integral flow into paths by walking from the source.
    # Build per-node outgoing flow map on the original labels.
    out_flow: Dict[int, List[int]] = {}
    for (a, b), value in flow.items():
        if value <= 0:
            continue
        (la, sa), (lb, sb) = a, b
        if sa == _OUT and sb == _IN and la != lb:
            out_flow.setdefault(la, []).append(lb)

    paths: List[List[int]] = []
    for _ in range(found):
        path = [source]
        current = source
        guard = 0
        while current != destination:
            nexts = out_flow.get(current)
            if not nexts:
                path = []
                break
            nxt = nexts.pop()
            path.append(nxt)
            current = nxt
            guard += 1
            if guard > cube.size * 2:
                path = []
                break
        if path:
            paths.append(path)
    return paths


def max_disjoint_path_count(
    cube: "Hypercube | IncompleteHypercube", source: int, destination: int
) -> int:
    """Number of node-disjoint paths available between a pair of nodes."""
    return len(node_disjoint_paths(cube, source, destination))


def survives_failures(
    cube: "Hypercube | IncompleteHypercube",
    source: int,
    destination: int,
    failed: Sequence[int],
) -> bool:
    """True if source can still reach destination after removing ``failed`` nodes.

    This is the operational meaning of the paper's fault-tolerance claim:
    with ``n`` disjoint paths the pair survives any ``n - 1`` node failures.
    """
    if source in failed or destination in failed:
        return False
    if isinstance(cube, Hypercube):
        work = IncompleteHypercube(cube.dimension)
    else:
        work = cube.copy()
    for label in failed:
        work.remove_node(label)
    if source not in work or destination not in work:
        return False
    return destination in work.reachable_from(source)
