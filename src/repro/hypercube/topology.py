"""Complete and generalized incomplete hypercube topologies.

The paper generalizes Katseff's incomplete hypercube [12] "by allowing any
number of nodes/links to be absent due to many reasons such as mobility,
transmission range, and failure of nodes" (Section 2.1).  The Hypercube
Tier of the HVDB is built from such generalized incomplete hypercubes: a
logical hypercube node exists only where a cluster head exists, and a
logical link exists only when the two cluster heads can actually reach each
other.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.hypercube.labels import (
    all_labels,
    hamming_distance,
    is_valid_label,
    neighbors as complete_neighbors,
)

#: An undirected logical link between two hypercube node labels.
Edge = Tuple[int, int]


def _norm_edge(a: int, b: int) -> Edge:
    return (a, b) if a <= b else (b, a)


class Hypercube:
    """A complete ``n``-dimensional hypercube.

    Thin immutable wrapper exposing the graph-theoretic queries the rest of
    the library needs (neighbours, diameter, edges).  :class:`IncompleteHypercube`
    derives the same interface for cubes with missing nodes/links.
    """

    def __init__(self, dimension: int) -> None:
        if dimension < 0:
            raise ValueError("dimension must be non-negative")
        self.dimension = dimension

    # -- container protocol -------------------------------------------------
    @property
    def size(self) -> int:
        return 1 << self.dimension

    def __len__(self) -> int:
        return self.size

    def __contains__(self, label: int) -> bool:
        return is_valid_label(label, self.dimension)

    def nodes(self) -> Iterator[int]:
        return iter(all_labels(self.dimension))

    def has_node(self, label: int) -> bool:
        return label in self

    def has_edge(self, a: int, b: int) -> bool:
        return a in self and b in self and hamming_distance(a, b) == 1

    def neighbors(self, label: int) -> List[int]:
        if label not in self:
            raise KeyError(f"label {label} not in hypercube")
        return complete_neighbors(label, self.dimension)

    def edges(self) -> Iterator[Edge]:
        for a in self.nodes():
            for d in range(self.dimension):
                b = a ^ (1 << d)
                if a < b:
                    yield (a, b)

    def degree(self, label: int) -> int:
        if label not in self:
            raise KeyError(f"label {label} not in hypercube")
        return self.dimension

    @property
    def diameter(self) -> int:
        """The diameter of a complete ``n``-cube is ``n`` (paper Section 2.1)."""
        return self.dimension

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypercube(dimension={self.dimension})"


class IncompleteHypercube:
    """A generalized incomplete hypercube: any subset of nodes and links.

    Nodes are labels from the complete ``n``-cube; an edge may exist only
    between labels at Hamming distance 1 and only if both endpoints are
    present.  Edges may additionally be removed individually (modelling a
    pair of cluster heads that exist but cannot reach each other).
    """

    def __init__(
        self,
        dimension: int,
        present_nodes: Optional[Iterable[int]] = None,
        removed_edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        if dimension < 0:
            raise ValueError("dimension must be non-negative")
        self.dimension = dimension
        if present_nodes is None:
            self._nodes: Set[int] = set(all_labels(dimension))
        else:
            self._nodes = set()
            for label in present_nodes:
                if not is_valid_label(label, dimension):
                    raise ValueError(
                        f"label {label} out of range for dimension {dimension}"
                    )
                self._nodes.add(label)
        self._removed_edges: Set[Edge] = set()
        if removed_edges:
            for a, b in removed_edges:
                self.remove_edge(a, b)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def complete(cls, dimension: int) -> "IncompleteHypercube":
        """An incomplete hypercube with every node and link present."""
        return cls(dimension)

    @classmethod
    def from_hypercube(cls, cube: Hypercube) -> "IncompleteHypercube":
        return cls(cube.dimension)

    def copy(self) -> "IncompleteHypercube":
        clone = IncompleteHypercube(self.dimension, self._nodes)
        clone._removed_edges = set(self._removed_edges)
        return clone

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, label: int) -> None:
        if not is_valid_label(label, self.dimension):
            raise ValueError(f"label {label} out of range for dimension {self.dimension}")
        self._nodes.add(label)

    def remove_node(self, label: int) -> None:
        self._nodes.discard(label)

    def remove_edge(self, a: int, b: int) -> None:
        if hamming_distance(a, b) != 1:
            raise ValueError(f"{a} and {b} are not hypercube-adjacent")
        self._removed_edges.add(_norm_edge(a, b))

    def restore_edge(self, a: int, b: int) -> None:
        self._removed_edges.discard(_norm_edge(a, b))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._nodes)

    def __len__(self) -> int:
        return self.size

    def __contains__(self, label: int) -> bool:
        return label in self._nodes

    def nodes(self) -> Iterator[int]:
        return iter(sorted(self._nodes))

    def node_set(self) -> FrozenSet[int]:
        return frozenset(self._nodes)

    def missing_nodes(self) -> List[int]:
        """Labels of the complete cube that are absent here."""
        return [lab for lab in all_labels(self.dimension) if lab not in self._nodes]

    def has_node(self, label: int) -> bool:
        return label in self._nodes

    def has_edge(self, a: int, b: int) -> bool:
        return (
            a in self._nodes
            and b in self._nodes
            and hamming_distance(a, b) == 1
            and _norm_edge(a, b) not in self._removed_edges
        )

    def neighbors(self, label: int) -> List[int]:
        if label not in self._nodes:
            raise KeyError(f"label {label} not present in incomplete hypercube")
        out = []
        for d in range(self.dimension):
            other = label ^ (1 << d)
            if self.has_edge(label, other):
                out.append(other)
        return out

    def degree(self, label: int) -> int:
        return len(self.neighbors(label))

    def edges(self) -> Iterator[Edge]:
        for a in sorted(self._nodes):
            for d in range(self.dimension):
                b = a ^ (1 << d)
                if a < b and self.has_edge(a, b):
                    yield (a, b)

    def edge_count(self) -> int:
        return sum(1 for _ in self.edges())

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True if every present node can reach every other present node."""
        if not self._nodes:
            return True
        return len(self.reachable_from(next(iter(self._nodes)))) == len(self._nodes)

    def reachable_from(self, source: int) -> Set[int]:
        """Set of present nodes reachable from ``source`` via present links."""
        if source not in self._nodes:
            raise KeyError(f"label {source} not present")
        seen = {source}
        frontier = [source]
        while frontier:
            current = frontier.pop()
            for nb in self.neighbors(current):
                if nb not in seen:
                    seen.add(nb)
                    frontier.append(nb)
        return seen

    def connected_components(self) -> List[Set[int]]:
        remaining = set(self._nodes)
        components: List[Set[int]] = []
        while remaining:
            start = next(iter(remaining))
            comp = self.reachable_from(start)
            components.append(comp)
            remaining -= comp
        return components

    def eccentricity(self, source: int) -> int:
        """Largest hop distance from ``source`` to any reachable node."""
        dist = self.bfs_distances(source)
        return max(dist.values()) if dist else 0

    def diameter(self) -> int:
        """Largest hop distance over all connected pairs (0 if empty)."""
        best = 0
        for node in self._nodes:
            best = max(best, self.eccentricity(node))
        return best

    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distance from ``source`` to every reachable present node."""
        if source not in self._nodes:
            raise KeyError(f"label {source} not present")
        dist = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: List[int] = []
            for current in frontier:
                for nb in self.neighbors(current):
                    if nb not in dist:
                        dist[nb] = dist[current] + 1
                        next_frontier.append(nb)
            frontier = next_frontier
        return dist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncompleteHypercube(dimension={self.dimension}, "
            f"nodes={len(self._nodes)}/{1 << self.dimension}, "
            f"removed_edges={len(self._removed_edges)})"
        )
