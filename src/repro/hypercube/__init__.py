"""Hypercube mathematics (System S2).

The HVDB model is "derived from n-dimensional hypercubes, which have many
desirable properties, such as high fault tolerance, small diameter,
regularity, and symmetry" (paper Section 1).  This package implements the
hypercube machinery the model relies on:

* :mod:`repro.hypercube.labels` -- bit-string node labels, Hamming distance,
  neighbourhoods, subcube membership (paper Section 2.1).
* :mod:`repro.hypercube.topology` -- complete and *generalized incomplete*
  hypercubes where "any number of nodes/links may be absent due to ...
  mobility, transmission range, and failure of nodes" (Section 2.1).
* :mod:`repro.hypercube.routing` -- dimension-ordered (e-cube) routing and
  fault-tolerant routing on incomplete hypercubes.
* :mod:`repro.hypercube.paths` -- the ``n`` node-disjoint paths between any
  pair of nodes that underpin the high-availability claim.
* :mod:`repro.hypercube.multicast_tree` -- multicast trees inside a
  hypercube (binomial-tree and greedy member-cover constructions).
* :mod:`repro.hypercube.mesh` -- the 2-D (possibly incomplete) mesh of the
  Mesh Tier, each node of which is a whole logical hypercube.
"""

from repro.hypercube.labels import (
    hamming_distance,
    differing_dimensions,
    neighbors,
    flip_bit,
    label_to_bits,
    bits_to_label,
    all_labels,
    is_valid_label,
    subcube_members,
    gray_code,
)
from repro.hypercube.topology import Hypercube, IncompleteHypercube
from repro.hypercube.routing import (
    ecube_next_hop,
    ecube_path,
    shortest_path,
    fault_tolerant_path,
    RoutingError,
)
from repro.hypercube.paths import node_disjoint_paths, are_node_disjoint
from repro.hypercube.multicast_tree import (
    MulticastTree,
    binomial_multicast_tree,
    greedy_multicast_tree,
)
from repro.hypercube.mesh import MeshGrid, MeshNode, mesh_multicast_tree

__all__ = [
    "hamming_distance",
    "differing_dimensions",
    "neighbors",
    "flip_bit",
    "label_to_bits",
    "bits_to_label",
    "all_labels",
    "is_valid_label",
    "subcube_members",
    "gray_code",
    "Hypercube",
    "IncompleteHypercube",
    "ecube_next_hop",
    "ecube_path",
    "shortest_path",
    "fault_tolerant_path",
    "RoutingError",
    "node_disjoint_paths",
    "are_node_disjoint",
    "MulticastTree",
    "binomial_multicast_tree",
    "greedy_multicast_tree",
    "MeshGrid",
    "MeshNode",
    "mesh_multicast_tree",
]
