"""Multicast trees inside a logical hypercube.

When a multicast packet first enters a logical hypercube, the entry CH
"computes a multicast tree using its HT-Summary" and encapsulates it in the
packet header (paper Section 4.3).  Two constructions are provided:

* :func:`binomial_multicast_tree` -- the classical dimension-splitting
  (binomial) broadcast/multicast tree on a complete hypercube, pruned to
  the member set.  It spreads forwarding over many nodes, which is the
  structural source of the paper's load-balancing claim.
* :func:`greedy_multicast_tree` -- shortest-path-tree construction on an
  incomplete hypercube (works with any pattern of missing CHs/links),
  attaching every member via its BFS shortest path from the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hypercube.labels import differing_dimensions
from repro.hypercube.routing import RoutingError, shortest_path
from repro.hypercube.topology import Hypercube, IncompleteHypercube


@dataclass
class MulticastTree:
    """A rooted multicast tree over logical node labels.

    ``children`` maps each tree node to the ordered list of its children.
    ``root`` is the entry node; ``members`` records the destination set the
    tree was built for (members always appear in the tree; forwarders that
    are not members may also appear).
    """

    root: int
    children: Dict[int, List[int]] = field(default_factory=dict)
    members: Set[int] = field(default_factory=set)

    # -- structure queries ------------------------------------------------
    def nodes(self) -> Set[int]:
        out = {self.root}
        for parent, kids in self.children.items():
            out.add(parent)
            out.update(kids)
        return out

    def edges(self) -> List[Tuple[int, int]]:
        out: List[Tuple[int, int]] = []
        for parent, kids in self.children.items():
            for kid in kids:
                out.append((parent, kid))
        return out

    def parent_of(self, node: int) -> Optional[int]:
        for parent, kids in self.children.items():
            if node in kids:
                return parent
        return None

    def children_of(self, node: int) -> List[int]:
        return list(self.children.get(node, []))

    def covers(self, members: Iterable[int]) -> bool:
        """True if every given member appears somewhere in the tree."""
        nodes = self.nodes()
        return all(m in nodes for m in members)

    def depth(self) -> int:
        """Longest root-to-leaf hop count."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            for kid in self.children.get(node, []):
                stack.append((kid, d + 1))
        return best

    def total_edges(self) -> int:
        return len(self.edges())

    def forwarding_load(self) -> Dict[int, int]:
        """Number of transmissions each tree node performs (= #children)."""
        load = {node: 0 for node in self.nodes()}
        for parent, kids in self.children.items():
            load[parent] = len(kids)
        return load

    def is_valid_tree(self) -> bool:
        """Structural check: connected, acyclic, single parent per node."""
        nodes = self.nodes()
        seen: Set[int] = set()
        stack = [self.root]
        parents_count: Dict[int, int] = {}
        for parent, kids in self.children.items():
            for kid in kids:
                parents_count[kid] = parents_count.get(kid, 0) + 1
        if any(count > 1 for count in parents_count.values()):
            return False
        if self.root in parents_count:
            return False
        while stack:
            node = stack.pop()
            if node in seen:
                return False
            seen.add(node)
            stack.extend(self.children.get(node, []))
        return seen == nodes

    def serialize(self) -> Dict[str, object]:
        """Plain-dict form for encapsulation into a packet header."""
        return {
            "root": self.root,
            "children": {str(k): list(v) for k, v in self.children.items()},
            "members": sorted(self.members),
        }

    @classmethod
    def deserialize(cls, data: Dict[str, object]) -> "MulticastTree":
        children = {int(k): list(v) for k, v in dict(data["children"]).items()}
        return cls(
            root=int(data["root"]),
            children=children,
            members=set(data["members"]),
        )


def binomial_multicast_tree(
    dimension: int, root: int, members: Iterable[int]
) -> MulticastTree:
    """Dimension-splitting multicast tree on a complete ``dimension``-cube.

    The classical hypercube broadcast assigns each destination to the
    subtree obtained by correcting its highest differing dimension first;
    recursing yields a binomial tree of depth at most ``dimension`` where
    no node forwards to more than ``dimension`` children.  The tree is
    pruned so only branches leading to members are kept.
    """
    member_set = {m for m in members}
    for m in member_set:
        if not 0 <= m < (1 << dimension):
            raise ValueError(f"member {m} outside the {dimension}-cube")
    if not 0 <= root < (1 << dimension):
        raise ValueError(f"root {root} outside the {dimension}-cube")
    tree = MulticastTree(root=root, members=set(member_set))
    targets = member_set - {root}
    _binomial_expand(tree, root, targets, dimension)
    return tree


def _binomial_expand(
    tree: MulticastTree, node: int, targets: Set[int], max_dim: int
) -> None:
    """Recursively split ``targets`` among the children of ``node``.

    Each target is assigned to the child obtained by flipping the target's
    highest dimension that differs from ``node``; that child then owns all
    targets whose highest differing bit was that dimension.
    """
    if not targets:
        return
    buckets: Dict[int, Set[int]] = {}
    for target in targets:
        dims = differing_dimensions(node, target)
        top = dims[-1]
        buckets.setdefault(top, set()).add(target)
    for dim in sorted(buckets.keys(), reverse=True):
        child = node ^ (1 << dim)
        tree.children.setdefault(node, []).append(child)
        remaining = buckets[dim] - {child}
        _binomial_expand(tree, child, remaining, dim)


def greedy_multicast_tree(
    cube: IncompleteHypercube, root: int, members: Iterable[int]
) -> MulticastTree:
    """Shortest-path multicast tree on an incomplete hypercube.

    Every member is attached to the growing tree along its BFS shortest
    path from the root, reusing already-added forwarders where the paths
    overlap.  Unreachable members are silently skipped (the caller can
    compare ``tree.members`` with the requested set to detect this).
    """
    member_list = sorted({m for m in members})
    tree = MulticastTree(root=root, members=set())
    if root not in cube:
        return tree
    in_tree: Set[int] = {root}
    parent_map: Dict[int, int] = {}
    for member in member_list:
        if member == root:
            tree.members.add(member)
            continue
        if member not in cube:
            continue
        try:
            path = shortest_path(cube, root, member)
        except RoutingError:
            continue
        # graft the path onto the tree, skipping the prefix already present
        for a, b in zip(path, path[1:]):
            if b in in_tree:
                continue
            parent_map[b] = a
            in_tree.add(b)
        tree.members.add(member)
    for child, parent in parent_map.items():
        tree.children.setdefault(parent, []).append(child)
    for kids in tree.children.values():
        kids.sort()
    return tree
