"""The HVDB model and QoS multicast protocol (System S7 -- the paper's contribution).

* :mod:`repro.core.identifiers` -- the four logical identifiers of
  Section 4.1 (CHID, HNID, HID, MNID) and the geographic mapping function
  that reproduces the paper's Figures 2 and 3.
* :mod:`repro.core.hvdb` -- the three-tier HVDB model built from a
  clustering snapshot: per-region incomplete hypercubes, the mesh tier,
  BCH/ICH classification.
* :mod:`repro.core.route_maintenance` -- proactive local logical route
  maintenance (Figure 4) with per-route QoS state (delay, bandwidth).
* :mod:`repro.core.membership` -- summary-based membership update
  (Figure 5): Local-Membership, MNT-Summary, HT-Summary, MT-Summary and
  the designated-broadcaster criteria.
* :mod:`repro.core.multicast_routing` -- logical location-based multicast
  routing (Figure 6): mesh-tier and hypercube-tier multicast trees and
  their packet encapsulation.
* :mod:`repro.core.qos` -- QoS requirements, route feasibility and
  disjoint-route selection.
* :mod:`repro.core.protocol` -- :class:`HVDBProtocolAgent`, the runnable
  per-node protocol, and :class:`HVDBStack`, the registered ``hvdb``
  protocol stack that wires a whole simulated network with clustering +
  geo-unicast + HVDB agents, configured through the typed
  :class:`HVDBConfig` scenario section.
"""

from repro.core.identifiers import LogicalAddressSpace, LogicalAddress
from repro.core.hvdb import HVDBModel, ClusterHeadRole
from repro.core.route_maintenance import (
    LogicalRouteTable,
    LogicalRoute,
    LinkQoS,
)
from repro.core.membership import (
    LocalMembership,
    MNTSummary,
    HTSummary,
    MTSummary,
    BroadcasterCriterion,
    select_designated_broadcaster,
)
from repro.core.multicast_routing import (
    compute_mesh_tree,
    compute_hypercube_tree,
    MulticastForwardingState,
)
from repro.core.qos import QoSRequirement, RouteQoS, select_qos_route, QoSViolation
from repro.core.protocol import (
    HVDBConfig,
    HVDBParameters,
    HVDBProtocolAgent,
    HVDBStack,
    HVDB_PROTOCOL,
)

__all__ = [
    "LogicalAddressSpace",
    "LogicalAddress",
    "HVDBModel",
    "ClusterHeadRole",
    "LogicalRouteTable",
    "LogicalRoute",
    "LinkQoS",
    "LocalMembership",
    "MNTSummary",
    "HTSummary",
    "MTSummary",
    "BroadcasterCriterion",
    "select_designated_broadcaster",
    "compute_mesh_tree",
    "compute_hypercube_tree",
    "MulticastForwardingState",
    "QoSRequirement",
    "RouteQoS",
    "select_qos_route",
    "QoSViolation",
    "HVDBConfig",
    "HVDBParameters",
    "HVDBProtocolAgent",
    "HVDBStack",
    "HVDB_PROTOCOL",
]
