"""Logical location-based multicast routing (paper Figure 6) -- tree computation.

Two trees are computed per group:

* the **mesh-tier multicast tree** over the logical hypercubes known (from
  the MT-Summary) to contain group members, rooted at the source CH's own
  mesh node;
* the **hypercube-tier multicast tree** over the hypercube nodes known
  (from the HT-Summary) to host members, rooted at the CH where the packet
  entered the hypercube, and realised on the incomplete hypercube of
  currently-present CHs.

Both trees are cached per group and invalidated whenever the underlying
summary changes; they are encapsulated into the packet header when a data
packet is sent (steps 2 and 4 of Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.identifiers import MeshCoord
from repro.core.membership import HTSummary, MTSummary
from repro.hypercube.mesh import MeshGrid, MeshMulticastTree, mesh_multicast_tree
from repro.hypercube.multicast_tree import MulticastTree, greedy_multicast_tree
from repro.hypercube.topology import IncompleteHypercube


def compute_mesh_tree(
    mesh: MeshGrid,
    root: MeshCoord,
    mt_summary: MTSummary,
    group: int,
) -> MeshMulticastTree:
    """Mesh-tier multicast tree for ``group`` rooted at ``root``.

    The member set is every mesh node the MT-Summary lists for the group;
    the root is always included so the tree is well-formed even when the
    source's own hypercube has no members.
    """
    members = set(mt_summary.mesh_nodes_for(group))
    members.add(root)
    return mesh_multicast_tree(mesh, root, members)


def compute_hypercube_tree(
    cube: IncompleteHypercube,
    root_hnid: int,
    ht_summary: HTSummary,
    group: int,
) -> MulticastTree:
    """Hypercube-tier multicast tree for ``group`` rooted at ``root_hnid``."""
    members = set(ht_summary.hnids_for(group))
    members.add(root_hnid)
    return greedy_multicast_tree(cube, root_hnid, members)


@dataclass
class _CachedMeshTree:
    tree: MeshMulticastTree
    member_key: FrozenSet[MeshCoord]


@dataclass
class _CachedCubeTree:
    tree: MulticastTree
    member_key: FrozenSet[int]


@dataclass
class MulticastForwardingState:
    """Per-CH cache of multicast trees ("The multicast tree is then cached
    for future use", Section 4.3).

    Trees are keyed by group and remembered together with the member set
    they were computed for; a lookup with a different member set is a cache
    miss, so membership changes naturally invalidate stale trees.
    """

    mesh_trees: Dict[int, _CachedMeshTree] = field(default_factory=dict)
    cube_trees: Dict[Tuple[int, int], _CachedCubeTree] = field(default_factory=dict)
    mesh_tree_hits: int = 0
    mesh_tree_misses: int = 0
    cube_tree_hits: int = 0
    cube_tree_misses: int = 0

    # ------------------------------------------------------------------
    def mesh_tree(
        self,
        mesh: MeshGrid,
        root: MeshCoord,
        mt_summary: MTSummary,
        group: int,
    ) -> MeshMulticastTree:
        members = frozenset(mt_summary.mesh_nodes_for(group) | {root})
        cached = self.mesh_trees.get(group)
        if cached is not None and cached.member_key == members and cached.tree.root == root:
            self.mesh_tree_hits += 1
            return cached.tree
        self.mesh_tree_misses += 1
        tree = compute_mesh_tree(mesh, root, mt_summary, group)
        self.mesh_trees[group] = _CachedMeshTree(tree=tree, member_key=members)
        return tree

    def hypercube_tree(
        self,
        cube: IncompleteHypercube,
        root_hnid: int,
        ht_summary: HTSummary,
        group: int,
    ) -> MulticastTree:
        members = frozenset(ht_summary.hnids_for(group) | {root_hnid})
        key = (group, root_hnid)
        cached = self.cube_trees.get(key)
        if cached is not None and cached.member_key == members:
            self.cube_tree_hits += 1
            return cached.tree
        self.cube_tree_misses += 1
        tree = compute_hypercube_tree(cube, root_hnid, ht_summary, group)
        self.cube_trees[key] = _CachedCubeTree(tree=tree, member_key=members)
        return tree

    def invalidate_group(self, group: int) -> None:
        """Drop every cached tree for ``group`` (e.g. after a summary update)."""
        self.mesh_trees.pop(group, None)
        for key in [k for k in self.cube_trees if k[0] == group]:
            self.cube_trees.pop(key, None)

    def invalidate_all(self) -> None:
        self.mesh_trees.clear()
        self.cube_trees.clear()
