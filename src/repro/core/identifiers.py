"""Logical identifiers and the geographic mapping function (paper Section 4.1).

"We define four kinds of logical identifiers: Cluster Head ID (CHID),
Hypercube Node ID (HNID), Hypercube ID (HID), and Mesh Node ID (MNID).
The relation between CHID and HNID is one-to-one mapping, the relation
between HNID and HID is many-to-one mapping, and the relation between HID
and MNID is one-to-one mapping. ... A simple function is used to map each
CH to a hypercube node, using system parameters such as central
coordinate, length and width of the whole network, diameter of VCs, and
dimension of logical hypercubes."

This module implements exactly that mapping.  The whole network of
``cols x rows`` virtual circles is partitioned into rectangular blocks of
``2**ceil(k/2) x 2**floor(k/2)`` VCs; each block is one logical
k-dimensional hypercube (one mesh node).  Inside a block, the VC at local
offset ``(cx, cy)`` gets hypercube label HNID by interleaving the bits of
``cx`` into the even bit positions and the bits of ``cy`` into the odd bit
positions.  For ``k = 4`` this reproduces the label layout of the paper's
Figure 3 exactly::

    0000 0001 0100 0101
    0010 0011 0110 0111
    1000 1001 1100 1101
    1010 1011 1110 1111
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geo.geometry import Point
from repro.geo.grid import GridCoord, VirtualCircleGrid

#: Mesh node coordinate (block column, block row).
MeshCoord = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class LogicalAddress:
    """Full logical location of a cluster head / virtual circle."""

    chid: Optional[int]     #: cluster head id (node id); None when the VC has no CH
    hnid: int               #: hypercube node id (label within the hypercube)
    hid: int                #: hypercube id (index of the block)
    mnid: MeshCoord         #: mesh node id (block column, block row)
    vc_coord: GridCoord     #: virtual circle grid coordinate

    def bits(self, dimension: int) -> str:
        """The HNID as a bit string, paper-style (MSB first)."""
        return format(self.hnid, f"0{dimension}b")


class LogicalAddressSpace:
    """Maps virtual circles / positions to the logical identifier hierarchy.

    Parameters
    ----------
    grid:
        The virtual circle grid covering the network area.
    dimension:
        Hypercube dimension ``k`` (the paper suggests small values, e.g.
        3-6).  The grid's column count must be divisible by
        ``2**ceil(k/2)`` and the row count by ``2**floor(k/2)`` so the area
        tiles into complete blocks, mirroring the paper's 8x8-VC example
        that splits into four 4-dimensional hypercubes.
    """

    def __init__(self, grid: VirtualCircleGrid, dimension: int) -> None:
        if dimension < 1:
            raise ValueError("hypercube dimension must be at least 1")
        self.grid = grid
        self.dimension = dimension
        self.block_cols = 1 << math.ceil(dimension / 2)   # VCs per block along x
        self.block_rows = 1 << (dimension // 2)            # VCs per block along y
        if grid.cols % self.block_cols != 0 or grid.rows % self.block_rows != 0:
            raise ValueError(
                f"a {grid.cols}x{grid.rows} VC grid cannot be tiled by "
                f"{self.block_cols}x{self.block_rows} hypercube blocks "
                f"(dimension {dimension})"
            )
        self.mesh_cols = grid.cols // self.block_cols
        self.mesh_rows = grid.rows // self.block_rows

    # ------------------------------------------------------------------
    # forward mapping: geography -> logical identifiers
    # ------------------------------------------------------------------
    def mesh_coord_of(self, vc: GridCoord) -> MeshCoord:
        """The mesh node (hypercube block) containing a virtual circle."""
        self._check_vc(vc)
        return (vc[0] // self.block_cols, vc[1] // self.block_rows)

    def hid_of_mesh(self, mesh: MeshCoord) -> int:
        """HID of a mesh node: row-major index of the block."""
        mc, mr = mesh
        if not (0 <= mc < self.mesh_cols and 0 <= mr < self.mesh_rows):
            raise ValueError(f"mesh coordinate {mesh} outside {self.mesh_cols}x{self.mesh_rows} mesh")
        return mr * self.mesh_cols + mc

    def mesh_of_hid(self, hid: int) -> MeshCoord:
        """Inverse of :meth:`hid_of_mesh` (HID <-> MNID is one-to-one)."""
        if not 0 <= hid < self.mesh_cols * self.mesh_rows:
            raise ValueError(f"HID {hid} out of range")
        return (hid % self.mesh_cols, hid // self.mesh_cols)

    def hnid_of(self, vc: GridCoord) -> int:
        """Hypercube node label of a virtual circle within its block.

        Column bits go to even label positions (bit 0, 2, ...), row bits to
        odd positions (bit 1, 3, ...), which reproduces Figure 3.
        """
        self._check_vc(vc)
        local_col = vc[0] % self.block_cols
        local_row = vc[1] % self.block_rows
        label = 0
        col_bits = math.ceil(self.dimension / 2)
        row_bits = self.dimension // 2
        for i in range(col_bits):
            if (local_col >> i) & 1:
                label |= 1 << (2 * i)
        for i in range(row_bits):
            if (local_row >> i) & 1:
                label |= 1 << (2 * i + 1)
        return label

    def vc_of(self, hid: int, hnid: int) -> GridCoord:
        """Inverse mapping: (HID, HNID) -> virtual circle grid coordinate."""
        if not 0 <= hnid < (1 << self.dimension):
            raise ValueError(f"HNID {hnid} out of range for dimension {self.dimension}")
        mesh = self.mesh_of_hid(hid)
        col_bits = math.ceil(self.dimension / 2)
        row_bits = self.dimension // 2
        local_col = 0
        local_row = 0
        for i in range(col_bits):
            if (hnid >> (2 * i)) & 1:
                local_col |= 1 << i
        for i in range(row_bits):
            if (hnid >> (2 * i + 1)) & 1:
                local_row |= 1 << i
        return (mesh[0] * self.block_cols + local_col, mesh[1] * self.block_rows + local_row)

    def address_of_vc(self, vc: GridCoord, chid: Optional[int] = None) -> LogicalAddress:
        """Full logical address of a virtual circle (optionally carrying its CHID)."""
        mesh = self.mesh_coord_of(vc)
        return LogicalAddress(
            chid=chid,
            hnid=self.hnid_of(vc),
            hid=self.hid_of_mesh(mesh),
            mnid=mesh,
            vc_coord=vc,
        )

    def address_of_position(self, position: Point, chid: Optional[int] = None) -> LogicalAddress:
        """Logical address of the virtual circle containing a geographic position."""
        return self.address_of_vc(self.grid.coord_of(position), chid)

    # ------------------------------------------------------------------
    # region helpers
    # ------------------------------------------------------------------
    def vcs_of_hid(self, hid: int) -> List[GridCoord]:
        """All virtual circle coordinates belonging to a hypercube block."""
        mesh = self.mesh_of_hid(hid)
        base_col = mesh[0] * self.block_cols
        base_row = mesh[1] * self.block_rows
        return [
            (base_col + c, base_row + r)
            for r in range(self.block_rows)
            for c in range(self.block_cols)
        ]

    def hypercube_count(self) -> int:
        return self.mesh_cols * self.mesh_rows

    def region_center(self, hid: int) -> Point:
        """Geographic centre of a hypercube block's region."""
        mesh = self.mesh_of_hid(hid)
        width = self.grid.cell_width * self.block_cols
        height = self.grid.cell_height * self.block_rows
        return Point((mesh[0] + 0.5) * width, (mesh[1] + 0.5) * height)

    def is_border_vc(self, vc: GridCoord) -> bool:
        """True if the VC touches the border between two hypercube blocks.

        CHs of border VCs are the Border Cluster Heads (BCHs) that forward
        traffic between adjacent logical hypercubes (Section 4.1).  A VC on
        the outer edge of the whole network is only a border VC on sides
        where another block actually exists.
        """
        self._check_vc(vc)
        local_col = vc[0] % self.block_cols
        local_row = vc[1] % self.block_rows
        mesh = self.mesh_coord_of(vc)
        if local_col == 0 and mesh[0] > 0:
            return True
        if local_col == self.block_cols - 1 and mesh[0] < self.mesh_cols - 1:
            return True
        if local_row == 0 and mesh[1] > 0:
            return True
        if local_row == self.block_rows - 1 and mesh[1] < self.mesh_rows - 1:
            return True
        return False

    def _check_vc(self, vc: GridCoord) -> None:
        col, row = vc
        if not (0 <= col < self.grid.cols and 0 <= row < self.grid.rows):
            raise ValueError(f"virtual circle {vc} outside the {self.grid.cols}x{self.grid.rows} grid")
