"""QoS requirements and QoS-aware route selection.

The paper's QoS position (Sections 2.3 and 5): high availability and good
load balancing are the *prerequisites* for QoS in MANETs; concretely, a
session has delay and bandwidth constraints, the proactively maintained
local logical routes carry delay/bandwidth state, and the multiple
node-disjoint routes of the hypercube let a CH switch to an alternative
qualified route the moment the current one breaks, "without QoS being
degraded".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.route_maintenance import LogicalRoute


class QoSViolation(RuntimeError):
    """Raised when a session's QoS requirement cannot be satisfied."""


@dataclass(frozen=True, slots=True)
class QoSRequirement:
    """Per-session QoS constraints."""

    max_delay: float = float("inf")       #: end-to-end delay bound, seconds
    min_bandwidth: float = 0.0            #: required bandwidth, bits per second

    def __post_init__(self) -> None:
        if self.max_delay <= 0:
            raise ValueError("max_delay must be positive")
        if self.min_bandwidth < 0:
            raise ValueError("min_bandwidth must be non-negative")

    def is_met_by(self, delay: float, bandwidth: float) -> bool:
        return delay <= self.max_delay and bandwidth >= self.min_bandwidth


@dataclass(frozen=True, slots=True)
class RouteQoS:
    """Measured QoS of a candidate route."""

    delay: float
    bandwidth: float

    def satisfies(self, requirement: QoSRequirement) -> bool:
        return requirement.is_met_by(self.delay, self.bandwidth)


def route_satisfies(route: LogicalRoute, requirement: QoSRequirement) -> bool:
    """True if a local logical route meets the requirement."""
    return requirement.is_met_by(route.qos.delay, route.qos.bandwidth)


def select_qos_route(
    routes: Sequence[LogicalRoute],
    requirement: QoSRequirement,
    exclude_hnids: Optional[Iterable[int]] = None,
) -> Optional[LogicalRoute]:
    """Pick the best route satisfying ``requirement``.

    Candidates passing the QoS check are ranked by logical hop count, then
    delay; routes through any HNID in ``exclude_hnids`` (e.g. CHs known to
    have failed) are skipped.  Returns ``None`` when no candidate
    qualifies -- the caller may then fall back to the best-effort route or
    reject the session.
    """
    excluded = set(exclude_hnids) if exclude_hnids else set()
    qualified: List[LogicalRoute] = []
    for route in routes:
        if excluded and any(h in excluded for h in route.path[1:]):
            continue
        if route_satisfies(route, requirement):
            qualified.append(route)
    if not qualified:
        return None
    qualified.sort(key=lambda r: (r.logical_hops, r.qos.delay))
    return qualified[0]


def admission_control(
    routes: Sequence[LogicalRoute],
    requirement: QoSRequirement,
) -> LogicalRoute:
    """Admit a session only if some route satisfies its requirement.

    Raises :class:`QoSViolation` when no qualified route exists, mirroring
    hard-QoS (IntServ-style) admission; soft-QoS callers catch the
    exception and degrade gracefully.
    """
    route = select_qos_route(routes, requirement)
    if route is None:
        raise QoSViolation(
            f"no route satisfies delay <= {requirement.max_delay}s and "
            f"bandwidth >= {requirement.min_bandwidth} bps"
        )
    return route


def qos_satisfaction_ratio(
    delays: Sequence[float],
    requirement: QoSRequirement,
) -> float:
    """Fraction of observed end-to-end delays meeting the delay bound."""
    if not delays:
        return 0.0
    ok = sum(1 for d in delays if d <= requirement.max_delay)
    return ok / len(delays)
