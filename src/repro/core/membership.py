"""Summary-based membership update (paper Figure 5).

Membership information is summarised at three tiers:

* **Local-Membership** -- the set of groups one mobile node has joined;
  periodically reported to its CH (steps 1-2).
* **MNT-Summary** -- per CH: for each group, how many of its own cluster
  members (including itself) have joined; periodically sent to every CH in
  the same hypercube (step 3).
* **HT-Summary** -- per hypercube: for each group, which hypercube nodes
  (HNIDs) host members; one *designated* CH broadcasts it network-wide
  (step 4).
* **MT-Summary** -- per CH: for each group, which mesh nodes (logical
  hypercubes) contain members; computed from received HT-Summaries and
  consumed by the multicast routing algorithm (step 5).

The designated-broadcaster choice implements both criteria discussed in
Section 4.2 (largest own membership mass, or largest mass over itself plus
its 1-logical-hop neighbours).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.identifiers import MeshCoord


# ----------------------------------------------------------------------
# Local-Membership (mobile node tier, per node)
# ----------------------------------------------------------------------
@dataclass
class LocalMembership:
    """Groups one mobile node has currently joined."""

    node_id: int
    groups: Set[int] = field(default_factory=set)

    def join(self, group: int) -> None:
        self.groups.add(group)

    def leave(self, group: int) -> None:
        self.groups.discard(group)

    def is_member(self, group: int) -> bool:
        return group in self.groups

    def serialized_size(self) -> int:
        """Bytes needed to report this membership (4 bytes per group id + node id)."""
        return 8 + 4 * len(self.groups)

    def as_payload(self) -> Dict[str, object]:
        return {"node": self.node_id, "groups": sorted(self.groups)}


# ----------------------------------------------------------------------
# MNT-Summary (per cluster head)
# ----------------------------------------------------------------------
@dataclass
class MNTSummary:
    """Per-CH summary: group -> number of local members in this cluster."""

    ch_node_id: int
    hnid: int
    hid: int
    counts: Dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_local_reports(
        cls,
        ch_node_id: int,
        hnid: int,
        hid: int,
        reports: Iterable[LocalMembership],
    ) -> "MNTSummary":
        """Summarise the Local-Membership reports of the cluster's members."""
        counts: Dict[int, int] = {}
        for report in reports:
            for group in report.groups:
                counts[group] = counts.get(group, 0) + 1
        return cls(ch_node_id=ch_node_id, hnid=hnid, hid=hid, counts=counts)

    def groups(self) -> Set[int]:
        return {g for g, c in self.counts.items() if c > 0}

    def member_total(self) -> int:
        return sum(self.counts.values())

    def has_members(self, group: int) -> bool:
        return self.counts.get(group, 0) > 0

    def serialized_size(self) -> int:
        """Bytes for (group id, count) pairs plus the sender's logical ids."""
        return 12 + 6 * len(self.counts)

    def as_payload(self) -> Dict[str, object]:
        return {
            "ch": self.ch_node_id,
            "hnid": self.hnid,
            "hid": self.hid,
            "counts": dict(sorted(self.counts.items())),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "MNTSummary":
        return cls(
            ch_node_id=int(payload["ch"]),
            hnid=int(payload["hnid"]),
            hid=int(payload["hid"]),
            counts={int(g): int(c) for g, c in dict(payload["counts"]).items()},
        )


# ----------------------------------------------------------------------
# HT-Summary (per hypercube)
# ----------------------------------------------------------------------
@dataclass
class HTSummary:
    """Per-hypercube summary: group -> set of HNIDs that host members."""

    hid: int
    members_by_group: Dict[int, Set[int]] = field(default_factory=dict)

    @classmethod
    def from_mnt_summaries(cls, hid: int, summaries: Iterable[MNTSummary]) -> "HTSummary":
        members: Dict[int, Set[int]] = {}
        for summary in summaries:
            if summary.hid != hid:
                continue
            for group in summary.groups():
                members.setdefault(group, set()).add(summary.hnid)
        return cls(hid=hid, members_by_group=members)

    def merge(self, other: "HTSummary") -> "HTSummary":
        """Pointwise union with another HT-Summary of the same hypercube."""
        if other.hid != self.hid:
            raise ValueError("cannot merge HT summaries of different hypercubes")
        merged = {g: set(h) for g, h in self.members_by_group.items()}
        for group, hnids in other.members_by_group.items():
            merged.setdefault(group, set()).update(hnids)
        return HTSummary(hid=self.hid, members_by_group=merged)

    def groups(self) -> Set[int]:
        return {g for g, hnids in self.members_by_group.items() if hnids}

    def hnids_for(self, group: int) -> Set[int]:
        return set(self.members_by_group.get(group, set()))

    def has_group(self, group: int) -> bool:
        return bool(self.members_by_group.get(group))

    def serialized_size(self) -> int:
        """Bytes: hid + per group (group id + bitmap of HNIDs)."""
        per_group = 4 + 4  # group id + up-to-32-bit HNID bitmap
        return 4 + per_group * len(self.members_by_group)

    def as_payload(self) -> Dict[str, object]:
        return {
            "hid": self.hid,
            "groups": {str(g): sorted(h) for g, h in self.members_by_group.items()},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "HTSummary":
        return cls(
            hid=int(payload["hid"]),
            members_by_group={
                int(g): set(h) for g, h in dict(payload["groups"]).items()
            },
        )


# ----------------------------------------------------------------------
# MT-Summary (network-wide view at hypercube granularity, per CH)
# ----------------------------------------------------------------------
@dataclass
class MTSummary:
    """Per-CH network-wide summary: group -> set of mesh nodes with members."""

    members_by_group: Dict[int, Set[MeshCoord]] = field(default_factory=dict)

    def update_from_ht(self, ht: HTSummary, mesh_coord: MeshCoord) -> None:
        """Fold one hypercube's HT-Summary into the mesh-level view.

        The entry for ``mesh_coord`` is *replaced* (not unioned) for each
        group so that leaves eventually disappear once newer HT-Summaries
        stop listing the group.
        """
        groups_present = ht.groups()
        for group in groups_present:
            self.members_by_group.setdefault(group, set()).add(mesh_coord)
        for group, coords in list(self.members_by_group.items()):
            if group not in groups_present and mesh_coord in coords:
                coords.discard(mesh_coord)
                if not coords:
                    del self.members_by_group[group]

    def mesh_nodes_for(self, group: int) -> Set[MeshCoord]:
        return set(self.members_by_group.get(group, set()))

    def groups(self) -> Set[int]:
        return {g for g, coords in self.members_by_group.items() if coords}

    def serialized_size(self) -> int:
        total = 4
        for coords in self.members_by_group.values():
            total += 4 + 4 * len(coords)
        return total


# ----------------------------------------------------------------------
# Designated broadcaster selection (Section 4.2)
# ----------------------------------------------------------------------
class BroadcasterCriterion(enum.Enum):
    """Which CH of a hypercube broadcasts the HT-Summary network-wide."""

    #: always the same CH (smallest HNID) -- the "simplest way" the paper
    #: mentions and then criticises (single point of failure / bottleneck)
    FIXED = "fixed"
    #: CH whose own MNT-Summary contains the largest number of groups
    MOST_GROUPS = "most-groups"
    #: CH whose own MNT-Summary contains the largest number of group members
    MOST_MEMBERS = "most-members"
    #: CH maximising members over itself + its 1-logical-hop neighbours
    #: (the criterion the paper argues "can work well")
    NEIGHBORHOOD_MEMBERS = "neighborhood-members"


def select_designated_broadcaster(
    summaries: Mapping[int, MNTSummary],
    criterion: BroadcasterCriterion,
    logical_neighbors: Optional[Mapping[int, Iterable[int]]] = None,
) -> Optional[int]:
    """Pick the HNID of the CH that should broadcast the HT-Summary.

    ``summaries`` maps HNID -> MNT-Summary for every CH of one hypercube
    (each CH has the same collection after step 3 of Figure 5, so every CH
    evaluates this function identically and they agree without explicit
    coordination).  ``logical_neighbors`` maps HNID -> iterable of
    neighbouring HNIDs and is required for the neighbourhood criterion.
    Ties are broken towards the smallest HNID so the decision stays
    deterministic everywhere.
    """
    if not summaries:
        return None
    hnids = sorted(summaries.keys())
    if criterion is BroadcasterCriterion.FIXED:
        return hnids[0]
    if criterion is BroadcasterCriterion.MOST_GROUPS:
        return max(hnids, key=lambda h: (len(summaries[h].groups()), -h))
    if criterion is BroadcasterCriterion.MOST_MEMBERS:
        return max(hnids, key=lambda h: (summaries[h].member_total(), -h))
    if criterion is BroadcasterCriterion.NEIGHBORHOOD_MEMBERS:
        if logical_neighbors is None:
            raise ValueError("neighborhood criterion requires logical_neighbors")

        def mass(hnid: int) -> int:
            total = summaries[hnid].member_total()
            for nb in logical_neighbors.get(hnid, []):
                if nb in summaries:
                    total += summaries[nb].member_total()
            return total

        return max(hnids, key=lambda h: (mass(h), -h))
    raise ValueError(f"unknown criterion {criterion!r}")
