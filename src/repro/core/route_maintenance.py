"""Proactive local logical route maintenance (paper Figure 4).

Each CH maintains, for every other CH at most ``k`` logical hops away in
its hypercube, one or more *local logical routes* annotated with QoS state
(delay and bandwidth): "the information such as delay and bandwidth is
maintained in each specific local logical route, which is used for QoS
routing" (Section 4.1).

The table is filled by periodic beacon exchange with 1-logical-hop
neighbours (a distance-vector-style propagation bounded at ``k`` hops) --
the :class:`~repro.core.protocol.HVDBProtocolAgent` drives the message
exchange; this module holds the data structure and the update rules so
they can be tested in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class LinkQoS:
    """QoS state of one 1-logical-hop link."""

    delay: float          #: seconds across the logical link (multi-hop physical)
    bandwidth: float      #: available bandwidth in bits per second
    measured_at: float    #: simulation time of the measurement

    def combined_with(self, other: "LinkQoS") -> "LinkQoS":
        """QoS of the concatenation of two logical links."""
        return LinkQoS(
            delay=self.delay + other.delay,
            bandwidth=min(self.bandwidth, other.bandwidth),
            measured_at=min(self.measured_at, other.measured_at),
        )


@dataclass(frozen=True, slots=True)
class LogicalRoute:
    """A local logical route: the HNID path plus its aggregate QoS."""

    path: Tuple[int, ...]     #: HNIDs from this CH (inclusive) to the destination
    qos: LinkQoS

    @property
    def destination(self) -> int:
        return self.path[-1]

    @property
    def logical_hops(self) -> int:
        """Number of logical hops (paper Section 4.1): path length minus one."""
        return len(self.path) - 1

    def extended(self, next_hnid: int, link_qos: LinkQoS) -> "LogicalRoute":
        """Prepend-free extension: append one more logical hop at the far end."""
        return LogicalRoute(path=self.path + (next_hnid,), qos=self.qos.combined_with(link_qos))


class LogicalRouteTable:
    """Per-CH table of local logical routes, bounded at ``max_logical_hops``.

    Routes are indexed by destination HNID; multiple routes per destination
    are kept (up to ``routes_per_destination``), sorted by logical hop
    count then delay, so QoS routing can pick among alternatives and
    fail-over instantly when the preferred route breaks.
    """

    def __init__(
        self,
        own_hnid: int,
        max_logical_hops: int = 4,
        routes_per_destination: int = 3,
        expiry: float = 30.0,
    ) -> None:
        if max_logical_hops < 1:
            raise ValueError("max_logical_hops must be at least 1")
        if routes_per_destination < 1:
            raise ValueError("routes_per_destination must be at least 1")
        self.own_hnid = own_hnid
        self.max_logical_hops = max_logical_hops
        self.routes_per_destination = routes_per_destination
        self.expiry = expiry
        self._routes: Dict[int, List[LogicalRoute]] = {}
        self._neighbor_qos: Dict[int, LinkQoS] = {}

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def update_neighbor(self, neighbor_hnid: int, qos: LinkQoS) -> None:
        """Record / refresh the direct 1-logical-hop link to a neighbour CH."""
        if neighbor_hnid == self.own_hnid:
            raise ValueError("a CH has no logical link to itself")
        self._neighbor_qos[neighbor_hnid] = qos
        direct = LogicalRoute(path=(self.own_hnid, neighbor_hnid), qos=qos)
        self._insert(direct)

    def remove_neighbor(self, neighbor_hnid: int) -> None:
        """Drop the direct link and every route through that neighbour."""
        self._neighbor_qos.pop(neighbor_hnid, None)
        for dest in list(self._routes.keys()):
            kept = [
                r for r in self._routes[dest] if len(r.path) < 2 or r.path[1] != neighbor_hnid
            ]
            if kept:
                self._routes[dest] = kept
            else:
                del self._routes[dest]

    def integrate_advertisement(
        self, neighbor_hnid: int, advertised: Iterable[LogicalRoute], now: float
    ) -> int:
        """Merge routes advertised by a 1-logical-hop neighbour (Figure 4, step 2).

        Each advertised route (from the neighbour's perspective) is turned
        into a route of this CH by prefixing the direct link to the
        neighbour, provided the result stays within ``max_logical_hops``,
        does not loop back through this CH, and the direct link is known.
        Returns the number of routes accepted.
        """
        link = self._neighbor_qos.get(neighbor_hnid)
        if link is None:
            return 0
        accepted = 0
        for route in advertised:
            if route.path[0] != neighbor_hnid:
                continue
            if self.own_hnid in route.path:
                continue
            total_hops = route.logical_hops + 1
            if total_hops > self.max_logical_hops:
                continue
            combined = LogicalRoute(
                path=(self.own_hnid,) + route.path,
                qos=link.combined_with(route.qos),
            )
            if self._insert(combined):
                accepted += 1
        self.prune_expired(now)
        return accepted

    def _insert(self, route: LogicalRoute) -> bool:
        """Insert a route, keeping the per-destination list bounded and sorted."""
        dest = route.destination
        if dest == self.own_hnid:
            return False
        existing = self._routes.setdefault(dest, [])
        # replace any route with the identical path (refresh)
        existing[:] = [r for r in existing if r.path != route.path]
        existing.append(route)
        existing.sort(key=lambda r: (r.logical_hops, r.qos.delay))
        if len(existing) > self.routes_per_destination:
            del existing[self.routes_per_destination:]
        return route in existing

    def prune_expired(self, now: float) -> int:
        """Drop routes whose QoS measurement is older than ``expiry`` seconds."""
        dropped = 0
        for dest in list(self._routes.keys()):
            kept = [r for r in self._routes[dest] if now - r.qos.measured_at <= self.expiry]
            dropped += len(self._routes[dest]) - len(kept)
            if kept:
                self._routes[dest] = kept
            else:
                del self._routes[dest]
        return dropped

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def destinations(self) -> List[int]:
        return sorted(self._routes.keys())

    def routes_to(self, destination: int) -> List[LogicalRoute]:
        return list(self._routes.get(destination, []))

    def best_route(self, destination: int) -> Optional[LogicalRoute]:
        routes = self._routes.get(destination)
        return routes[0] if routes else None

    def neighbor_hnids(self) -> List[int]:
        return sorted(self._neighbor_qos.keys())

    def neighbor_qos(self, neighbor_hnid: int) -> Optional[LinkQoS]:
        return self._neighbor_qos.get(neighbor_hnid)

    def all_routes(self) -> List[LogicalRoute]:
        out: List[LogicalRoute] = []
        for routes in self._routes.values():
            out.extend(routes)
        return out

    def advertisement(self) -> List[LogicalRoute]:
        """Routes advertised in this CH's beacon (best route per destination).

        Advertising only the best route per destination keeps the beacon
        size linear in the number of reachable CHs, which is what makes the
        maintenance "local" in the paper's sense.
        """
        return [routes[0] for routes in self._routes.values() if routes]

    def route_count(self) -> int:
        return sum(len(routes) for routes in self._routes.values())

    def next_hop_chid(
        self, destination: int, chid_lookup: Mapping[int, int]
    ) -> Optional[int]:
        """CH node id of the first hop of the best route to ``destination``.

        ``chid_lookup`` maps HNID -> CH node id for the local hypercube.
        """
        route = self.best_route(destination)
        if route is None or route.logical_hops == 0:
            return None
        return chid_lookup.get(route.path[1])
