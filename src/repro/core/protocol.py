"""The runnable HVDB QoS multicast protocol.

:class:`HVDBProtocolAgent` implements, per node, the three algorithms of
the paper (Figures 4-6) on top of the clustering service, the logical
address space and the geographic unicast substrate:

* periodic **Local-Membership** reports from members to their CH and
  **MNT-Summary** / **HT-Summary** propagation with a designated
  network-wide broadcaster (Figure 5);
* periodic **route-maintenance beacons** between 1-logical-hop neighbour
  CHs carrying delay/bandwidth state (Figure 4);
* **logical location-based multicast forwarding** of data packets along a
  mesh-tier tree between hypercubes and a hypercube-tier tree inside each
  hypercube, with local delivery in every cluster that has members
  (Figure 6), including fail-over to alternative logical routes when a CH
  on the computed tree has disappeared.

:class:`HVDBStack` wires a whole simulated network: the VC grid, the
logical address space, the clustering service, one
:class:`~repro.unicast.router.GeoUnicastAgent` and one
:class:`HVDBProtocolAgent` per node, and keeps the shared
:class:`~repro.core.hvdb.HVDBModel` up to date as clusters change.  It is
the registered ``hvdb`` :class:`~repro.simulation.stack.ProtocolStack`;
scenario assembly configures it through the typed :class:`HVDBConfig`
section of a ``ScenarioConfig`` (grid axes ``hvdb.dimension``,
``hvdb.params``, ...).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.clustering.service import ClusteringService, ClusterSnapshot
from repro.core.hvdb import HVDBModel
from repro.core.identifiers import LogicalAddressSpace, MeshCoord
from repro.core.membership import (
    BroadcasterCriterion,
    HTSummary,
    LocalMembership,
    MNTSummary,
    MTSummary,
    select_designated_broadcaster,
)
from repro.core.multicast_routing import MulticastForwardingState
from repro.core.qos import QoSRequirement, select_qos_route
from repro.core.route_maintenance import LinkQoS, LogicalRoute, LogicalRouteTable
from repro.geo.grid import VirtualCircleGrid
from repro.hypercube.multicast_tree import MulticastTree
from repro.registry import register_protocol
from repro.simulation.agent import ProtocolAgent
from repro.simulation.engine import PeriodicTimer
from repro.simulation.network import Network
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.stack import ProtocolStack
from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

#: Protocol identifier of the HVDB multicast protocol.
HVDB_PROTOCOL = "hvdb"


@dataclass
class HVDBParameters:
    """Tunable protocol parameters (periods in seconds)."""

    local_membership_period: float = 3.0
    mnt_summary_period: float = 6.0
    ht_summary_period: float = 12.0
    route_beacon_period: float = 3.0
    max_logical_hops: int = 4
    routes_per_destination: int = 3
    route_expiry: float = 20.0
    broadcaster_criterion: BroadcasterCriterion = BroadcasterCriterion.NEIGHBORHOOD_MEMBERS
    report_expiry: float = 12.0
    data_payload_overhead: int = 48     #: bytes added by tree encapsulation


@dataclass
class HVDBConfig:
    """Typed HVDB section of a ``ScenarioConfig`` (grid axes ``hvdb.*``).

    Describes the logical structure (virtual-circle grid, hypercube
    dimension), clustering cadence, protocol timer parameters and
    per-group QoS requirements of an HVDB scenario.
    """

    vc_cols: int = 8                    #: virtual-circle grid columns
    vc_rows: int = 8                    #: virtual-circle grid rows
    dimension: int = 4                  #: hypercube dimension
    clustering_interval: float = 2.0    #: seconds between CH re-elections
    clustering_hysteresis: float = 0.5  #: score margin before a CH hand-over
    params: Optional[HVDBParameters] = None   #: protocol timers (None = defaults)
    qos_requirements: Dict[int, QoSRequirement] = field(default_factory=dict)


@dataclass
class HVDBAgentStats:
    """Per-agent protocol counters."""

    local_membership_sent: int = 0
    mnt_summaries_sent: int = 0
    ht_summaries_broadcast: int = 0
    route_beacons_sent: int = 0
    data_originated: int = 0
    data_forwarded_mesh: int = 0
    data_forwarded_cube: int = 0
    data_delivered_local: int = 0
    failovers: int = 0
    qos_rejections: int = 0


class HVDBProtocolAgent(ProtocolAgent):
    """Per-node implementation of the HVDB QoS multicast protocol."""

    protocol_name = HVDB_PROTOCOL

    def __init__(self, stack: "HVDBStack", params: Optional[HVDBParameters] = None) -> None:
        super().__init__()
        self.stack = stack
        self.params = params or stack.params
        self.stats = HVDBAgentStats()
        # member-side state
        self.local_membership: Optional[LocalMembership] = None
        # CH-side state
        self.member_reports: Dict[int, Tuple[LocalMembership, float]] = {}
        self.mnt_summaries: Dict[int, Tuple[MNTSummary, float]] = {}
        self.mt_summary = MTSummary()
        self.route_table: Optional[LogicalRouteTable] = None
        self.forwarding = MulticastForwardingState()
        self._timers: List[PeriodicTimer] = []
        self._seen_data: Set[Tuple[int, str]] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.local_membership = LocalMembership(self.node_id, set(self.node.groups))
        p = self.params
        jitter_rng = self.stack.rng
        self._timers = [
            PeriodicTimer(
                self.simulator, p.local_membership_period, self._send_local_membership,
                jitter=0.5, rng=jitter_rng,
            ),
            PeriodicTimer(
                self.simulator, p.route_beacon_period, self._send_route_beacons,
                jitter=0.3, rng=jitter_rng,
            ),
            PeriodicTimer(
                self.simulator, p.mnt_summary_period, self._send_mnt_summary,
                jitter=0.5, rng=jitter_rng,
            ),
            PeriodicTimer(
                self.simulator, p.ht_summary_period, self._maybe_broadcast_ht_summary,
                jitter=1.0, rng=jitter_rng,
            ),
        ]

    def on_stop(self) -> None:
        for timer in self._timers:
            timer.stop()
        self._timers = []

    def on_group_join(self, group: int) -> None:
        if self.local_membership is None:
            self.local_membership = LocalMembership(self.node_id, set())
        self.local_membership.join(group)
        # event-triggered report (Figure 5, step 1: membership is updated on
        # every join/leave, not only at the periodic report)
        if self._timers:
            self._send_local_membership()

    def on_group_leave(self, group: int) -> None:
        if self.local_membership is not None:
            self.local_membership.leave(group)
        if self._timers:
            self._send_local_membership()

    # ------------------------------------------------------------------
    # role helpers
    # ------------------------------------------------------------------
    @property
    def model(self) -> HVDBModel:
        return self.stack.model

    def is_cluster_head(self) -> bool:
        return self.model.is_cluster_head(self.node_id)

    def _my_ch(self) -> Optional[int]:
        """The CH serving this node (home cluster, or an overlapping one)."""
        return self.stack.clustering.serving_head(self.node_id)

    def _geo(self) -> GeoUnicastAgent:
        return self.node.agent(GEO_PROTOCOL)  # type: ignore[return-value]

    def _ensure_route_table(self) -> LogicalRouteTable:
        address = self.model.address_of_ch(self.node_id)
        if self.route_table is None or self.route_table.own_hnid != address.hnid:
            self.route_table = LogicalRouteTable(
                own_hnid=address.hnid,
                max_logical_hops=self.params.max_logical_hops,
                routes_per_destination=self.params.routes_per_destination,
                expiry=self.params.route_expiry,
            )
        return self.route_table

    def on_model_update(self) -> None:
        """Called by the stack whenever the HVDB model is rebuilt."""
        self.forwarding.invalidate_all()

    # ------------------------------------------------------------------
    # Figure 5, steps 1-2: Local-Membership reporting
    # ------------------------------------------------------------------
    def _send_local_membership(self) -> None:
        if self.local_membership is None:
            return
        self.local_membership.groups = set(self.node.groups)
        ch = self._my_ch()
        if ch is None:
            return
        packet = Packet(
            kind=PacketKind.CONTROL,
            protocol=HVDB_PROTOCOL,
            msg_type="local-membership",
            source=self.node_id,
            destination=ch,
            payload=self.local_membership.as_payload(),
            size_bytes=self.local_membership.serialized_size(),
            created_at=self.now,
        )
        self.stats.local_membership_sent += 1
        if ch == self.node_id:
            self._handle_local_membership(packet)
        else:
            self._geo().send(packet, ch)

    def _handle_local_membership(self, packet: Packet) -> None:
        payload = packet.payload
        report = LocalMembership(int(payload["node"]), set(payload["groups"]))
        self.member_reports[report.node_id] = (report, self.now)

    def _current_member_reports(self) -> List[LocalMembership]:
        """Non-expired Local-Membership reports plus this CH's own membership."""
        expiry = self.params.report_expiry
        reports = [
            report
            for report, received_at in self.member_reports.values()
            if self.now - received_at <= expiry and report.node_id != self.node_id
        ]
        own = LocalMembership(self.node_id, set(self.node.groups))
        reports.append(own)
        return reports

    # ------------------------------------------------------------------
    # Figure 5, step 3: MNT-Summary dissemination within the hypercube
    # ------------------------------------------------------------------
    def _send_mnt_summary(self) -> None:
        if not self.is_cluster_head():
            return
        address = self.model.address_of_ch(self.node_id)
        summary = MNTSummary.from_local_reports(
            self.node_id, address.hnid, address.hid, self._current_member_reports()
        )
        self.mnt_summaries[address.hnid] = (summary, self.now)
        peers = [ch for ch in self.model.chs_in_hypercube(address.hid) if ch != self.node_id]
        payload = summary.as_payload()
        for peer in peers:
            packet = Packet(
                kind=PacketKind.CONTROL,
                protocol=HVDB_PROTOCOL,
                msg_type="mnt-summary",
                source=self.node_id,
                destination=peer,
                payload=dict(payload),
                size_bytes=summary.serialized_size(),
                created_at=self.now,
            )
            self._geo().send(packet, peer)
        self.stats.mnt_summaries_sent += 1
        # keep the local MT view fresh from the local hypercube's data too
        self._refresh_own_mt_entry(address.hid)

    def _handle_mnt_summary(self, packet: Packet) -> None:
        if not self.is_cluster_head():
            return
        summary = MNTSummary.from_payload(packet.payload)
        my_hid = self.model.address_of_ch(self.node_id).hid
        if summary.hid != my_hid:
            return
        self.mnt_summaries[summary.hnid] = (summary, self.now)
        for group in summary.groups():
            self.forwarding.invalidate_group(group)

    def _collected_mnt_summaries(self, hid: int) -> Dict[int, MNTSummary]:
        expiry = self.params.report_expiry + self.params.mnt_summary_period
        return {
            hnid: summary
            for hnid, (summary, received_at) in self.mnt_summaries.items()
            if summary.hid == hid and self.now - received_at <= expiry
        }

    def _local_ht_summary(self, hid: int) -> HTSummary:
        return HTSummary.from_mnt_summaries(hid, self._collected_mnt_summaries(hid).values())

    def _refresh_own_mt_entry(self, hid: int) -> None:
        ht = self._local_ht_summary(hid)
        mesh_coord = self.stack.space.mesh_of_hid(hid)
        self.mt_summary.update_from_ht(ht, mesh_coord)

    # ------------------------------------------------------------------
    # Figure 5, step 4: designated CH broadcasts the HT-Summary
    # ------------------------------------------------------------------
    def _maybe_broadcast_ht_summary(self) -> None:
        if not self.is_cluster_head():
            return
        address = self.model.address_of_ch(self.node_id)
        summaries = self._collected_mnt_summaries(address.hid)
        if not summaries:
            return
        cube = self.model.hypercube(address.hid)
        neighbors = {
            hnid: cube.neighbors(hnid) if hnid in cube else []
            for hnid in summaries.keys()
        }
        designated = select_designated_broadcaster(
            summaries, self.params.broadcaster_criterion, neighbors
        )
        self._refresh_own_mt_entry(address.hid)
        if designated != address.hnid:
            return
        ht = self._local_ht_summary(address.hid)
        if not ht.groups():
            return
        payload = ht.as_payload()
        size = ht.serialized_size()
        self.stats.ht_summaries_broadcast += 1
        # Network-wide dissemination restricted to the backbone: one copy to
        # the entry CH of every other actual hypercube, which relays to the
        # CHs inside its hypercube.
        my_position = self.network.position_of(self.node_id)
        for hid in self.model.actual_hypercube_ids():
            if hid == address.hid:
                # distribute directly to the CHs of the local hypercube
                self._distribute_ht_summary_locally(payload, size, address.hid)
                continue
            entry = self.model.entry_ch(hid, towards=my_position)
            if entry is None:
                continue
            packet = Packet(
                kind=PacketKind.CONTROL,
                protocol=HVDB_PROTOCOL,
                msg_type="ht-summary",
                source=self.node_id,
                destination=entry,
                payload=dict(payload),
                headers={"relay": True},
                size_bytes=size,
                created_at=self.now,
            )
            self._geo().send(packet, entry)

    def _distribute_ht_summary_locally(self, payload: Dict[str, object], size: int, exclude_hid_source: Optional[int] = None) -> None:
        """Relay a received (or locally produced) HT-Summary to the CHs of my hypercube."""
        my_hid = self.model.address_of_ch(self.node_id).hid
        for peer in self.model.chs_in_hypercube(my_hid):
            if peer == self.node_id:
                continue
            packet = Packet(
                kind=PacketKind.CONTROL,
                protocol=HVDB_PROTOCOL,
                msg_type="ht-summary",
                source=self.node_id,
                destination=peer,
                payload=dict(payload),
                headers={"relay": False},
                size_bytes=size,
                created_at=self.now,
            )
            self._geo().send(packet, peer)

    def _handle_ht_summary(self, packet: Packet) -> None:
        if not self.is_cluster_head():
            return
        ht = HTSummary.from_payload(packet.payload)
        mesh_coord = self.stack.space.mesh_of_hid(ht.hid)
        self.mt_summary.update_from_ht(ht, mesh_coord)
        for group in ht.groups():
            self.forwarding.invalidate_group(group)
        if packet.headers.get("relay"):
            self._distribute_ht_summary_locally(packet.payload, packet.size_bytes)

    # ------------------------------------------------------------------
    # Figure 4: proactive local logical route maintenance
    # ------------------------------------------------------------------
    def _send_route_beacons(self) -> None:
        if not self.is_cluster_head():
            return
        table = self._ensure_route_table()
        table.prune_expired(self.now)
        address = self.model.address_of_ch(self.node_id)
        neighbors = self.model.logical_neighbors_of_ch(self.node_id)
        advertisement = [
            {"path": list(r.path), "delay": r.qos.delay, "bandwidth": r.qos.bandwidth}
            for r in table.advertisement()
        ]
        size = 16 + 14 * len(advertisement)
        for peer in neighbors:
            packet = Packet(
                kind=PacketKind.CONTROL,
                protocol=HVDB_PROTOCOL,
                msg_type="route-beacon",
                source=self.node_id,
                destination=peer,
                payload={
                    "hnid": address.hnid,
                    "hid": address.hid,
                    "sent_at": self.now,
                    "routes": advertisement,
                },
                size_bytes=size,
                created_at=self.now,
            )
            self._geo().send(packet, peer)
        if neighbors:
            self.stats.route_beacons_sent += 1

    def _handle_route_beacon(self, packet: Packet) -> None:
        if not self.is_cluster_head():
            return
        payload = packet.payload
        my_address = self.model.address_of_ch(self.node_id)
        if payload["hid"] != my_address.hid:
            return
        table = self._ensure_route_table()
        # measure the logical-link QoS from the beacon itself
        delay = max(1e-4, self.now - float(payload["sent_at"]))
        contenders = max(1, len(self.network.neighbors_of(self.node_id)))
        bandwidth = self.network.config.mac.bandwidth_bps / contenders \
            if hasattr(self.network.config.mac, "bandwidth_bps") else 1e6
        neighbor_hnid = int(payload["hnid"])
        link = LinkQoS(delay=delay, bandwidth=bandwidth, measured_at=self.now)
        table.update_neighbor(neighbor_hnid, link)
        advertised = [
            LogicalRoute(
                path=tuple(entry["path"]),
                qos=LinkQoS(
                    delay=float(entry["delay"]),
                    bandwidth=float(entry["bandwidth"]),
                    measured_at=self.now,
                ),
            )
            for entry in payload["routes"]
        ]
        table.integrate_advertisement(neighbor_hnid, advertised, self.now)

    # ------------------------------------------------------------------
    # Figure 6: data path
    # ------------------------------------------------------------------
    def send_multicast(self, group: int, payload, size_bytes: int = 512) -> None:
        """Application entry point: multicast ``payload`` to ``group`` (Figure 6, step 1)."""
        members = self.network.group_members(group)
        packet = Packet(
            kind=PacketKind.DATA,
            protocol=HVDB_PROTOCOL,
            msg_type="data",
            source=self.node_id,
            group=group,
            payload=payload,
            headers={"stage": "to-source-ch"},
            size_bytes=size_bytes + self.params.data_payload_overhead,
            created_at=self.now,
        )
        self.network.register_data_packet(packet, members)
        self.stats.data_originated += 1
        self._maybe_deliver_locally(packet)
        ch = self._my_ch()
        if ch is None:
            # no CH in this VC: fall back to handing the packet to the
            # nearest CH in the backbone, if any exists
            ch = self._nearest_backbone_ch()
            if ch is None:
                return
        if ch == self.node_id:
            self._source_ch_forward(packet)
        else:
            self._geo().send(packet, ch)

    def _nearest_backbone_ch(self) -> Optional[int]:
        heads = self.model.cluster_heads()
        if not heads:
            return None
        my_pos = self.network.position_of(self.node_id)
        return min(
            heads,
            key=lambda ch: (
                (self.network.position_of(ch).x - my_pos.x) ** 2
                + (self.network.position_of(ch).y - my_pos.y) ** 2
            ),
        )

    # -- packet reception ---------------------------------------------------
    def on_packet(self, packet: Packet, from_node: int) -> None:
        if packet.protocol != HVDB_PROTOCOL:
            return
        handler = {
            "local-membership": self._handle_local_membership,
            "mnt-summary": self._handle_mnt_summary,
            "ht-summary": self._handle_ht_summary,
            "route-beacon": self._handle_route_beacon,
        }.get(packet.msg_type)
        if handler is not None:
            handler(packet)
            return
        if packet.msg_type == "data":
            self._handle_data(packet, from_node)

    def _handle_data(self, packet: Packet, from_node: int) -> None:
        self._maybe_deliver_locally(packet)
        stage = packet.headers.get("stage", "local")
        if not self.is_cluster_head():
            return
        key = (packet.uid, stage)
        if key in self._seen_data:
            return
        self._seen_data.add(key)
        if stage == "to-source-ch":
            self._source_ch_forward(packet)
        elif stage == "mesh":
            self._mesh_entry_forward(packet)
        elif stage == "cube":
            self._cube_forward(packet)
        elif stage == "local-unicast":
            # explicitly addressed to a member in this cluster; local
            # delivery already happened in _maybe_deliver_locally
            pass

    def _maybe_deliver_locally(self, packet: Packet) -> None:
        if packet.group is not None and self.node.is_member(packet.group):
            self.node.deliver_to_application(packet)

    # -- Figure 6 step 2: source CH computes the mesh-tier tree -------------
    def _source_ch_forward(self, packet: Packet) -> None:
        group = packet.group
        if group is None:
            return
        address = self.model.address_of_ch(self.node_id)
        mesh = self.model.mesh()
        my_mesh = address.mnid
        if my_mesh not in mesh:
            return
        self._refresh_own_mt_entry(address.hid)
        tree = self.forwarding.mesh_tree(mesh, my_mesh, self.mt_summary, group)
        packet.headers["mesh_tree"] = tree.serialize()
        packet.headers["stage"] = "mesh"
        packet.headers["mesh_node"] = list(my_mesh)
        self._mesh_entry_forward(packet)

    # -- Figure 6 steps 3-4: forwarding between and within hypercubes -------
    def _mesh_entry_forward(self, packet: Packet) -> None:
        """Called at the CH where the packet enters a hypercube (or at the source CH)."""
        from repro.hypercube.mesh import MeshMulticastTree

        group = packet.group
        if group is None:
            return
        tree_data = packet.headers.get("mesh_tree")
        if tree_data is None:
            return
        tree = MeshMulticastTree.deserialize(tree_data)
        my_mesh = self.model.address_of_ch(self.node_id).mnid
        children = tree.children_of(my_mesh)
        my_position = self.network.position_of(self.node_id)
        for child in children:
            hid = self.stack.space.hid_of_mesh(child)
            entry = self.model.entry_ch(hid, towards=my_position)
            if entry is None:
                continue
            copy = packet.copy_for_forwarding()
            copy.headers["stage"] = "mesh"
            copy.headers["mesh_node"] = list(child)
            copy.logical_hops += 1
            self.stats.data_forwarded_mesh += 1
            self._geo().send(copy, entry)
        # within this hypercube: switch to the hypercube-tier tree
        self._start_cube_stage(packet)

    def _start_cube_stage(self, packet: Packet) -> None:
        group = packet.group
        address = self.model.address_of_ch(self.node_id)
        cube = self.model.hypercube(address.hid)
        ht = self._local_ht_summary(address.hid)
        tree = self.forwarding.hypercube_tree(cube, address.hnid, ht, group)
        copy = packet.copy_for_forwarding()
        copy.headers["stage"] = "cube"
        copy.headers["cube_tree"] = tree.serialize()
        copy.headers["cube_hid"] = address.hid
        self._cube_forward(copy)

    def _cube_forward(self, packet: Packet) -> None:
        """Forward along the encapsulated hypercube-tier multicast tree."""
        group = packet.group
        if group is None:
            return
        tree_data = packet.headers.get("cube_tree")
        hid = packet.headers.get("cube_hid")
        if tree_data is None or hid is None:
            return
        address = self.model.address_of_ch(self.node_id)
        if address.hid != hid:
            return
        tree = MulticastTree.deserialize(tree_data)
        children = tree.children_of(address.hnid)
        for child_hnid in children:
            target_ch = self.model.chid_at(hid, child_hnid)
            if target_ch is None or not self.network.node(target_ch).alive:
                target_ch = self._failover_target(hid, child_hnid, tree, group)
                if target_ch is None:
                    continue
                self.stats.failovers += 1
            copy = packet.copy_for_forwarding()
            copy.logical_hops += 1
            self.stats.data_forwarded_cube += 1
            self._record_route_usage(address.hnid, child_hnid, group)
            self._geo().send(copy, target_ch)
        self._deliver_to_cluster_members(packet)

    def _failover_target(
        self, hid: int, missing_hnid: int, tree: MulticastTree, group: int
    ) -> Optional[int]:
        """Fail-over when the CH at ``missing_hnid`` has disappeared.

        The availability mechanism of the paper: the incomplete hypercube
        still offers alternative logical routes, so the subtree behind the
        missing node is re-attached through a present CH.  We pick the CH
        of the closest (Hamming-wise) present hypercube node that serves a
        member in the orphaned subtree.
        """
        # collect the members in the orphaned subtree
        orphaned: List[int] = []
        stack = [missing_hnid]
        while stack:
            hnid = stack.pop()
            if hnid in tree.members and hnid != missing_hnid:
                orphaned.append(hnid)
            stack.extend(tree.children_of(hnid))
        cube = self.model.hypercube(hid)
        candidates = [h for h in orphaned if h in cube]
        if not candidates:
            return None
        my_hnid = self.model.address_of_ch(self.node_id).hnid
        best = min(candidates, key=lambda h: bin(h ^ my_hnid).count("1"))
        return self.model.chid_at(hid, best)

    def _record_route_usage(self, from_hnid: int, to_hnid: int, group: int) -> None:
        """Exercise the QoS route table for the logical hop being taken."""
        if self.route_table is None:
            return
        requirement = self.stack.qos_requirements.get(group)
        if requirement is None:
            return
        routes = self.route_table.routes_to(to_hnid)
        if not routes:
            return
        chosen = select_qos_route(routes, requirement)
        if chosen is None:
            self.stats.qos_rejections += 1

    # -- Figure 6 step 6: local delivery within the cluster ------------------
    def _deliver_to_cluster_members(self, packet: Packet) -> None:
        group = packet.group
        if group is None:
            return
        local_members = [
            report.node_id
            for report, received_at in self.member_reports.values()
            if group in report.groups
            and self.now - received_at <= self.params.report_expiry
            and report.node_id != self.node_id
        ]
        if self.node.is_member(group):
            self.node.deliver_to_application(packet)
        if not local_members:
            return
        self.stats.data_delivered_local += 1
        # one local broadcast reaches members within radio range …
        broadcast_copy = packet.copy_for_forwarding()
        broadcast_copy.headers["stage"] = "local"
        self.node.broadcast(broadcast_copy)
        # … and members currently out of range get a directed copy
        neighbor_ids = set(self.network.neighbors_of(self.node_id))
        for member in local_members:
            if member in neighbor_ids:
                continue
            copy = packet.copy_for_forwarding()
            copy.headers["stage"] = "local-unicast"
            copy.destination = member
            self._geo().send(copy, member)


@register_protocol(HVDB_PROTOCOL)
class HVDBStack(ProtocolStack):
    """Builds and owns the shared HVDB state of one simulated network.

    The constructor is the direct-wiring path (unit tests build a
    network by hand and call ``install(network)``): it takes an
    :class:`HVDBConfig` and/or individual field overrides, so the
    defaults live in :class:`HVDBConfig` alone.  When scenario assembly
    calls ``install(network, config)``, the ``ScenarioConfig``'s HVDB
    section (and seed) replaces the constructor settings.
    """

    name = HVDB_PROTOCOL

    def __init__(
        self,
        config: Optional[HVDBConfig] = None,
        seed: Optional[int] = None,
        **overrides,
    ) -> None:
        section = config or HVDBConfig()
        if overrides:       # individual HVDBConfig fields, e.g. dimension=3
            section = dataclasses.replace(section, **overrides)
        self.network: Optional[Network] = None
        self.seed = seed
        self.agents: Dict[int, HVDBProtocolAgent] = {}
        self.model_rebuilds = 0
        self._apply_section(section)

    def _apply_section(self, section: HVDBConfig) -> None:
        self.vc_cols = section.vc_cols
        self.vc_rows = section.vc_rows
        self.dimension = section.dimension
        self.clustering_interval = section.clustering_interval
        self.clustering_hysteresis = section.clustering_hysteresis
        self.params = section.params or HVDBParameters()
        self.qos_requirements: Dict[int, QoSRequirement] = dict(
            section.qos_requirements or {}
        )

    # ------------------------------------------------------------------
    def install(self, network: Network, config=None) -> None:
        """Wire the shared HVDB state and attach agents to every node.

        ``config`` is a ``ScenarioConfig`` whose :class:`HVDBConfig`
        section (and seed) replaces the constructor settings; ``None``
        keeps them (the direct-wiring path).
        """
        if config is not None:
            self._apply_section(config.hvdb)
            self.seed = config.seed
        self.network = network
        self.grid = VirtualCircleGrid(network.config.area, self.vc_cols, self.vc_rows)
        self.space = LogicalAddressSpace(self.grid, self.dimension)
        self.clustering = ClusteringService(
            network,
            self.grid,
            update_interval=self.clustering_interval,
            hysteresis=self.clustering_hysteresis,
        )
        self.rng = random.Random(self.seed)
        self.model = HVDBModel(self.space, self.clustering.snapshot())
        self.clustering.add_listener(self._on_cluster_update)
        for node in network.nodes.values():
            if not node.has_agent(GEO_PROTOCOL):
                node.attach_agent(GeoUnicastAgent())
            agent = HVDBProtocolAgent(self, self.params)
            node.attach_agent(agent)
            self.agents[node.node_id] = agent

    def start(self) -> None:
        """Start clustering updates and the network (agents included)."""
        self.clustering.start()
        self.network.start()

    def backbone_nodes(self) -> List[int]:
        """The cluster heads: the virtual dynamic backbone."""
        return self.model.cluster_heads()

    def set_qos_requirement(self, group: int, requirement: QoSRequirement) -> None:
        self.qos_requirements[group] = requirement

    # ------------------------------------------------------------------
    def _on_cluster_update(self, snapshot: ClusterSnapshot) -> None:
        self.model = HVDBModel(self.space, snapshot)
        self.model_rebuilds += 1
        for agent in self.agents.values():
            agent.on_model_update()

    # ------------------------------------------------------------------
    # aggregate statistics
    # ------------------------------------------------------------------
    def aggregate_stats(self) -> Dict[str, int]:
        totals: Dict[str, int] = {
            "local_membership_sent": 0,
            "mnt_summaries_sent": 0,
            "ht_summaries_broadcast": 0,
            "route_beacons_sent": 0,
            "data_originated": 0,
            "data_forwarded_mesh": 0,
            "data_forwarded_cube": 0,
            "data_delivered_local": 0,
            "failovers": 0,
            "qos_rejections": 0,
        }
        for agent in self.agents.values():
            stats = agent.stats
            for key in totals:
                totals[key] += getattr(stats, key)
        totals["model_rebuilds"] = self.model_rebuilds
        totals["cluster_head_changes"] = self.clustering.head_changes
        return totals
