"""The HVDB model: three tiers built on top of a clustering snapshot.

Given the static logical address space (VC grid + hypercube dimension) and
a snapshot of which virtual circles currently have cluster heads, this
module materialises the two backbone tiers of the paper's Figure 1:

* the **Hypercube Tier** -- one (generally incomplete) logical hypercube
  per block region, whose present nodes are exactly the VCs that currently
  have a CH ("A logical hypercube node becomes an actual one only when a
  CH exists in the VC", Section 3);
* the **Mesh Tier** -- the 2-D mesh whose nodes are the blocks that
  currently contain at least one CH ("A mesh node becomes an actual mesh
  node only when a logical hypercube exists in it", Section 3).

It also classifies CHs into Border Cluster Heads (BCHs) and Inner Cluster
Heads (ICHs) (Section 4.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.clustering.service import ClusterSnapshot
from repro.core.identifiers import LogicalAddress, LogicalAddressSpace, MeshCoord
from repro.geo.geometry import Point, distance
from repro.geo.grid import GridCoord
from repro.hypercube.mesh import MeshGrid
from repro.hypercube.topology import IncompleteHypercube


class ClusterHeadRole(enum.Enum):
    """Role of a node in the HVDB."""

    NOT_CLUSTER_HEAD = "not-ch"
    INNER = "ich"     #: Inner Cluster Head: forwards within its hypercube
    BORDER = "bch"    #: Border Cluster Head: forwards between hypercubes


@dataclass(frozen=True, slots=True)
class HypercubeNodeInfo:
    """One actual hypercube node: its logical address and the CH serving it."""

    address: LogicalAddress
    ch_node_id: int
    role: ClusterHeadRole


class HVDBModel:
    """The logical Hypercube-based Virtual Dynamic Backbone.

    The model is a pure function of ``(address_space, snapshot)``: it holds
    no protocol state of its own and is cheap to rebuild whenever the
    clustering changes.
    """

    def __init__(self, address_space: LogicalAddressSpace, snapshot: ClusterSnapshot) -> None:
        self.space = address_space
        self.snapshot = snapshot
        self._ch_by_vc: Dict[GridCoord, int] = dict(snapshot.heads)
        self._vc_by_ch: Dict[int, GridCoord] = {
            ch: coord for coord, ch in snapshot.heads.items()
        }
        self._hypercubes: Dict[int, IncompleteHypercube] = {}
        self._node_info: Dict[int, HypercubeNodeInfo] = {}
        self._mesh: Optional[MeshGrid] = None
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        space = self.space
        present_by_hid: Dict[int, Set[int]] = {}
        for vc, ch in self._ch_by_vc.items():
            address = space.address_of_vc(vc, chid=ch)
            present_by_hid.setdefault(address.hid, set()).add(address.hnid)
            role = (
                ClusterHeadRole.BORDER
                if space.is_border_vc(vc)
                else ClusterHeadRole.INNER
            )
            self._node_info[ch] = HypercubeNodeInfo(address, ch, role)

        for hid in range(space.hypercube_count()):
            present = present_by_hid.get(hid, set())
            self._hypercubes[hid] = IncompleteHypercube(space.dimension, present)

        present_mesh = [
            space.mesh_of_hid(hid)
            for hid, cube in self._hypercubes.items()
            if len(cube) > 0
        ]
        self._mesh = MeshGrid(space.mesh_cols, space.mesh_rows, present_mesh)

    # ------------------------------------------------------------------
    # cluster-head level queries
    # ------------------------------------------------------------------
    def cluster_heads(self) -> List[int]:
        """Node ids of every cluster head in the backbone."""
        return sorted(self._vc_by_ch.keys())

    def is_cluster_head(self, node_id: int) -> bool:
        return node_id in self._vc_by_ch

    def role_of(self, node_id: int) -> ClusterHeadRole:
        info = self._node_info.get(node_id)
        return info.role if info is not None else ClusterHeadRole.NOT_CLUSTER_HEAD

    def address_of_ch(self, node_id: int) -> LogicalAddress:
        info = self._node_info.get(node_id)
        if info is None:
            raise KeyError(f"node {node_id} is not a cluster head")
        return info.address

    def chid_at(self, hid: int, hnid: int) -> Optional[int]:
        """CH node id serving hypercube node (hid, hnid), or ``None`` if absent."""
        vc = self.space.vc_of(hid, hnid)
        return self._ch_by_vc.get(vc)

    def ch_of_vc(self, vc: GridCoord) -> Optional[int]:
        return self._ch_by_vc.get(vc)

    def vc_of_ch(self, node_id: int) -> GridCoord:
        return self._vc_by_ch[node_id]

    def border_cluster_heads(self, hid: Optional[int] = None) -> List[int]:
        """All BCHs, optionally restricted to one hypercube."""
        out = []
        for node_id, info in self._node_info.items():
            if info.role is not ClusterHeadRole.BORDER:
                continue
            if hid is not None and info.address.hid != hid:
                continue
            out.append(node_id)
        return sorted(out)

    def inner_cluster_heads(self, hid: Optional[int] = None) -> List[int]:
        out = []
        for node_id, info in self._node_info.items():
            if info.role is not ClusterHeadRole.INNER:
                continue
            if hid is not None and info.address.hid != hid:
                continue
            out.append(node_id)
        return sorted(out)

    # ------------------------------------------------------------------
    # hypercube tier
    # ------------------------------------------------------------------
    def hypercube(self, hid: int) -> IncompleteHypercube:
        """The (incomplete) logical hypercube of block ``hid``."""
        return self._hypercubes[hid]

    def hypercube_of_ch(self, node_id: int) -> IncompleteHypercube:
        return self._hypercubes[self.address_of_ch(node_id).hid]

    def hypercube_ids(self) -> List[int]:
        return sorted(self._hypercubes.keys())

    def actual_hypercube_ids(self) -> List[int]:
        """HIDs of hypercubes that currently contain at least one CH."""
        return sorted(hid for hid, cube in self._hypercubes.items() if len(cube) > 0)

    def chs_in_hypercube(self, hid: int) -> List[int]:
        """Node ids of every CH inside hypercube ``hid``."""
        out = []
        for hnid in self._hypercubes[hid].nodes():
            ch = self.chid_at(hid, hnid)
            if ch is not None:
                out.append(ch)
        return sorted(out)

    def logical_neighbors_of_ch(self, node_id: int) -> List[int]:
        """CHs one logical hop away inside the same hypercube.

        These are exactly the nodes the CH exchanges proactive route
        maintenance beacons with (Figure 4, step 1).
        """
        address = self.address_of_ch(node_id)
        cube = self._hypercubes[address.hid]
        if address.hnid not in cube:
            return []
        out = []
        for neighbor_hnid in cube.neighbors(address.hnid):
            ch = self.chid_at(address.hid, neighbor_hnid)
            if ch is not None:
                out.append(ch)
        return sorted(out)

    # ------------------------------------------------------------------
    # mesh tier
    # ------------------------------------------------------------------
    def mesh(self) -> MeshGrid:
        """The mesh tier over currently-actual hypercubes."""
        assert self._mesh is not None
        return self._mesh

    def mesh_coord_of_ch(self, node_id: int) -> MeshCoord:
        return self.address_of_ch(node_id).mnid

    def entry_ch(self, hid: int, towards: Optional[Point] = None) -> Optional[int]:
        """Pick the CH a packet entering hypercube ``hid`` should be sent to.

        The natural choice is the border CH geographically closest to where
        the packet comes from (``towards``); with no direction given, the
        CH closest to the region centre is used.  Returns ``None`` when the
        hypercube has no CH at all.
        """
        chs = self.chs_in_hypercube(hid)
        if not chs:
            return None
        reference = towards if towards is not None else self.space.region_center(hid)
        # prefer border CHs when any exist (they are the designated
        # inter-hypercube forwarders), otherwise fall back to any CH.
        border = [ch for ch in chs if self.role_of(ch) is ClusterHeadRole.BORDER]
        pool = border if border else chs

        def key(ch: int) -> float:
            vc = self._vc_by_ch[ch]
            return distance(self.space.grid.vcc(vc), reference)

        return min(pool, key=key)

    # ------------------------------------------------------------------
    # diagnostics used by experiments
    # ------------------------------------------------------------------
    def backbone_summary(self) -> Dict[str, float]:
        """Aggregate structural statistics (used by the model-construction bench)."""
        cubes = [cube for cube in self._hypercubes.values() if len(cube) > 0]
        total_nodes = sum(len(cube) for cube in cubes)
        total_possible = (1 << self.space.dimension) * self.space.hypercube_count()
        connected = sum(1 for cube in cubes if cube.is_connected())
        return {
            "cluster_heads": float(len(self._vc_by_ch)),
            "actual_hypercubes": float(len(cubes)),
            "possible_hypercubes": float(self.space.hypercube_count()),
            "hypercube_occupancy": total_nodes / total_possible if total_possible else 0.0,
            "connected_hypercube_fraction": connected / len(cubes) if cubes else 0.0,
            "mesh_nodes": float(len(self._mesh)) if self._mesh is not None else 0.0,
            "border_cluster_heads": float(len(self.border_cluster_heads())),
            "inner_cluster_heads": float(len(self.inner_cluster_heads())),
        }
