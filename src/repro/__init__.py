"""repro -- reproduction of "A Novel QoS Multicast Model in Mobile Ad Hoc Networks" (IPDPS 2005).

The package implements the paper's HVDB (Hypercube-based Virtual Dynamic
Backbone) QoS multicast model and protocol, every substrate it depends on
(a discrete-event MANET simulator, mobility models, mobility-prediction
clustering, location-based unicast routing, hypercube mathematics), the
baseline protocols it is compared against, and the experiment harness that
regenerates the evaluation.  Protocols, radios, MACs and mobility models
are pluggable components resolved by registered name through
:mod:`repro.registry`, so scenarios assemble declaratively and third-party
protocol stacks plug into every sweep, benchmark and CLI surface.

Quickstart::

    from repro.experiments import ScenarioConfig, run_scenario

    result = run_scenario(ScenarioConfig(protocol="hvdb", n_nodes=80), duration=90.0)
    print(result.report.delivery.delivery_ratio)

Parameter grids run through the parallel orchestrator -- see
:mod:`repro.experiments.orchestrator` or the command line::

    python -m repro.experiments list
    python -m repro.experiments run e2_scalability --workers 4

See ``examples/`` for richer, commented scenarios, ``README.md`` for the
package map and commands, and ``docs/architecture.md`` for the layering
of the simulation stack and the orchestrator's run lifecycle.
"""

__version__ = "1.0.0"

__all__ = [
    "geo",
    "hypercube",
    "mobility",
    "simulation",
    "clustering",
    "unicast",
    "core",
    "baselines",
    "metrics",
    "experiments",
]
