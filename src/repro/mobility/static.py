"""Static placement: nodes never move.

Used for deterministic structural tests (HVDB construction, identifier
mapping) and as the zero-speed end of mobility sweeps.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.geo.area import Area
from repro.geo.geometry import Point, Vector
from repro.mobility.base import MobilityModel, NodeMotionState


class StaticMobility(MobilityModel):
    """Nodes stay where they were placed.

    Positions may be supplied explicitly via ``positions``; any node
    without an explicit position is placed uniformly at random.
    """

    def __init__(
        self,
        area: Area,
        node_ids: Iterable[int],
        positions: Optional[Dict[int, Point]] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._explicit = dict(positions) if positions else {}
        for node_id, position in self._explicit.items():
            if not area.contains(position):
                raise ValueError(f"node {node_id} position {position} outside area")
        super().__init__(area, node_ids, seed)

    def _initial_state(self, node_id: int) -> NodeMotionState:
        position = self._explicit.get(node_id)
        if position is None:
            position = self._uniform_position()
        return NodeMotionState(position, Vector(0.0, 0.0))

    def _step(self, node_id: int, state: NodeMotionState, dt: float) -> NodeMotionState:
        return state
