"""Common interface for mobility models."""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.geo.area import Area, BoundaryPolicy
from repro.geo.geometry import Point, Vector


@dataclass(frozen=True, slots=True)
class NodeMotionState:
    """Kinematic state of one node at one instant."""

    position: Point
    velocity: Vector

    @property
    def speed(self) -> float:
        return self.velocity.magnitude

    @property
    def heading(self) -> float:
        return self.velocity.heading


class MobilityModel(abc.ABC):
    """Base class for all mobility models.

    A model owns the motion state of a fixed set of node identifiers.  The
    simulator calls :meth:`advance` once per mobility epoch; models keep
    any per-node bookkeeping (waypoints, pause timers, velocity memory)
    internally.

    Subclasses must implement :meth:`_initial_state` and :meth:`_step`.
    """

    #: boundary handling used when a step would leave the area
    boundary_policy: BoundaryPolicy = BoundaryPolicy.REFLECT

    def __init__(self, area: Area, node_ids: Iterable[int], seed: Optional[int] = None) -> None:
        self.area = area
        self.node_ids: List[int] = list(node_ids)
        if len(set(self.node_ids)) != len(self.node_ids):
            raise ValueError("duplicate node ids")
        self.rng = random.Random(seed)
        self._states: Dict[int, NodeMotionState] = {}
        for node_id in self.node_ids:
            self._states[node_id] = self._initial_state(node_id)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def position(self, node_id: int) -> Point:
        return self._states[node_id].position

    def velocity(self, node_id: int) -> Vector:
        return self._states[node_id].velocity

    def state(self, node_id: int) -> NodeMotionState:
        return self._states[node_id]

    def states(self) -> Dict[int, NodeMotionState]:
        return dict(self._states)

    def set_position(self, node_id: int, position: Point) -> None:
        """Force a node to a given position (scenario setup helper)."""
        if not self.area.contains(position):
            raise ValueError(f"position {position} outside the deployment area")
        self._states[node_id] = replace(self._states[node_id], position=position)

    def advance(self, dt: float) -> None:
        """Advance every node by ``dt`` seconds."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0:
            return
        for node_id in self.node_ids:
            new_state = self._step(node_id, self._states[node_id], dt)
            position, velocity = self.area.apply_boundary(
                new_state.position, new_state.velocity, self.boundary_policy
            )
            self._states[node_id] = NodeMotionState(position, velocity)

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _initial_state(self, node_id: int) -> NodeMotionState:
        """Create the initial kinematic state of ``node_id``."""

    @abc.abstractmethod
    def _step(self, node_id: int, state: NodeMotionState, dt: float) -> NodeMotionState:
        """Advance ``node_id`` by ``dt`` seconds and return the new state.

        Implementations may return positions outside the area; the caller
        applies the boundary policy afterwards.
        """

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _uniform_position(self) -> Point:
        return self.area.random_point(self.rng)
