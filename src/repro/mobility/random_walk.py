"""Random Walk (random direction at fixed epochs) mobility."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.geo.area import Area
from repro.geo.geometry import Point, Vector, heading_to_vector
from repro.mobility.base import MobilityModel, NodeMotionState


class RandomWalkMobility(MobilityModel):
    """Memoryless random walk.

    Every ``epoch`` seconds each node draws a fresh uniformly random
    heading and a speed from ``[min_speed, max_speed]`` and moves in a
    straight line until the next epoch.  Boundary handling (reflection by
    default) is inherited from :class:`MobilityModel`.
    """

    def __init__(
        self,
        area: Area,
        node_ids: Iterable[int],
        min_speed: float = 1.0,
        max_speed: float = 5.0,
        epoch: float = 10.0,
        seed: Optional[int] = None,
    ) -> None:
        if min_speed < 0 or max_speed < min_speed:
            raise ValueError("require 0 <= min_speed <= max_speed")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.epoch = epoch
        self._until_redraw: Dict[int, float] = {}
        super().__init__(area, node_ids, seed)

    def _draw_velocity(self) -> Vector:
        heading = self.rng.uniform(-math.pi, math.pi)
        speed = self.rng.uniform(self.min_speed, self.max_speed)
        return heading_to_vector(heading, speed)

    def _initial_state(self, node_id: int) -> NodeMotionState:
        self._until_redraw[node_id] = self.epoch
        return NodeMotionState(self._uniform_position(), self._draw_velocity())

    def _step(self, node_id: int, state: NodeMotionState, dt: float) -> NodeMotionState:
        position = state.position
        velocity = state.velocity
        remaining = dt
        until = self._until_redraw[node_id]
        while remaining > 1e-12:
            chunk = min(remaining, until)
            position = Point(position.x + velocity.dx * chunk, position.y + velocity.dy * chunk)
            remaining -= chunk
            until -= chunk
            if until <= 1e-12:
                velocity = self._draw_velocity()
                until = self.epoch
        self._until_redraw[node_id] = until
        return NodeMotionState(position, velocity)
