"""Reference Point Group Mobility (RPGM).

The paper's motivating applications -- battlefield units, disaster-relief
teams, conference rooms -- move as coordinated groups.  RPGM models this:
each group has a logical centre following a random-waypoint trajectory, and
each member wanders around a reference point rigidly attached to that
centre.
"""

from __future__ import annotations

import math

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.geo.area import Area, BoundaryPolicy
from repro.geo.geometry import Point, Vector
from repro.mobility.base import MobilityModel, NodeMotionState
from repro.mobility.random_waypoint import RandomWaypointMobility


class ReferencePointGroupMobility(MobilityModel):
    """RPGM: nodes wander around moving group reference points.

    Parameters
    ----------
    groups:
        Mapping from group id to the list of member node ids.  Every node
        id passed to the model must belong to exactly one group.
    group_speed:
        Maximum speed of the group centres (their waypoint model uses
        ``[1, group_speed]``).
    member_radius:
        Maximum distance of a member's wander offset from its reference
        point.
    member_speed:
        Maximum speed at which a member chases its (moving) target point.
    """

    def __init__(
        self,
        area: Area,
        node_ids: Iterable[int],
        groups: Mapping[int, Sequence[int]],
        group_speed: float = 10.0,
        member_radius: float = 50.0,
        member_speed: float = 5.0,
        pause_time: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        node_list = list(node_ids)
        covered: List[int] = []
        for members in groups.values():
            covered.extend(members)
        if sorted(covered) != sorted(node_list):
            raise ValueError("groups must partition the node id set exactly")
        if group_speed <= 0 or member_speed <= 0 or member_radius < 0:
            raise ValueError("speeds must be positive and radius non-negative")
        self.groups = {gid: list(members) for gid, members in groups.items()}
        self.member_radius = member_radius
        self.member_speed = member_speed
        self._node_group: Dict[int, int] = {}
        for gid, members in self.groups.items():
            for node_id in members:
                self._node_group[node_id] = gid
        # The group centres follow their own random-waypoint model.
        self._centers = RandomWaypointMobility(
            area,
            list(self.groups.keys()),
            min_speed=1.0,
            max_speed=group_speed,
            pause_time=pause_time,
            seed=seed,
        )
        self._offsets: Dict[int, Vector] = {}
        super().__init__(area, node_list, seed)

    def group_of(self, node_id: int) -> int:
        """Group id the node belongs to."""
        return self._node_group[node_id]

    def group_center(self, group_id: int) -> Point:
        """Current position of a group's logical centre."""
        return self._centers.position(group_id)

    def _random_offset(self) -> Vector:
        angle = self.rng.uniform(-math.pi, math.pi)
        radius = self.rng.uniform(0.0, self.member_radius)
        return Vector(radius * math.cos(angle), radius * math.sin(angle))

    def _initial_state(self, node_id: int) -> NodeMotionState:
        gid = self._node_group[node_id]
        center = self._centers.position(gid)
        offset = self._random_offset()
        self._offsets[node_id] = offset
        position, _ = self.area.apply_boundary(
            center.translate(offset), Vector(0.0, 0.0), BoundaryPolicy.CLAMP
        )
        return NodeMotionState(position, Vector(0.0, 0.0))

    def advance(self, dt: float) -> None:
        # Move the group centres once per epoch, then the members.
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0:
            return
        self._centers.advance(dt)
        # occasionally re-draw member offsets so members mill about
        for node_id in self.node_ids:
            if self.rng.random() < min(1.0, 0.1 * dt):
                self._offsets[node_id] = self._random_offset()
        super().advance(dt)

    def _step(self, node_id: int, state: NodeMotionState, dt: float) -> NodeMotionState:
        gid = self._node_group[node_id]
        center = self._centers.position(gid)
        target = center.translate(self._offsets[node_id])
        direction = state.position.vector_to(target)
        gap = direction.magnitude
        max_step = self.member_speed * dt
        if gap <= max_step or gap == 0.0:
            new_position = target
            velocity = Vector(0.0, 0.0)
        else:
            unit = direction.normalized()
            velocity = unit.scaled(self.member_speed)
            new_position = Point(
                state.position.x + velocity.dx * dt,
                state.position.y + velocity.dy * dt,
            )
        return NodeMotionState(new_position, velocity)

