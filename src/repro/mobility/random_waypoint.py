"""Random Waypoint mobility.

The de-facto standard model for MANET protocol evaluation: each node picks
a uniformly random destination in the area, travels towards it in a
straight line at a speed drawn uniformly from ``[min_speed, max_speed]``,
pauses for ``pause_time`` seconds on arrival, then repeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.geo.area import Area
from repro.geo.geometry import Point, Vector, distance, move_towards
from repro.mobility.base import MobilityModel, NodeMotionState


@dataclass
class _WaypointState:
    destination: Point
    speed: float
    pause_remaining: float


class RandomWaypointMobility(MobilityModel):
    """Classic random waypoint model.

    Parameters
    ----------
    min_speed, max_speed:
        Speed range in m/s.  ``min_speed`` should be kept strictly positive
        to avoid the well-known speed-decay degeneracy of the model.
    pause_time:
        Pause duration at each waypoint, seconds.
    """

    def __init__(
        self,
        area: Area,
        node_ids: Iterable[int],
        min_speed: float = 1.0,
        max_speed: float = 10.0,
        pause_time: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ValueError("require 0 < min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause_time must be non-negative")
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self._trips: Dict[int, _WaypointState] = {}
        super().__init__(area, node_ids, seed)

    def _new_trip(self, origin: Point) -> _WaypointState:
        destination = self._uniform_position()
        speed = self.rng.uniform(self.min_speed, self.max_speed)
        return _WaypointState(destination, speed, 0.0)

    def _initial_state(self, node_id: int) -> NodeMotionState:
        position = self._uniform_position()
        trip = self._new_trip(position)
        self._trips[node_id] = trip
        velocity = _velocity_towards(position, trip.destination, trip.speed)
        return NodeMotionState(position, velocity)

    def _step(self, node_id: int, state: NodeMotionState, dt: float) -> NodeMotionState:
        trip = self._trips[node_id]
        position = state.position
        remaining = dt
        while remaining > 1e-12:
            if trip.pause_remaining > 0:
                consumed = min(trip.pause_remaining, remaining)
                trip.pause_remaining -= consumed
                remaining -= consumed
                if trip.pause_remaining > 0:
                    return NodeMotionState(position, Vector(0.0, 0.0))
                trip = self._new_trip(position)
                self._trips[node_id] = trip
                continue
            gap = distance(position, trip.destination)
            step = trip.speed * remaining
            if step < gap:
                position = move_towards(position, trip.destination, step)
                remaining = 0.0
            else:
                # arrive and start pausing
                time_to_arrive = gap / trip.speed if trip.speed > 0 else 0.0
                position = trip.destination
                remaining -= time_to_arrive
                trip.pause_remaining = self.pause_time
                if self.pause_time == 0.0:
                    trip = self._new_trip(position)
                    self._trips[node_id] = trip
        velocity = (
            Vector(0.0, 0.0)
            if trip.pause_remaining > 0
            else _velocity_towards(position, trip.destination, trip.speed)
        )
        return NodeMotionState(position, velocity)


def _velocity_towards(origin: Point, target: Point, speed: float) -> Vector:
    direction = origin.vector_to(target).normalized()
    return direction.scaled(speed)
