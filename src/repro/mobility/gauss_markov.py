"""Gauss-Markov mobility with tunable temporal correlation."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from repro.geo.area import Area
from repro.geo.geometry import Point, Vector, heading_to_vector
from repro.mobility.base import MobilityModel, NodeMotionState


class GaussMarkovMobility(MobilityModel):
    """Gauss-Markov mobility model.

    Speed and heading evolve as first-order autoregressive processes:

    ``s(t+1) = alpha * s(t) + (1 - alpha) * mean_speed + sqrt(1 - alpha^2) * N(0, speed_std)``

    and analogously for the heading around ``mean_heading``.  ``alpha = 1``
    gives straight-line motion, ``alpha = 0`` gives a memoryless walk.
    Velocity memory makes residence-time prediction meaningful, which is
    what the clustering layer's CH election exploits.
    """

    def __init__(
        self,
        area: Area,
        node_ids: Iterable[int],
        mean_speed: float = 5.0,
        speed_std: float = 1.0,
        heading_std: float = 0.5,
        alpha: float = 0.85,
        update_interval: float = 1.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if mean_speed < 0 or speed_std < 0 or heading_std < 0:
            raise ValueError("speed/heading parameters must be non-negative")
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.mean_speed = mean_speed
        self.speed_std = speed_std
        self.heading_std = heading_std
        self.alpha = alpha
        self.update_interval = update_interval
        self._speed: Dict[int, float] = {}
        self._heading: Dict[int, float] = {}
        self._mean_heading: Dict[int, float] = {}
        self._until_update: Dict[int, float] = {}
        super().__init__(area, node_ids, seed)

    def _initial_state(self, node_id: int) -> NodeMotionState:
        heading = self.rng.uniform(-math.pi, math.pi)
        speed = max(0.0, self.rng.gauss(self.mean_speed, self.speed_std))
        self._speed[node_id] = speed
        self._heading[node_id] = heading
        self._mean_heading[node_id] = heading
        self._until_update[node_id] = self.update_interval
        return NodeMotionState(self._uniform_position(), heading_to_vector(heading, speed))

    def _update_velocity(self, node_id: int) -> None:
        a = self.alpha
        noise_scale = math.sqrt(max(0.0, 1.0 - a * a))
        speed = (
            a * self._speed[node_id]
            + (1.0 - a) * self.mean_speed
            + noise_scale * self.rng.gauss(0.0, self.speed_std)
        )
        heading = (
            a * self._heading[node_id]
            + (1.0 - a) * self._mean_heading[node_id]
            + noise_scale * self.rng.gauss(0.0, self.heading_std)
        )
        self._speed[node_id] = max(0.0, speed)
        self._heading[node_id] = heading

    def _step(self, node_id: int, state: NodeMotionState, dt: float) -> NodeMotionState:
        position = state.position
        remaining = dt
        until = self._until_update[node_id]
        while remaining > 1e-12:
            chunk = min(remaining, until)
            velocity = heading_to_vector(self._heading[node_id], self._speed[node_id])
            position = Point(position.x + velocity.dx * chunk, position.y + velocity.dy * chunk)
            remaining -= chunk
            until -= chunk
            if until <= 1e-12:
                self._update_velocity(node_id)
                until = self.update_interval
        self._until_update[node_id] = until
        velocity = heading_to_vector(self._heading[node_id], self._speed[node_id])
        return NodeMotionState(position, velocity)
