"""Mobility models (System S3).

MANET nodes move; the clustering layer's mobility-prediction CH election
and every evaluation experiment need realistic motion.  Five models are
provided, all sharing the :class:`~repro.mobility.base.MobilityModel`
interface (per-node state advanced in discrete time steps inside an
:class:`~repro.geo.area.Area`):

* :class:`~repro.mobility.static.StaticMobility` -- nodes never move
  (useful for deterministic structural tests).
* :class:`~repro.mobility.random_waypoint.RandomWaypointMobility` -- the
  standard MANET evaluation model: pick a destination, travel at a random
  speed, pause, repeat.
* :class:`~repro.mobility.random_walk.RandomWalkMobility` -- memoryless
  direction changes at fixed epochs.
* :class:`~repro.mobility.gauss_markov.GaussMarkovMobility` -- temporally
  correlated velocity (tunable memory), avoids the sharp-turn artefacts of
  random walk.
* :class:`~repro.mobility.group_mobility.ReferencePointGroupMobility` --
  RPGM: groups follow a logical centre (battlefield platoons, rescue
  teams), matching the paper's motivating scenarios.

The scenario-facing models are registered by name with
:func:`repro.registry.register_mobility` (``random_waypoint``, ``static``,
``random_walk``, ``gauss_markov``), so ``ScenarioConfig.mobility`` selects
one declaratively and sweeps can use it as a grid axis; each factory takes
``(config, node_ids)`` and derives speeds/seeding from the config.
"""

from repro.mobility.base import MobilityModel, NodeMotionState
from repro.mobility.static import StaticMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.group_mobility import ReferencePointGroupMobility
from repro.registry import register_mobility


def _static_if_stationary(config, node_ids):
    """Shared degradation rule: ``max_speed <= 0`` means nobody moves."""
    if config.max_speed <= 0:
        return StaticMobility(config.area(), node_ids, seed=config.seed)
    return None


def _min_speed(config) -> float:
    """Speed floor shared by the moving models: 10% of max, at least 0.5."""
    return max(0.5, config.max_speed * 0.1)


@register_mobility("random_waypoint")
def _random_waypoint(config, node_ids) -> MobilityModel:
    """The default evaluation model; ``max_speed <= 0`` degrades to static."""
    return _static_if_stationary(config, node_ids) or RandomWaypointMobility(
        config.area(),
        node_ids,
        min_speed=_min_speed(config),
        max_speed=config.max_speed,
        pause_time=config.pause_time,
        seed=config.seed,
    )


@register_mobility("static")
def _static(config, node_ids) -> MobilityModel:
    """Nodes never move, regardless of ``max_speed``."""
    return StaticMobility(config.area(), node_ids, seed=config.seed)


@register_mobility("random_walk")
def _random_walk(config, node_ids) -> MobilityModel:
    """Memoryless direction changes at fixed epochs."""
    return _static_if_stationary(config, node_ids) or RandomWalkMobility(
        config.area(),
        node_ids,
        min_speed=_min_speed(config),
        max_speed=config.max_speed,
        seed=config.seed,
    )


@register_mobility("gauss_markov")
def _gauss_markov(config, node_ids) -> MobilityModel:
    """Temporally correlated velocity; mean speed = half the maximum."""
    return _static_if_stationary(config, node_ids) or GaussMarkovMobility(
        config.area(),
        node_ids,
        mean_speed=config.max_speed / 2.0,
        seed=config.seed,
    )

__all__ = [
    "MobilityModel",
    "NodeMotionState",
    "StaticMobility",
    "RandomWaypointMobility",
    "RandomWalkMobility",
    "GaussMarkovMobility",
    "ReferencePointGroupMobility",
]
