"""Mobility models (System S3).

MANET nodes move; the clustering layer's mobility-prediction CH election
and every evaluation experiment need realistic motion.  Five models are
provided, all sharing the :class:`~repro.mobility.base.MobilityModel`
interface (per-node state advanced in discrete time steps inside an
:class:`~repro.geo.area.Area`):

* :class:`~repro.mobility.static.StaticMobility` -- nodes never move
  (useful for deterministic structural tests).
* :class:`~repro.mobility.random_waypoint.RandomWaypointMobility` -- the
  standard MANET evaluation model: pick a destination, travel at a random
  speed, pause, repeat.
* :class:`~repro.mobility.random_walk.RandomWalkMobility` -- memoryless
  direction changes at fixed epochs.
* :class:`~repro.mobility.gauss_markov.GaussMarkovMobility` -- temporally
  correlated velocity (tunable memory), avoids the sharp-turn artefacts of
  random walk.
* :class:`~repro.mobility.group_mobility.ReferencePointGroupMobility` --
  RPGM: groups follow a logical centre (battlefield platoons, rescue
  teams), matching the paper's motivating scenarios.
"""

from repro.mobility.base import MobilityModel, NodeMotionState
from repro.mobility.static import StaticMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.group_mobility import ReferencePointGroupMobility

__all__ = [
    "MobilityModel",
    "NodeMotionState",
    "StaticMobility",
    "RandomWaypointMobility",
    "RandomWalkMobility",
    "GaussMarkovMobility",
    "ReferencePointGroupMobility",
]
