"""Mobility prediction: how long will a node stay inside its virtual circle?

The CH election criterion (1) of the paper is "the highest probability ...
to stay for longer time within the cluster".  With position and velocity
known (GPS assumption), the natural estimator is the time until the node's
straight-line extrapolation crosses the circle boundary.
"""

from __future__ import annotations

import math

from repro.geo.geometry import Point, Vector

#: Residence time reported for a node that is not moving (effectively "stays
#: forever"); kept finite so comparisons and averaging stay well-behaved.
STATIONARY_RESIDENCE_TIME = 1e6


def predicted_residence_time(
    position: Point, velocity: Vector, center: Point, radius: float
) -> float:
    """Predicted time (seconds) until the node exits the circle.

    Solves ``|position + velocity * t - center| = radius`` for the smallest
    non-negative ``t``.  Returns :data:`STATIONARY_RESIDENCE_TIME` when the
    node is (nearly) stationary, and ``0.0`` when the node is already
    outside the circle and moving away (it contributes no stability to this
    cluster).
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    rel = Vector(position.x - center.x, position.y - center.y)
    speed_sq = velocity.dx * velocity.dx + velocity.dy * velocity.dy
    dist_sq = rel.dx * rel.dx + rel.dy * rel.dy
    outside = dist_sq > radius * radius

    if speed_sq < 1e-12:
        return 0.0 if outside else STATIONARY_RESIDENCE_TIME

    # |rel + v t|^2 = r^2  ->  (v.v) t^2 + 2 (rel.v) t + (rel.rel - r^2) = 0
    a = speed_sq
    b = 2.0 * (rel.dx * velocity.dx + rel.dy * velocity.dy)
    c = dist_sq - radius * radius
    disc = b * b - 4.0 * a * c
    if disc < 0:
        # trajectory never intersects the circle boundary
        return 0.0 if outside else STATIONARY_RESIDENCE_TIME
    sqrt_disc = math.sqrt(disc)
    t1 = (-b - sqrt_disc) / (2.0 * a)
    t2 = (-b + sqrt_disc) / (2.0 * a)
    if not outside:
        # inside: exit time is the larger root (the smaller is in the past
        # or negative)
        exit_time = t2
        return max(0.0, exit_time)
    # outside the circle: if it will enter (t1 > 0) the residence time is the
    # chord duration; otherwise it never resides in the circle.
    if t2 <= 0:
        return 0.0
    entry = max(t1, 0.0)
    return max(0.0, t2 - entry)


def residence_probability(
    position: Point,
    velocity: Vector,
    center: Point,
    radius: float,
    horizon: float,
) -> float:
    """Probability-like score that the node stays in the circle for ``horizon``.

    Deterministic surrogate used for ranking: 1.0 when the predicted
    residence time exceeds the horizon, linear below it.  The paper's
    criterion only needs an ordering ("highest probability ... to stay for
    longer time"), which this preserves.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    t = predicted_residence_time(position, velocity, center, radius)
    return min(1.0, t / horizon)
