"""Mobility-prediction, location-based clustering (System S5).

The HVDB model "uses the mobility prediction and location-based clustering
technique in [23] to form stable clusters, which elects an MN as a CH when
it satisfies the following criteria: (1) it has the highest probability, in
comparison to other MNs within the same cluster, to stay for longer time
within the cluster; (2) it has the minimum distance from the center of the
cluster." (paper Section 1)

* :mod:`repro.clustering.mobility_prediction` -- predicted residence time
  of a node inside a virtual circle given its position and velocity.
* :mod:`repro.clustering.cluster` -- cluster state and the CH election
  rule (residence time first, distance to the VCC as tie-breaker), with
  re-election hysteresis for stability.
* :mod:`repro.clustering.service` -- the network-wide clustering service
  that maintains one cluster per virtual circle as nodes move.
"""

from repro.clustering.mobility_prediction import predicted_residence_time
from repro.clustering.cluster import Cluster, ClusterHeadCandidate, elect_cluster_head
from repro.clustering.service import ClusteringService, ClusterSnapshot

__all__ = [
    "predicted_residence_time",
    "Cluster",
    "ClusterHeadCandidate",
    "elect_cluster_head",
    "ClusteringService",
    "ClusterSnapshot",
]
