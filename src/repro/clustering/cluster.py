"""Cluster state and cluster-head election.

Election rule (paper Section 1 / [23]): among the CH-capable nodes whose
home virtual circle is this cluster, pick the one with

1. the longest predicted residence time in the circle, and
2. (tie-break) the smallest distance to the Virtual Circle Center (VCC).

Re-election hysteresis keeps the current CH unless a challenger is clearly
better, which is what makes the backbone "non-dynamic" in the paper's
terminology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.geo.geometry import Point, distance
from repro.geo.grid import GridCoord, VirtualCircle


@dataclass(frozen=True, slots=True)
class ClusterHeadCandidate:
    """One CH-capable node's election inputs."""

    node_id: int
    residence_time: float
    distance_to_vcc: float

    def score(self) -> Tuple[float, float, int]:
        """Sort key implementing the paper's two criteria.

        Larger residence time wins; then smaller distance to the VCC; the
        node id is the final deterministic tie-break.
        """
        return (-self.residence_time, self.distance_to_vcc, self.node_id)


def elect_cluster_head(
    candidates: Sequence[ClusterHeadCandidate],
    current_head: Optional[int] = None,
    hysteresis: float = 0.0,
) -> Optional[int]:
    """Elect a cluster head from ``candidates``.

    ``hysteresis`` in ``[0, 1)`` keeps the incumbent unless the best
    challenger's residence time exceeds the incumbent's by more than the
    given fraction (stability-first behaviour of [23]).  Returns ``None``
    when there are no candidates (the VCC is then just "a placeholder",
    paper Section 3).
    """
    if not candidates:
        return None
    if not 0.0 <= hysteresis < 1.0:
        raise ValueError("hysteresis must be in [0, 1)")
    ranked = sorted(candidates, key=lambda c: c.score())
    best = ranked[0]
    if current_head is not None:
        incumbent = next((c for c in candidates if c.node_id == current_head), None)
        if incumbent is not None:
            if best.node_id == incumbent.node_id:
                return incumbent.node_id
            threshold = incumbent.residence_time * (1.0 + hysteresis)
            if best.residence_time <= threshold:
                return incumbent.node_id
    return best.node_id


@dataclass
class Cluster:
    """One cluster: the virtual circle, its CH and its members."""

    circle: VirtualCircle
    head: Optional[int] = None
    members: Set[int] = field(default_factory=set)

    @property
    def coord(self) -> GridCoord:
        return self.circle.coord

    @property
    def has_head(self) -> bool:
        return self.head is not None

    @property
    def size(self) -> int:
        return len(self.members)

    def is_member(self, node_id: int) -> bool:
        return node_id in self.members

    def member_list(self) -> List[int]:
        return sorted(self.members)
