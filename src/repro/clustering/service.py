"""Network-wide clustering service.

Maintains one cluster per virtual circle as nodes move: every
``update_interval`` simulated seconds the service re-associates nodes with
their home circles, recomputes each node's predicted residence time and
re-runs the CH election with hysteresis.  The service uses only
information each node locally has under the paper's assumptions (own GPS
position/velocity, the static VC grid geometry), so running it centrally
in the simulator is an accounting convenience, not an information
shortcut; the control cost of CH election beacons is charged separately
through the HVDB agent's cluster beacons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.clustering.cluster import Cluster, ClusterHeadCandidate, elect_cluster_head
from repro.clustering.mobility_prediction import predicted_residence_time
from repro.geo.geometry import distance
from repro.geo.grid import GridCoord, VirtualCircleGrid
from repro.simulation.engine import PeriodicTimer
from repro.simulation.network import Network


@dataclass
class ClusterSnapshot:
    """Immutable view of the clustering state at one instant."""

    time: float
    heads: Dict[GridCoord, int]
    members: Dict[GridCoord, Set[int]]
    node_home: Dict[int, GridCoord]

    def head_of(self, coord: GridCoord) -> Optional[int]:
        return self.heads.get(coord)

    def cluster_of(self, node_id: int) -> Optional[GridCoord]:
        return self.node_home.get(node_id)

    def cluster_head_ids(self) -> List[int]:
        return sorted(set(self.heads.values()))

    def occupied_coords(self) -> List[GridCoord]:
        return sorted(self.heads.keys())


class ClusteringService:
    """Keeps per-virtual-circle clusters up to date as the network evolves."""

    def __init__(
        self,
        network: Network,
        grid: VirtualCircleGrid,
        update_interval: float = 2.0,
        hysteresis: float = 0.2,
    ) -> None:
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.network = network
        self.grid = grid
        self.update_interval = update_interval
        self.hysteresis = hysteresis
        self.clusters: Dict[GridCoord, Cluster] = {
            circle.coord: Cluster(circle=circle) for circle in grid
        }
        self._node_home: Dict[int, GridCoord] = {}
        self._timer: Optional[PeriodicTimer] = None
        self.head_changes = 0
        self._listeners: List[Callable[[ClusterSnapshot], None]] = []
        self.update()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start periodic re-clustering on the network's simulator."""
        if self._timer is not None:
            raise RuntimeError("clustering service already started")
        self._timer = PeriodicTimer(
            self.network.simulator,
            self.update_interval,
            self.update,
            initial_delay=self.update_interval,
            priority=-5,
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def add_listener(self, callback: Callable[[ClusterSnapshot], None]) -> None:
        """Register a callback invoked with a snapshot after every update."""
        self._listeners.append(callback)

    # ------------------------------------------------------------------
    # clustering
    # ------------------------------------------------------------------
    def update(self) -> ClusterSnapshot:
        """Re-associate nodes with clusters and re-elect cluster heads."""
        now = self.network.simulator.now
        # reset membership
        for cluster in self.clusters.values():
            cluster.members.clear()
        self._node_home.clear()

        for node_id, node in self.network.nodes.items():
            if not node.alive:
                continue
            position = self.network.position_of(node_id)
            home = self.grid.coord_of(position)
            self._node_home[node_id] = home
            self.clusters[home].members.add(node_id)

        for coord, cluster in self.clusters.items():
            candidates: List[ClusterHeadCandidate] = []
            circle = cluster.circle
            for node_id in cluster.members:
                node = self.network.node(node_id)
                if not node.ch_capable:
                    continue
                position = self.network.position_of(node_id)
                velocity = self.network.velocity_of(node_id)
                residence = predicted_residence_time(
                    position, velocity, circle.center, circle.radius
                )
                candidates.append(
                    ClusterHeadCandidate(
                        node_id=node_id,
                        residence_time=residence,
                        distance_to_vcc=distance(position, circle.center),
                    )
                )
            previous = cluster.head
            # the incumbent must still be a member of this cluster to stand
            incumbent = previous if any(c.node_id == previous for c in candidates) else None
            new_head = elect_cluster_head(candidates, incumbent, self.hysteresis)
            # only count genuine hand-overs / losses, not the first election
            # of a previously head-less cluster
            if previous is not None and new_head != previous:
                self.head_changes += 1
            cluster.head = new_head

        snapshot = self.snapshot(now)
        for listener in self._listeners:
            listener(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def snapshot(self, time: Optional[float] = None) -> ClusterSnapshot:
        return ClusterSnapshot(
            time=self.network.simulator.now if time is None else time,
            heads={
                coord: cluster.head
                for coord, cluster in self.clusters.items()
                if cluster.head is not None
            },
            members={
                coord: set(cluster.members)
                for coord, cluster in self.clusters.items()
                if cluster.members
            },
            node_home=dict(self._node_home),
        )

    def cluster_head(self, coord: GridCoord) -> Optional[int]:
        return self.clusters[coord].head

    def cluster_of(self, node_id: int) -> Optional[GridCoord]:
        return self._node_home.get(node_id)

    def head_of_node(self, node_id: int) -> Optional[int]:
        """The CH of the cluster the node currently belongs to."""
        coord = self._node_home.get(node_id)
        if coord is None:
            return None
        return self.clusters[coord].head

    def serving_head(self, node_id: int) -> Optional[int]:
        """A CH able to serve the node: its home CH, or the CH of any
        overlapping virtual circle when the home circle has none.

        The paper exploits exactly this overlap: "an MN within the
        overlapped regions can be a cluster member of two or multiple
        clusters at the same time for more reliable communications"
        (Section 3).
        """
        head = self.head_of_node(node_id)
        if head is not None:
            return head
        position = self.network.position_of(node_id)
        best: Optional[int] = None
        best_distance = float("inf")
        for coord in self.grid.covering_coords(position):
            candidate = self.clusters[coord].head
            if candidate is None:
                continue
            d = self.grid.vcc(coord).distance_to(position)
            if d < best_distance:
                best_distance = d
                best = candidate
        return best

    def is_cluster_head(self, node_id: int) -> bool:
        coord = self._node_home.get(node_id)
        if coord is None:
            return False
        return self.clusters[coord].head == node_id

    def cluster_heads(self) -> Dict[GridCoord, int]:
        return {
            coord: cluster.head
            for coord, cluster in self.clusters.items()
            if cluster.head is not None
        }

    def members_of(self, coord: GridCoord) -> Set[int]:
        return set(self.clusters[coord].members)
