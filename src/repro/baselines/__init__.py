"""Baseline multicast protocols (System S8).

The paper positions HVDB against three families of location-based
multicast protocols (Section 2.2) plus the trivial flooding approach.
Each family is re-implemented here in its essential form so the
evaluation can compare scalability, overhead and load balancing:

* :mod:`repro.baselines.flooding` -- network-wide flooding: every node
  re-broadcasts each data packet once.  Upper bound on delivery, worst
  case on overhead and load concentration.
* :mod:`repro.baselines.dsm` -- Dynamic Source Multicast [1]: every node
  periodically floods its position; a sender computes a multicast tree
  over a global topology snapshot and encodes it in the packet.
* :mod:`repro.baselines.sgm` -- Small Group Multicast [6]: the sender
  knows the member list and their positions, builds a location-guided
  overlay tree and forwards with packet encapsulation over unicast.
* :mod:`repro.baselines.spbm` -- Scalable Position-Based Multicast [28]:
  square-hierarchy membership aggregation; data packets are addressed to
  squares and split as they descend the hierarchy.

Each baseline ships as a registered
:class:`~repro.simulation.stack.ProtocolStack` (``flooding``, ``dsm``,
``sgm``, ``spbm``) with real ``aggregate_stats``, plus a typed config
section (``DsmConfig``, ``SgmConfig``, ``SpbmConfig``) addressable from
sweep grids via dotted axes (``dsm.position_period``, ...).
"""

from repro.baselines.flooding import FloodingMulticastAgent, FloodingStack, FLOODING_PROTOCOL
from repro.baselines.dsm import DsmAgent, DsmConfig, DsmStack, DSM_PROTOCOL
from repro.baselines.sgm import SgmAgent, SgmConfig, SgmStack, SGM_PROTOCOL
from repro.baselines.spbm import SpbmAgent, SpbmConfig, SpbmStack, SPBM_PROTOCOL

__all__ = [
    "FloodingMulticastAgent",
    "FloodingStack",
    "FLOODING_PROTOCOL",
    "DsmAgent",
    "DsmConfig",
    "DsmStack",
    "DSM_PROTOCOL",
    "SgmAgent",
    "SgmConfig",
    "SgmStack",
    "SGM_PROTOCOL",
    "SpbmAgent",
    "SpbmConfig",
    "SpbmStack",
    "SPBM_PROTOCOL",
]
