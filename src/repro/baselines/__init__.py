"""Baseline multicast protocols (System S8).

The paper positions HVDB against three families of location-based
multicast protocols (Section 2.2) plus the trivial flooding approach.
Each family is re-implemented here in its essential form so the
evaluation can compare scalability, overhead and load balancing:

* :mod:`repro.baselines.flooding` -- network-wide flooding: every node
  re-broadcasts each data packet once.  Upper bound on delivery, worst
  case on overhead and load concentration.
* :mod:`repro.baselines.dsm` -- Dynamic Source Multicast [1]: every node
  periodically floods its position; a sender computes a multicast tree
  over a global topology snapshot and encodes it in the packet.
* :mod:`repro.baselines.sgm` -- Small Group Multicast [6]: the sender
  knows the member list and their positions, builds a location-guided
  overlay tree and forwards with packet encapsulation over unicast.
* :mod:`repro.baselines.spbm` -- Scalable Position-Based Multicast [28]:
  square-hierarchy membership aggregation; data packets are addressed to
  squares and split as they descend the hierarchy.
"""

from repro.baselines.flooding import FloodingMulticastAgent, FLOODING_PROTOCOL
from repro.baselines.dsm import DsmAgent, DSM_PROTOCOL
from repro.baselines.sgm import SgmAgent, SGM_PROTOCOL
from repro.baselines.spbm import SpbmAgent, SPBM_PROTOCOL

__all__ = [
    "FloodingMulticastAgent",
    "FLOODING_PROTOCOL",
    "DsmAgent",
    "DSM_PROTOCOL",
    "SgmAgent",
    "SGM_PROTOCOL",
    "SpbmAgent",
    "SPBM_PROTOCOL",
]
