"""Scalable Position-Based Multicast (SPBM)-style baseline.

Transier et al. [28] aggregate group membership over a square hierarchy
(quad-tree over the deployment area): a node announces its memberships
within its smallest square; aggregated announcements propagate one level
up, so "the further away a region is from an intermediate node, the higher
the level of aggregation".  Data packets carry the set of target squares
and are split as they approach them, with greedy geographic forwarding
between splits.

The paper's criticism -- "because all the nodes in the network are
involved in the membership update, it still cannot scale well in
large-scale MANETs" -- is what experiment E3 quantifies against the HVDB
summary scheme, so the membership announcement traffic here is simulated
faithfully: every node broadcasts its level-0 membership locally, and
aggregated square announcements are flooded within the parent square.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.geo.geometry import Point, distance
from repro.registry import register_protocol
from repro.simulation.agent import ProtocolAgent
from repro.simulation.engine import PeriodicTimer
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.stack import AgentStack
from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

SPBM_PROTOCOL = "spbm"

#: square identifier: (level, ix, iy); level 0 = smallest squares
Square = Tuple[int, int, int]


@dataclass
class SpbmConfig:
    """Typed SPBM section of a ``ScenarioConfig`` (grid axes ``spbm.*``)."""

    levels: int = 3                 #: quad-tree depth of the square hierarchy
    announce_period: float = 5.0    #: seconds between membership announcements


class SpbmAgent(ProtocolAgent):
    """Quad-tree membership aggregation + square-addressed multicast forwarding."""

    protocol_name = SPBM_PROTOCOL

    def __init__(
        self,
        levels: int = 3,
        announce_period: float = 5.0,
    ) -> None:
        super().__init__()
        if levels < 1:
            raise ValueError("levels must be at least 1")
        self.levels = levels
        self.announce_period = announce_period
        #: membership table: square -> set of groups known to have members there
        self.square_members: Dict[Square, Set[int]] = {}
        self._timer: Optional[PeriodicTimer] = None
        self._seen: Set[Tuple[int, str]] = set()
        self.data_originated = 0
        self.announcements_sent = 0

    # ------------------------------------------------------------------
    # square geometry
    # ------------------------------------------------------------------
    def _square_of(self, position: Point, level: int) -> Square:
        area = self.network.config.area
        cells = 1 << (self.levels - 1 - level)   # level 0 has the most cells
        size_x = area.width / cells
        size_y = area.height / cells
        ix = min(int(position.x // size_x), cells - 1)
        iy = min(int(position.y // size_y), cells - 1)
        return (level, ix, iy)

    def _square_center(self, square: Square) -> Point:
        area = self.network.config.area
        level, ix, iy = square
        cells = 1 << (self.levels - 1 - level)
        size_x = area.width / cells
        size_y = area.height / cells
        return Point((ix + 0.5) * size_x, (iy + 0.5) * size_y)

    def _contains(self, square: Square, position: Point) -> bool:
        return self._square_of(position, square[0]) == square

    def _child_squares(self, square: Square) -> List[Square]:
        level, ix, iy = square
        if level == 0:
            return []
        return [
            (level - 1, 2 * ix + dx, 2 * iy + dy)
            for dx in (0, 1)
            for dy in (0, 1)
        ]

    # ------------------------------------------------------------------
    # membership announcements
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._timer = PeriodicTimer(
            self.simulator, self.announce_period, self._announce_membership
        )

    def on_stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _announce_membership(self) -> None:
        groups = sorted(self.node.groups)
        pos = self.network.position_of(self.node_id)
        square = self._square_of(pos, 0)
        self.square_members.setdefault(square, set()).update(groups)
        packet = Packet(
            kind=PacketKind.CONTROL,
            protocol=SPBM_PROTOCOL,
            msg_type="membership",
            source=self.node_id,
            payload={"square": square, "groups": groups, "origin": self.node_id, "t": self.now},
            size_bytes=16 + 4 * len(groups),
            created_at=self.now,
        )
        self.announcements_sent += 1
        self.node.broadcast(packet)

    def _handle_membership(self, packet: Packet) -> None:
        key = (packet.payload["origin"], f"m{packet.payload['t']}")
        if key in self._seen:
            return
        self._seen.add(key)
        square = tuple(packet.payload["square"])  # type: ignore[assignment]
        groups = set(packet.payload["groups"])
        if groups:
            self.square_members.setdefault(square, set()).update(groups)
            # aggregate upwards: mark every ancestor square as containing the groups
            level, ix, iy = square
            for lvl in range(level + 1, self.levels):
                ix //= 2
                iy //= 2
                self.square_members.setdefault((lvl, ix, iy), set()).update(groups)
        # membership propagates within the parent square only (hierarchical scoping)
        my_pos = self.network.position_of(self.node_id)
        parent_level = min(square[0] + 1, self.levels - 1)
        origin_center = self._square_center(square)
        parent_of_origin = self._square_of(origin_center, parent_level)
        if self._contains(parent_of_origin, my_pos):
            self.node.broadcast(packet.copy_for_forwarding())

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def _geo(self) -> GeoUnicastAgent:
        return self.node.agent(GEO_PROTOCOL)  # type: ignore[return-value]

    def send_multicast(self, group: int, payload, size_bytes: int = 512) -> None:
        members = self.network.group_members(group)
        targets = self._target_squares(group)
        packet = Packet(
            kind=PacketKind.DATA,
            protocol=SPBM_PROTOCOL,
            msg_type="data",
            source=self.node_id,
            group=group,
            payload=payload,
            headers={"squares": [list(s) for s in targets]},
            size_bytes=size_bytes + 6 * len(targets),
            created_at=self.now,
        )
        self.network.register_data_packet(packet, members)
        self.data_originated += 1
        if self.node.is_member(group):
            self.node.deliver_to_application(packet)
        self._forward(packet)

    def _target_squares(self, group: int) -> List[Square]:
        """Smallest-level squares known to contain members of ``group``."""
        return sorted(
            sq for sq, groups in self.square_members.items() if sq[0] == 0 and group in groups
        )

    def _forward(self, packet: Packet) -> None:
        group = packet.group
        squares = [tuple(s) for s in packet.headers.get("squares", [])]
        if not squares:
            # no aggregated knowledge: deliver locally via one broadcast
            self.node.broadcast(packet.copy_for_forwarding())
            return
        my_pos = self.network.position_of(self.node_id)
        inside = [s for s in squares if self._contains(s, my_pos)]
        outside = [s for s in squares if not self._contains(s, my_pos)]
        if inside:
            # packet has reached one of its target squares: local broadcast
            copy = packet.copy_for_forwarding()
            copy.headers["squares"] = [list(s) for s in inside]
            copy.headers["terminal"] = True
            self.node.broadcast(copy)
        for square in outside:
            center = self._square_center(square)
            relay = self._closest_node_to(center)
            if relay is None or relay == self.node_id:
                continue
            copy = packet.copy_for_forwarding()
            copy.headers["squares"] = [list(square)]
            self._geo().send(copy, relay)

    def _closest_node_to(self, target: Point) -> Optional[int]:
        """Oracle relay selection: the alive node closest to the square centre."""
        best = None
        best_d = float("inf")
        for node_id, node in self.network.nodes.items():
            if not node.alive:
                continue
            d = distance(self.network.position_of(node_id), target)
            if d < best_d:
                best_d = d
                best = node_id
        return best

    def on_packet(self, packet: Packet, from_node: int) -> None:
        if packet.protocol != SPBM_PROTOCOL:
            return
        if packet.msg_type == "membership":
            self._handle_membership(packet)
            return
        if packet.msg_type != "data":
            return
        if packet.group is not None and self.node.is_member(packet.group):
            self.node.deliver_to_application(packet)
        key = (packet.uid, "data")
        if key in self._seen:
            return
        self._seen.add(key)
        if packet.headers.get("terminal"):
            # final local dissemination inside the target square: one more hop
            my_pos = self.network.position_of(self.node_id)
            squares = [tuple(s) for s in packet.headers.get("squares", [])]
            if any(self._contains(s, my_pos) for s in squares):
                rebroadcast = packet.copy_for_forwarding()
                rebroadcast.headers["terminal"] = False
                self.node.broadcast(rebroadcast)
            return
        self._forward(packet)


@register_protocol(SPBM_PROTOCOL)
class SpbmStack(AgentStack):
    """The registered ``spbm`` stack: quad-tree membership over geo-unicast."""

    name = SPBM_PROTOCOL
    uses_geo_unicast = True
    stat_fields = ("data_originated", "announcements_sent")

    def make_agent(self, config=None) -> SpbmAgent:
        spbm = config.spbm if config is not None else SpbmConfig()
        return SpbmAgent(levels=spbm.levels, announce_period=spbm.announce_period)
