"""Flooding multicast baseline.

The simplest MANET multicast: the source broadcasts the packet and every
node re-broadcasts each distinct packet exactly once.  Delivery is close
to the connectivity upper bound, but every node transmits every packet, so
overhead grows with ``O(N)`` transmissions per packet and the load is
spread indiscriminately -- the reference point the paper's scalability
argument is made against.
"""

from __future__ import annotations

from typing import Set

from repro.registry import register_protocol
from repro.simulation.agent import ProtocolAgent
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.stack import AgentStack

FLOODING_PROTOCOL = "flooding"


class FloodingMulticastAgent(ProtocolAgent):
    """Blind flooding with per-packet duplicate suppression."""

    protocol_name = FLOODING_PROTOCOL

    def __init__(self) -> None:
        super().__init__()
        self._seen: Set[int] = set()
        self.data_originated = 0
        self.rebroadcasts = 0

    def send_multicast(self, group: int, payload, size_bytes: int = 512) -> None:
        packet = Packet(
            kind=PacketKind.DATA,
            protocol=FLOODING_PROTOCOL,
            msg_type="data",
            source=self.node_id,
            group=group,
            payload=payload,
            size_bytes=size_bytes,
            created_at=self.now,
        )
        members = self.network.group_members(group)
        self.network.register_data_packet(packet, members)
        self.data_originated += 1
        self._seen.add(packet.uid)
        if self.node.is_member(group):
            self.node.deliver_to_application(packet)
        self.node.broadcast(packet)

    def on_packet(self, packet: Packet, from_node: int) -> None:
        if packet.protocol != FLOODING_PROTOCOL or packet.msg_type != "data":
            return
        if packet.uid in self._seen:
            return
        self._seen.add(packet.uid)
        if packet.group is not None and self.node.is_member(packet.group):
            self.node.deliver_to_application(packet)
        self.rebroadcasts += 1
        self.node.broadcast(packet.copy_for_forwarding())


@register_protocol(FLOODING_PROTOCOL)
class FloodingStack(AgentStack):
    """The registered ``flooding`` stack: one agent per node, no knobs."""

    name = FLOODING_PROTOCOL
    stat_fields = ("data_originated", "rebroadcasts")

    def make_agent(self, config=None) -> FloodingMulticastAgent:
        return FloodingMulticastAgent()
