"""Dynamic Source Multicast (DSM)-style baseline.

Basagni et al. [1]: every node periodically floods its location and
transmission radius to the whole network; a sender locally computes a
snapshot of the global topology, builds a multicast (shortest-path) tree
for the group, encodes the tree in the packet header and source-routes the
packet along it.  No multicast session state is kept in routers, but the
periodic network-wide location flooding is the scalability bottleneck the
paper calls out ("the location and transmission radius information has to
be periodically broadcast from each node to all the other nodes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.geo.geometry import Point, distance
from repro.registry import register_protocol
from repro.simulation.agent import ProtocolAgent
from repro.simulation.engine import PeriodicTimer
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.stack import AgentStack

DSM_PROTOCOL = "dsm"


@dataclass
class DsmConfig:
    """Typed DSM section of a ``ScenarioConfig`` (grid axes ``dsm.*``)."""

    position_period: float = 15.0   #: seconds between network-wide position floods


class DsmAgent(ProtocolAgent):
    """Sender-computed source-routed multicast over a flooded global snapshot."""

    protocol_name = DSM_PROTOCOL

    def __init__(self, position_update_period: float = 10.0) -> None:
        super().__init__()
        if position_update_period <= 0:
            raise ValueError("position_update_period must be positive")
        self.position_update_period = position_update_period
        #: global topology snapshot: node -> (position, last update time)
        self.known_positions: Dict[int, Tuple[Point, float]] = {}
        self._seen_control: Set[Tuple[int, int]] = set()
        self._seen_data: Set[int] = set()
        self._timer: Optional[PeriodicTimer] = None
        self._update_seq = 0
        self.data_originated = 0
        self.position_floods = 0

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._timer = PeriodicTimer(
            self.simulator,
            self.position_update_period,
            self._flood_position,
            jitter=0.0,
        )
        # every node knows itself from the start
        self.known_positions[self.node_id] = (
            self.network.position_of(self.node_id),
            self.now,
        )

    def on_stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def _flood_position(self) -> None:
        self._update_seq += 1
        pos = self.network.position_of(self.node_id)
        self.known_positions[self.node_id] = (pos, self.now)
        packet = Packet(
            kind=PacketKind.CONTROL,
            protocol=DSM_PROTOCOL,
            msg_type="position-update",
            source=self.node_id,
            payload={"node": self.node_id, "pos": (pos.x, pos.y), "seq": self._update_seq},
            size_bytes=20,
            created_at=self.now,
        )
        self.position_floods += 1
        self.node.broadcast(packet)

    # ------------------------------------------------------------------
    def send_multicast(self, group: int, payload, size_bytes: int = 512) -> None:
        members = self.network.group_members(group)
        tree = self._compute_source_tree([m for m in members if m != self.node_id])
        packet = Packet(
            kind=PacketKind.DATA,
            protocol=DSM_PROTOCOL,
            msg_type="data",
            source=self.node_id,
            group=group,
            payload=payload,
            headers={"tree": tree},
            size_bytes=size_bytes + 6 * sum(len(v) for v in tree.values()),
            created_at=self.now,
        )
        self.network.register_data_packet(packet, members)
        self.data_originated += 1
        self._seen_data.add(packet.uid)
        if self.node.is_member(group):
            self.node.deliver_to_application(packet)
        self._forward_along_tree(packet)

    def _compute_source_tree(self, members: List[int]) -> Dict[str, List[int]]:
        """Shortest-path tree over the sender's topology snapshot.

        Connectivity between two known nodes is assumed when their known
        positions are within the radio's nominal range (that is exactly the
        information DSM's flooded snapshot provides).  Returns a child-list
        map keyed by stringified node id (header-encodable form).
        """
        radio = self.network.config.radio
        known = {n: p for n, (p, _) in self.known_positions.items()}
        if self.node_id not in known:
            known[self.node_id] = self.network.position_of(self.node_id)
        # BFS over the snapshot graph
        parent: Dict[int, int] = {self.node_id: self.node_id}
        frontier = [self.node_id]
        targets = set(members)
        while frontier and targets:
            next_frontier: List[int] = []
            for current in frontier:
                for other, pos in known.items():
                    if other in parent:
                        continue
                    if radio.in_range(known[current], pos):
                        parent[other] = current
                        targets.discard(other)
                        next_frontier.append(other)
            frontier = next_frontier
        # keep only branches leading to members
        children: Dict[str, List[int]] = {}
        for member in members:
            if member not in parent:
                continue
            node = member
            while node != self.node_id:
                par = parent[node]
                kids = children.setdefault(str(par), [])
                if node not in kids:
                    kids.append(node)
                node = par
        return children

    def _forward_along_tree(self, packet: Packet) -> None:
        tree: Dict[str, List[int]] = packet.headers.get("tree", {})
        children = tree.get(str(self.node_id), [])
        for child in children:
            copy = packet.copy_for_forwarding()
            self.node.unicast(child, copy)

    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet, from_node: int) -> None:
        if packet.protocol != DSM_PROTOCOL:
            return
        if packet.msg_type == "position-update":
            key = (packet.payload["node"], packet.payload["seq"])
            if key in self._seen_control:
                return
            self._seen_control.add(key)
            x, y = packet.payload["pos"]
            self.known_positions[packet.payload["node"]] = (Point(x, y), self.now)
            self.node.broadcast(packet.copy_for_forwarding())
            return
        if packet.msg_type == "data":
            if packet.uid in self._seen_data:
                return
            self._seen_data.add(packet.uid)
            if packet.group is not None and self.node.is_member(packet.group):
                self.node.deliver_to_application(packet)
            self._forward_along_tree(packet)


@register_protocol(DSM_PROTOCOL)
class DsmStack(AgentStack):
    """The registered ``dsm`` stack: source-routed multicast over floods."""

    name = DSM_PROTOCOL
    stat_fields = ("data_originated", "position_floods")

    def make_agent(self, config=None) -> DsmAgent:
        dsm = config.dsm if config is not None else DsmConfig()
        return DsmAgent(position_update_period=dsm.position_period)
