"""Small Group Multicast (SGM)-style baseline.

Chen & Nahrstedt's location-guided tree construction [6]: the sender knows
the group member list and their locations, splits the member set
geographically into branches, and forwards the packet to the root of each
branch with the remaining destinations encapsulated in the header; each
branch root repeats the process ("location-guided k-ary tree").  No
per-router multicast state is kept; everything rides on the unicast
substrate.

The member list and positions are obtained from the group/location oracle
the original protocol assumes ("they are only aware of each other in terms
of the group membership and the location information of the group nodes",
paper Section 2.2), which also means the scheme is only practical for
small, fairly static groups -- exactly the limitation the paper points
out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.geo.geometry import Point, distance
from repro.registry import register_protocol
from repro.simulation.agent import ProtocolAgent
from repro.simulation.packet import Packet, PacketKind
from repro.simulation.stack import AgentStack
from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

SGM_PROTOCOL = "sgm"

#: branching factor of the location-guided tree
_DEFAULT_FANOUT = 3


@dataclass
class SgmConfig:
    """Typed SGM section of a ``ScenarioConfig`` (grid axes ``sgm.*``)."""

    fanout: int = _DEFAULT_FANOUT       #: branching factor of the overlay tree


class SgmAgent(ProtocolAgent):
    """Location-guided overlay tree multicast with packet encapsulation."""

    protocol_name = SGM_PROTOCOL

    def __init__(self, fanout: int = _DEFAULT_FANOUT) -> None:
        super().__init__()
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        self.fanout = fanout
        self.data_originated = 0
        self.branches_forwarded = 0

    def _geo(self) -> GeoUnicastAgent:
        return self.node.agent(GEO_PROTOCOL)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def send_multicast(self, group: int, payload, size_bytes: int = 512) -> None:
        members = [m for m in self.network.group_members(group) if m != self.node_id]
        packet = Packet(
            kind=PacketKind.DATA,
            protocol=SGM_PROTOCOL,
            msg_type="data",
            source=self.node_id,
            group=group,
            payload=payload,
            headers={"destinations": sorted(members)},
            size_bytes=size_bytes + 4 * len(members),
            created_at=self.now,
        )
        self.network.register_data_packet(packet, self.network.group_members(group))
        self.data_originated += 1
        if self.node.is_member(group):
            self.node.deliver_to_application(packet)
        self._forward_to_branches(packet, members)

    def on_packet(self, packet: Packet, from_node: int) -> None:
        if packet.protocol != SGM_PROTOCOL or packet.msg_type != "data":
            return
        if packet.group is not None and self.node.is_member(packet.group):
            self.node.deliver_to_application(packet)
        destinations = [d for d in packet.headers.get("destinations", []) if d != self.node_id]
        if destinations:
            self._forward_to_branches(packet, destinations)

    # ------------------------------------------------------------------
    def _forward_to_branches(self, packet: Packet, destinations: Sequence[int]) -> None:
        """Split the destination set geographically and forward one copy per branch."""
        live = [d for d in destinations if d in self.network.nodes and self.network.node(d).alive]
        if not live:
            return
        clusters = self._geographic_split(live, self.fanout)
        for cluster in clusters:
            if not cluster:
                continue
            # branch root: the member closest to this node (it will re-split)
            my_pos = self.network.position_of(self.node_id)
            root = min(cluster, key=lambda d: distance(self.network.position_of(d), my_pos))
            copy = packet.copy_for_forwarding()
            copy.headers["destinations"] = sorted(d for d in cluster if d != root)
            copy.size_bytes = packet.size_bytes
            self.branches_forwarded += 1
            self._geo().send(copy, root)

    def _geographic_split(self, destinations: Sequence[int], k: int) -> List[List[int]]:
        """Greedy k-way split of destinations by proximity (k-means-like, one pass)."""
        if len(destinations) <= k:
            return [[d] for d in destinations]
        positions: Dict[int, Point] = {d: self.network.position_of(d) for d in destinations}
        # pick k seeds spread out: farthest-point heuristic
        seeds = [destinations[0]]
        while len(seeds) < k:
            best = max(
                (d for d in destinations if d not in seeds),
                key=lambda d: min(distance(positions[d], positions[s]) for s in seeds),
            )
            seeds.append(best)
        clusters: List[List[int]] = [[] for _ in range(k)]
        for d in destinations:
            idx = min(range(k), key=lambda i: distance(positions[d], positions[seeds[i]]))
            clusters[idx].append(d)
        return clusters


@register_protocol(SGM_PROTOCOL)
class SgmStack(AgentStack):
    """The registered ``sgm`` stack: overlay-tree agents over geo-unicast."""

    name = SGM_PROTOCOL
    uses_geo_unicast = True
    stat_fields = ("data_originated", "branches_forwarded")

    def make_agent(self, config=None) -> SgmAgent:
        sgm = config.sgm if config is not None else SgmConfig()
        return SgmAgent(fanout=sgm.fanout)
