"""GPS-like location service.

The paper assumes "each MN can acquire its location information such as
geographical position, moving velocity, and moving direction, using some
devices such as a GPS" (Section 3).  In the simulator the ground-truth
position is always known; this module models the positioning *service* a
protocol would query, optionally degrading the ground truth with Gaussian
error and staleness so experiments can probe sensitivity to imperfect
positioning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.geo.geometry import Point, Vector


class LocationError(RuntimeError):
    """Raised when a location query cannot be answered."""


@dataclass(frozen=True, slots=True)
class LocationSample:
    """One positioning fix: position, velocity and the time it was taken."""

    position: Point
    velocity: Vector
    timestamp: float


class LocationService:
    """Per-node positioning service.

    Parameters
    ----------
    position_error_std:
        Standard deviation (metres) of an isotropic Gaussian error added to
        each reported position.  ``0`` reports ground truth.
    staleness:
        Age (seconds) of the reported fix: the service reports the position
        the node had ``staleness`` seconds ago, extrapolated with the
        velocity it had then.  ``0`` reports the current fix.
    rng:
        ``random.Random``-compatible generator used for the error draws.
        Required when ``position_error_std > 0``.
    """

    def __init__(
        self,
        position_error_std: float = 0.0,
        staleness: float = 0.0,
        rng=None,
    ) -> None:
        if position_error_std < 0:
            raise ValueError("position_error_std must be non-negative")
        if staleness < 0:
            raise ValueError("staleness must be non-negative")
        if position_error_std > 0 and rng is None:
            raise ValueError("rng is required when position_error_std > 0")
        self.position_error_std = position_error_std
        self.staleness = staleness
        self._rng = rng
        self._history: list[LocationSample] = []
        self._max_history = 64

    # ------------------------------------------------------------------
    def record(self, position: Point, velocity: Vector, now: float) -> None:
        """Record the node's true state at time ``now``.

        The simulator calls this whenever a node moves; the service keeps a
        short history so stale fixes can be served.
        """
        self._history.append(LocationSample(position, velocity, now))
        if len(self._history) > self._max_history:
            del self._history[: len(self._history) - self._max_history]

    def query(self, now: float) -> LocationSample:
        """Return the fix the service would report at time ``now``."""
        if not self._history:
            raise LocationError("no position has been recorded yet")
        target_time = now - self.staleness
        sample = self._sample_at(target_time)
        position = sample.position
        if self.position_error_std > 0:
            position = Point(
                position.x + self._rng.gauss(0.0, self.position_error_std),
                position.y + self._rng.gauss(0.0, self.position_error_std),
            )
        return LocationSample(position, sample.velocity, now)

    def last_known(self) -> Optional[LocationSample]:
        """The most recent ground-truth sample, or ``None`` if empty."""
        return self._history[-1] if self._history else None

    # ------------------------------------------------------------------
    def _sample_at(self, target_time: float) -> LocationSample:
        """Most recent recorded sample not newer than ``target_time``.

        Falls back to the oldest sample when the requested time predates
        the history (e.g. right after the node joins the network).
        """
        best = self._history[0]
        for sample in self._history:
            if sample.timestamp <= target_time:
                best = sample
            else:
                break
        return best
