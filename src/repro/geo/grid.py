"""The Virtual Circle (VC) grid of the HVDB model.

Section 3 of the paper divides the geographical area "into equal regions of
circular shape" (following Sivavakeesar et al. [23]).  Each region is a
*Virtual Circle* whose centre is the *Virtual Circle Center* (VCC).  The
VCCs are placed on a square lattice; each circle's radius equals half the
lattice diagonal so that neighbouring circles overlap and every point of
the plane is covered (nodes in overlap regions may belong to more than one
cluster, which the paper exploits "for more reliable communications").

Figure 2 of the paper shows an example 8x8 VC grid; this module is the
executable counterpart of that figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generic, Iterator, List, Tuple, TypeVar

from repro.geo.area import Area
from repro.geo.geometry import Point, distance


#: Integer (column, row) coordinate of a virtual circle in the grid.
GridCoord = Tuple[int, int]

T = TypeVar("T")


class SpatialHash(Generic[T]):
    """Uniform-cell spatial hash for radius-bounded proximity queries.

    Items are binned into square cells of side ``cell``; any two items
    closer than ``cell`` are guaranteed to share a cell or sit in
    adjacent ones, so :meth:`candidates` only has to visit the 3x3 cell
    neighbourhood instead of every item (the classic O(n) -> O(density)
    neighbour query).  Buckets preserve insertion order and
    :meth:`candidates` walks the neighbourhood cells in a fixed order,
    so iteration over candidates is deterministic for a deterministic
    insertion sequence -- simulation results must not depend on hash
    layout.
    """

    def __init__(self, cell: float) -> None:
        self.cell = max(cell, 1e-6)
        self._buckets: Dict[Tuple[int, int], List[T]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def cell_of(self, point: Point) -> Tuple[int, int]:
        """The cell coordinate binning ``point``."""
        return (int(point.x // self.cell), int(point.y // self.cell))

    def insert(self, item: T, point: Point) -> None:
        self._buckets.setdefault(self.cell_of(point), []).append(item)

    def candidates(self, point: Point) -> Iterator[T]:
        """Every item within one cell of ``point`` (including its own).

        The superset of all items within ``cell`` of ``point``; callers
        apply their exact distance predicate to the survivors.
        """
        cx, cy = self.cell_of(point)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for item in self._buckets.get((cx + dx, cy + dy), ()):
                    yield item


@dataclass(frozen=True, slots=True)
class VirtualCircle:
    """One virtual circle: its grid coordinate, centre (VCC) and radius."""

    coord: GridCoord
    center: Point
    radius: float

    def contains(self, point: Point) -> bool:
        """True if ``point`` lies within the circle (boundary inclusive)."""
        return distance(self.center, point) <= self.radius + 1e-9

    def distance_to_center(self, point: Point) -> float:
        return distance(self.center, point)


class VirtualCircleGrid:
    """A ``cols x rows`` lattice of virtual circles covering an :class:`Area`.

    Parameters
    ----------
    area:
        The rectangular deployment area.
    cols, rows:
        Number of virtual circles along x and y.  The paper's Figure 2 uses
        an 8x8 grid.
    overlap_factor:
        Radius multiplier on top of the minimum fully-covering radius
        (half the cell diagonal).  ``1.0`` gives exact coverage with the
        minimal overlap; larger values enlarge the overlap regions where
        nodes belong to several clusters.
    """

    def __init__(
        self,
        area: Area,
        cols: int,
        rows: int,
        overlap_factor: float = 1.0,
    ) -> None:
        if cols <= 0 or rows <= 0:
            raise ValueError("grid dimensions must be positive")
        if overlap_factor < 1.0:
            raise ValueError("overlap_factor must be >= 1.0 to keep full coverage")
        self.area = area
        self.cols = cols
        self.rows = rows
        self.cell_width = area.width / cols
        self.cell_height = area.height / rows
        self.radius = overlap_factor * 0.5 * math.hypot(self.cell_width, self.cell_height)
        self._circles: Dict[GridCoord, VirtualCircle] = {}
        for col in range(cols):
            for row in range(rows):
                center = Point(
                    (col + 0.5) * self.cell_width,
                    (row + 0.5) * self.cell_height,
                )
                coord = (col, row)
                self._circles[coord] = VirtualCircle(coord, center, self.radius)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.cols * self.rows

    def __iter__(self) -> Iterator[VirtualCircle]:
        return iter(self._circles.values())

    def circle(self, coord: GridCoord) -> VirtualCircle:
        """Return the circle at the given grid coordinate."""
        return self._circles[coord]

    def circles(self) -> List[VirtualCircle]:
        return list(self._circles.values())

    def coord_of(self, point: Point) -> GridCoord:
        """Return the *home* grid coordinate of ``point``.

        The home circle is the one whose square lattice cell contains the
        point; it is the unique circle a node registers with as its primary
        cluster (overlap membership is resolved by
        :meth:`covering_coords`).  Points outside the area are clamped to
        the border cell.
        """
        col = int(point.x // self.cell_width)
        row = int(point.y // self.cell_height)
        col = min(max(col, 0), self.cols - 1)
        row = min(max(row, 0), self.rows - 1)
        return (col, row)

    def home_circle(self, point: Point) -> VirtualCircle:
        """The virtual circle whose lattice cell contains ``point``."""
        return self._circles[self.coord_of(point)]

    def covering_coords(self, point: Point) -> List[GridCoord]:
        """All grid coordinates whose circle covers ``point``.

        Because circles overlap, a node located near a cell boundary is
        covered by two or more circles and may be a member of several
        clusters at once (paper Section 3).  Only the 3x3 neighbourhood of
        the home cell needs to be examined because the circle radius never
        exceeds ``overlap_factor`` cell diagonals.
        """
        home_col, home_row = self.coord_of(point)
        span = max(1, int(math.ceil(self.radius / min(self.cell_width, self.cell_height))))
        coords: List[GridCoord] = []
        for col in range(home_col - span, home_col + span + 1):
            for row in range(home_row - span, home_row + span + 1):
                if 0 <= col < self.cols and 0 <= row < self.rows:
                    if self._circles[(col, row)].contains(point):
                        coords.append((col, row))
        return coords

    def vcc(self, coord: GridCoord) -> Point:
        """The Virtual Circle Center of the circle at ``coord``."""
        return self._circles[coord].center

    def neighbors(self, coord: GridCoord, diagonal: bool = False) -> List[GridCoord]:
        """Grid coordinates adjacent to ``coord``.

        By default only the 4-neighbourhood (N/S/E/W) is returned; with
        ``diagonal=True`` the 8-neighbourhood is returned.
        """
        col, row = coord
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise KeyError(f"coordinate {coord} outside grid")
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        out: List[GridCoord] = []
        for dc, dr in offsets:
            nc, nr = col + dc, row + dr
            if 0 <= nc < self.cols and 0 <= nr < self.rows:
                out.append((nc, nr))
        return out

    def manhattan(self, a: GridCoord, b: GridCoord) -> int:
        """Manhattan distance between two grid coordinates."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])
