"""Geometric primitives and the Virtual Circle grid (System S1).

This package provides the geographic substrate the HVDB model is built on:

* :mod:`repro.geo.geometry` -- 2-D points, vectors, distances and motion
  helpers used by every mobility model and by the radio layer.
* :mod:`repro.geo.area` -- the rectangular deployment area with wrap /
  clamp / reflect boundary policies.
* :mod:`repro.geo.grid` -- the Virtual Circle (VC) grid of the paper's
  Section 3 and Figure 2: the plane is partitioned into equal circular
  regions whose centres (VCCs) are laid out on a square lattice.
* :mod:`repro.geo.location_service` -- the positioning service the paper
  assumes every mobile node has (GPS-like), with optional error and
  staleness injection.
"""

from repro.geo.geometry import (
    Point,
    Vector,
    distance,
    distance_sq,
    midpoint,
    clamp,
    heading_to_vector,
    move_towards,
)
from repro.geo.area import Area, BoundaryPolicy
from repro.geo.grid import VirtualCircleGrid, VirtualCircle, GridCoord
from repro.geo.location_service import LocationService, LocationSample, LocationError

__all__ = [
    "Point",
    "Vector",
    "distance",
    "distance_sq",
    "midpoint",
    "clamp",
    "heading_to_vector",
    "move_towards",
    "Area",
    "BoundaryPolicy",
    "VirtualCircleGrid",
    "VirtualCircle",
    "GridCoord",
    "LocationService",
    "LocationSample",
    "LocationError",
]
