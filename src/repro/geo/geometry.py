"""2-D geometric primitives.

All positions in the simulator are expressed as :class:`Point` instances in
metres on a Euclidean plane.  Velocities and displacements are
:class:`Vector` instances in metres / metres-per-second.  Both types are
immutable so they can be shared safely between the simulator core, the
clustering layer and the location service without defensive copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, slots=True)
class Point:
    """A point on the 2-D plane, in metres."""

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        return (self.x, self.y)

    def translate(self, vector: "Vector") -> "Point":
        """Return the point displaced by ``vector``."""
        return Point(self.x + vector.dx, self.y + vector.dy)

    def vector_to(self, other: "Point") -> "Vector":
        """Return the displacement vector from this point to ``other``."""
        return Vector(other.x - self.x, other.y - self.y)

    def distance_to(self, other: "Point") -> float:
        return math.hypot(other.x - self.x, other.y - self.y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.x:.2f}, {self.y:.2f})"


@dataclass(frozen=True, slots=True)
class Vector:
    """A displacement or velocity on the 2-D plane."""

    dx: float
    dy: float

    def __iter__(self) -> Iterator[float]:
        yield self.dx
        yield self.dy

    @property
    def magnitude(self) -> float:
        return math.hypot(self.dx, self.dy)

    @property
    def heading(self) -> float:
        """Heading angle in radians in ``[-pi, pi]`` (0 = +x axis)."""
        return math.atan2(self.dy, self.dx)

    def scaled(self, factor: float) -> "Vector":
        return Vector(self.dx * factor, self.dy * factor)

    def normalized(self) -> "Vector":
        """Return a unit vector with the same heading.

        The zero vector normalises to itself (there is no meaningful
        heading to preserve).
        """
        mag = self.magnitude
        if mag == 0.0:
            return Vector(0.0, 0.0)
        return Vector(self.dx / mag, self.dy / mag)

    def __add__(self, other: "Vector") -> "Vector":
        return Vector(self.dx + other.dx, self.dy + other.dy)

    def __sub__(self, other: "Vector") -> "Vector":
        return Vector(self.dx - other.dx, self.dy - other.dy)

    def __neg__(self) -> "Vector":
        return Vector(-self.dx, -self.dy)

    def dot(self, other: "Vector") -> float:
        return self.dx * other.dx + self.dy * other.dy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vector({self.dx:.2f}, {self.dy:.2f})"


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance (cheaper when only comparisons matter)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))


def heading_to_vector(heading: float, speed: float) -> Vector:
    """Build a velocity vector from a heading (radians) and a speed."""
    return Vector(math.cos(heading) * speed, math.sin(heading) * speed)


def move_towards(origin: Point, target: Point, max_step: float) -> Point:
    """Move from ``origin`` towards ``target`` by at most ``max_step`` metres.

    If the target is closer than ``max_step`` the target itself is
    returned, so repeated calls converge exactly.
    """
    if max_step < 0:
        raise ValueError("max_step must be non-negative")
    gap = distance(origin, target)
    if gap <= max_step or gap == 0.0:
        return target
    frac = max_step / gap
    return Point(origin.x + (target.x - origin.x) * frac,
                 origin.y + (target.y - origin.y) * frac)
