"""Rectangular deployment area with boundary policies.

Every scenario deploys its mobile nodes inside an axis-aligned rectangle.
Mobility models delegate boundary handling to :class:`Area` so that the
same model can be run with reflecting, wrapping (torus) or clamping
boundaries.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

from repro.geo.geometry import Point, Vector


class BoundaryPolicy(enum.Enum):
    """How a position outside the area is brought back inside."""

    CLAMP = "clamp"      #: snap to the nearest border point
    WRAP = "wrap"        #: torus topology
    REFLECT = "reflect"  #: mirror off the border (billiard reflection)


@dataclass(frozen=True, slots=True)
class Area:
    """An axis-aligned rectangular deployment area ``[0,width] x [0,height]``."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("area dimensions must be positive")

    @property
    def center(self) -> Point:
        return Point(self.width / 2.0, self.height / 2.0)

    @property
    def diagonal(self) -> float:
        return math.hypot(self.width, self.height)

    def contains(self, point: Point) -> bool:
        return 0.0 <= point.x <= self.width and 0.0 <= point.y <= self.height

    def random_point(self, rng) -> Point:
        """Draw a uniformly random point from the area using ``rng``.

        ``rng`` is a :class:`random.Random`-compatible generator
        (only ``uniform`` is required).
        """
        return Point(rng.uniform(0.0, self.width), rng.uniform(0.0, self.height))

    # ------------------------------------------------------------------
    # boundary handling
    # ------------------------------------------------------------------
    def apply_boundary(
        self, point: Point, velocity: Vector, policy: BoundaryPolicy
    ) -> Tuple[Point, Vector]:
        """Return the in-area position (and possibly adjusted velocity).

        The velocity is only modified by :data:`BoundaryPolicy.REFLECT`,
        which flips the velocity component orthogonal to the border that
        was crossed.
        """
        if self.contains(point):
            return point, velocity
        if policy is BoundaryPolicy.CLAMP:
            return (
                Point(
                    min(max(point.x, 0.0), self.width),
                    min(max(point.y, 0.0), self.height),
                ),
                velocity,
            )
        if policy is BoundaryPolicy.WRAP:
            return Point(point.x % self.width, point.y % self.height), velocity
        if policy is BoundaryPolicy.REFLECT:
            x, y = point.x, point.y
            dx, dy = velocity.dx, velocity.dy
            x, dx = _reflect_axis(x, dx, self.width)
            y, dy = _reflect_axis(y, dy, self.height)
            return Point(x, y), Vector(dx, dy)
        raise ValueError(f"unknown boundary policy: {policy!r}")


def _reflect_axis(coord: float, vel: float, limit: float) -> Tuple[float, float]:
    """Reflect a single coordinate into ``[0, limit]``.

    Handles positions that overshoot by more than one area length by
    reflecting repeatedly (billiard dynamics on the segment).
    """
    while not (0.0 <= coord <= limit):
        if coord < 0.0:
            coord = -coord
            vel = -vel
        elif coord > limit:
            coord = 2.0 * limit - coord
            vel = -vel
    return coord, vel
