"""Plain-text visualisation helpers.

Terminal-friendly renderings of the structures the paper draws in its
figures: the virtual-circle grid with cluster heads (Figure 2), one logical
hypercube's occupancy with its HNID labels (Figure 3), and simple ASCII bar
charts / sparklines for metric series (delivery over time, per-node load).
They are used by the examples and are handy when debugging scenarios; none
of them require any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.hvdb import HVDBModel
from repro.core.identifiers import LogicalAddressSpace
from repro.geo.grid import GridCoord

#: characters used by :func:`sparkline`, from lowest to highest
_SPARK_LEVELS = " .:-=+*#%@"


def render_vc_grid(
    space: LogicalAddressSpace,
    cluster_heads: Mapping[GridCoord, int],
    members_per_vc: Optional[Mapping[GridCoord, int]] = None,
) -> str:
    """Render the virtual-circle grid (paper Figure 2) as text.

    Each cell shows the CH node id (or ``--`` when the VC has no cluster
    head); thick separators mark the borders between logical hypercube
    regions.  Row 0 is drawn at the bottom so the picture matches the
    geographic y-axis.
    """
    grid = space.grid
    cell_width = 5
    lines: List[str] = []
    for row in reversed(range(grid.rows)):
        if (row + 1) % space.block_rows == 0 and row != grid.rows - 1:
            lines.append("=" * ((cell_width + 1) * grid.cols + 1))
        cells: List[str] = []
        for col in range(grid.cols):
            ch = cluster_heads.get((col, row))
            label = f"{ch:>4}" if ch is not None else "  --"
            if members_per_vc is not None:
                count = members_per_vc.get((col, row), 0)
                label = f"{label[:2]}{count:>2}" if ch is None else label
            separator = "|" if col % space.block_cols == 0 else " "
            cells.append(f"{separator}{label}")
        lines.append("".join(cells) + "|")
    header = (
        f"VC grid {grid.cols}x{grid.rows}, "
        f"{space.hypercube_count()} hypercube regions of "
        f"{space.block_cols}x{space.block_rows} VCs (cluster-head ids; -- = no CH)"
    )
    return "\n".join([header] + lines)


def render_hypercube_occupancy(model: HVDBModel, hid: int) -> str:
    """Render one logical hypercube region (paper Figure 3) as text.

    Each cell shows the HNID bit string; occupied cells (an actual CH
    exists) are bracketed, absent ones are shown bare.
    """
    space = model.space
    cube = model.hypercube(hid)
    lines: List[str] = [
        f"hypercube {hid} (mesh node {space.mesh_of_hid(hid)}): "
        f"{len(cube)}/{1 << space.dimension} nodes present"
    ]
    base_col = space.mesh_of_hid(hid)[0] * space.block_cols
    base_row = space.mesh_of_hid(hid)[1] * space.block_rows
    for local_row in reversed(range(space.block_rows)):
        cells: List[str] = []
        for local_col in range(space.block_cols):
            vc = (base_col + local_col, base_row + local_row)
            hnid = space.hnid_of(vc)
            bits = format(hnid, f"0{space.dimension}b")
            cells.append(f"[{bits}]" if hnid in cube else f" {bits} ")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart of labelled values."""
    if not values:
        return "(no data)"
    peak = max(values.values())
    label_width = max(len(str(k)) for k in values)
    lines = []
    for key, value in values.items():
        length = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(f"{str(key).ljust(label_width)} | {'#' * length} {value:g}{unit}")
    return "\n".join(lines)


def sparkline(series: Sequence[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """One-line sparkline of a numeric series (e.g. windowed delivery ratio)."""
    if not series:
        return ""
    low = min(series) if lo is None else lo
    high = max(series) if hi is None else hi
    span = high - low
    chars = []
    for value in series:
        if span <= 0:
            level = len(_SPARK_LEVELS) - 1
        else:
            frac = (value - low) / span
            level = int(round(frac * (len(_SPARK_LEVELS) - 1)))
        level = max(0, min(len(_SPARK_LEVELS) - 1, level))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def render_delivery_timeline(series: Sequence[Tuple[float, float]], window: float) -> str:
    """Render a windowed delivery-ratio series as a labelled sparkline."""
    if not series:
        return "(no delivery data)"
    ratios = [ratio for _, ratio in series]
    line = sparkline(ratios, lo=0.0, hi=1.0)
    return (
        f"delivery ratio per {window:g}s window "
        f"(min {min(ratios):.2f}, max {max(ratios):.2f}):\n{line}"
    )
