"""Load-balancing metrics.

The HVDB claim: "no single node is more loaded than any other nodes, and
no problem of bottlenecks exists, which is likely to occur in tree-based
architectures" (Section 5).  These metrics quantify that claim from the
per-node forwarding counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.simulation.network import Network


def jain_index(loads: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly even load; ``1/n`` means a single node carries
    everything.  An empty or all-zero load vector is perfectly fair by
    convention (nothing was carried at all).
    """
    values = [x for x in loads]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(x * x for x in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def coefficient_of_variation(loads: Sequence[float]) -> float:
    """Standard deviation divided by the mean (0 = perfectly even)."""
    values = list(loads)
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((x - mean) ** 2 for x in values) / len(values)
    return math.sqrt(variance) / mean


def peak_to_mean(loads: Sequence[float]) -> float:
    """Maximum load divided by the mean load (1.0 = perfectly even)."""
    values = list(loads)
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    if mean == 0:
        return 1.0
    return max(values) / mean


@dataclass(frozen=True, slots=True)
class LoadBalanceMetrics:
    """Distribution statistics of per-node forwarding load."""

    node_count: int
    total_load: float
    max_load: float
    mean_load: float
    jain: float
    cov: float
    peak_to_mean_ratio: float

    def as_row(self) -> dict:
        return {
            "jain": round(self.jain, 4),
            "cov": round(self.cov, 3),
            "peak_to_mean": round(self.peak_to_mean_ratio, 2),
            "max_load": self.max_load,
        }


def forwarding_loads(
    network: Network, restrict_to: Optional[Iterable[int]] = None
) -> Dict[int, float]:
    """Per-node forwarding load: packets transmitted by each node.

    ``restrict_to`` limits the accounting to a subset of nodes -- e.g. the
    cluster heads, which is where the paper's load-balancing claim lives.
    """
    subset = set(restrict_to) if restrict_to is not None else None
    loads: Dict[int, float] = {}
    for node_id, node in network.nodes.items():
        if subset is not None and node_id not in subset:
            continue
        loads[node_id] = float(node.stats.sent_packets)
    return loads


def compute_load_balance(
    network: Network, restrict_to: Optional[Iterable[int]] = None
) -> LoadBalanceMetrics:
    loads = forwarding_loads(network, restrict_to)
    values = list(loads.values())
    total = sum(values)
    return LoadBalanceMetrics(
        node_count=len(values),
        total_load=total,
        max_load=max(values) if values else 0.0,
        mean_load=total / len(values) if values else 0.0,
        jain=jain_index(values),
        cov=coefficient_of_variation(values),
        peak_to_mean_ratio=peak_to_mean(values),
    )
