"""Control overhead metrics."""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.delivery import compute_delivery_metrics
from repro.simulation.network import Network


@dataclass(frozen=True, slots=True)
class OverheadMetrics:
    """Transmission-level overhead counters.

    Normalised overhead figures (``control_per_delivered``,
    ``transmissions_per_delivered``) are the standard MANET efficiency
    metrics: how many control packets / total transmissions the network
    spent per data packet successfully put into a member's hands.
    """

    control_packets: int
    control_bytes: int
    data_packets: int
    data_bytes: int
    total_transmissions: int
    achieved_deliveries: int
    control_per_delivered: float
    transmissions_per_delivered: float
    control_bytes_per_node_per_second: float

    def as_row(self) -> dict:
        return {
            "ctrl_pkts": self.control_packets,
            "ctrl_bytes": self.control_bytes,
            "ctrl_per_delivery": round(self.control_per_delivered, 2),
            "tx_per_delivery": round(self.transmissions_per_delivered, 2),
        }


def compute_overhead_metrics(network: Network, duration: float) -> OverheadMetrics:
    """Compute overhead counters accumulated by ``network`` over ``duration`` seconds."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    stats = network.stats
    delivery = compute_delivery_metrics(network)
    achieved = delivery.achieved_deliveries
    node_count = max(1, len(network.nodes))
    return OverheadMetrics(
        control_packets=stats.control_transmissions,
        control_bytes=stats.control_bytes,
        data_packets=stats.data_transmissions,
        data_bytes=stats.data_bytes,
        total_transmissions=stats.transmissions,
        achieved_deliveries=achieved,
        control_per_delivered=(stats.control_transmissions / achieved) if achieved else float("inf"),
        transmissions_per_delivered=(stats.transmissions / achieved) if achieved else float("inf"),
        control_bytes_per_node_per_second=stats.control_bytes / node_count / duration,
    )
