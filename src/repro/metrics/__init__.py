"""Evaluation metrics (System S9).

* :mod:`repro.metrics.delivery` -- packet delivery ratio and end-to-end
  delay statistics from the network's delivery ledger.
* :mod:`repro.metrics.overhead` -- control overhead in packets/bytes,
  absolute and normalised per delivered data packet.
* :mod:`repro.metrics.fairness` -- load-balancing indices (Jain fairness,
  coefficient of variation, peak-to-mean) over per-node forwarding loads.
* :mod:`repro.metrics.availability` -- windowed delivery ratio, service
  availability during failures and recovery time.
* :mod:`repro.metrics.collectors` -- :class:`MetricsReport`, a single
  structure experiments fill and benchmark tables print; its
  ``flat_row()`` is the scalar form orchestrator workers ship across
  process boundaries.
* :mod:`repro.metrics.visualization` -- ASCII renderings (VC grid,
  hypercube occupancy, bar charts, sparklines, delivery timelines) for
  terminal-friendly experiment output.
"""

from repro.metrics.delivery import DeliveryMetrics, compute_delivery_metrics
from repro.metrics.overhead import OverheadMetrics, compute_overhead_metrics
from repro.metrics.fairness import (
    jain_index,
    coefficient_of_variation,
    peak_to_mean,
    LoadBalanceMetrics,
    compute_load_balance,
)
from repro.metrics.availability import (
    AvailabilityMetrics,
    windowed_delivery_ratio,
    compute_availability,
)
from repro.metrics.collectors import MetricsReport, collect_metrics
from repro.metrics.visualization import (
    render_vc_grid,
    render_hypercube_occupancy,
    bar_chart,
    sparkline,
    render_delivery_timeline,
)

__all__ = [
    "DeliveryMetrics",
    "compute_delivery_metrics",
    "OverheadMetrics",
    "compute_overhead_metrics",
    "jain_index",
    "coefficient_of_variation",
    "peak_to_mean",
    "LoadBalanceMetrics",
    "compute_load_balance",
    "AvailabilityMetrics",
    "windowed_delivery_ratio",
    "compute_availability",
    "MetricsReport",
    "collect_metrics",
    "render_vc_grid",
    "render_hypercube_occupancy",
    "bar_chart",
    "sparkline",
    "render_delivery_timeline",
]
