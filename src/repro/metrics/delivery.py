"""Delivery ratio and delay metrics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.simulation.network import Network


@dataclass(frozen=True, slots=True)
class DeliveryMetrics:
    """Delivery and latency statistics over a set of originated data packets."""

    packets_originated: int
    intended_deliveries: int
    achieved_deliveries: int
    delivery_ratio: float
    mean_delay: float
    median_delay: float
    p95_delay: float
    max_delay: float

    def as_row(self) -> dict:
        return {
            "packets": self.packets_originated,
            "pdr": round(self.delivery_ratio, 4),
            "mean_delay_ms": round(self.mean_delay * 1000, 2),
            "p95_delay_ms": round(self.p95_delay * 1000, 2),
        }


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    idx = fraction * (len(sorted_values) - 1)
    lo = math.floor(idx)
    hi = math.ceil(idx)
    if lo == hi:
        return sorted_values[lo]
    weight = idx - lo
    return sorted_values[lo] * (1 - weight) + sorted_values[hi] * weight


def compute_delivery_metrics(
    network: Network,
    group: Optional[int] = None,
    since: float = 0.0,
) -> DeliveryMetrics:
    """Compute delivery metrics from the network's delivery ledger.

    ``group`` restricts the computation to one multicast group; ``since``
    ignores packets originated before the given simulation time (useful to
    exclude a warm-up phase).
    """
    delays: List[float] = []
    intended = 0
    achieved = 0
    packets = 0
    for record in network.deliveries.values():
        if group is not None and record.group != group:
            continue
        if record.sent_at < since:
            continue
        packets += 1
        intended += len(record.intended)
        achieved += len(record.delivered)
        delays.extend(record.delays())
    delays.sort()
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    return DeliveryMetrics(
        packets_originated=packets,
        intended_deliveries=intended,
        achieved_deliveries=achieved,
        delivery_ratio=(achieved / intended) if intended else 0.0,
        mean_delay=mean_delay,
        median_delay=_percentile(delays, 0.5),
        p95_delay=_percentile(delays, 0.95),
        max_delay=delays[-1] if delays else 0.0,
    )
