"""Availability metrics: delivery under failures and recovery time.

"High availability indicates that a network has the capability of hiding
or quickly responding to faults, making users no sense of faults in the
network" (paper Section 2.3).  The operational measurements here are:
windowed delivery ratio over time, the availability during a failure
window, and the recovery time until delivery returns to (a fraction of)
its pre-failure level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.simulation.network import Network


def windowed_delivery_ratio(
    network: Network, window: float, end_time: Optional[float] = None
) -> List[Tuple[float, float]]:
    """Delivery ratio per time window.

    Returns a list of ``(window_start, delivery_ratio)`` covering
    ``[0, end_time)``.  A window with no originated packets reports a
    ratio of 1.0 (nothing to deliver, nothing missed).
    """
    if window <= 0:
        raise ValueError("window must be positive")
    end = end_time if end_time is not None else network.simulator.now
    buckets: Dict[int, Tuple[int, int]] = {}
    for record in network.deliveries.values():
        idx = int(record.sent_at // window)
        intended, delivered = buckets.get(idx, (0, 0))
        buckets[idx] = (intended + len(record.intended), delivered + len(record.delivered))
    series: List[Tuple[float, float]] = []
    idx = 0
    while idx * window < end:
        intended, delivered = buckets.get(idx, (0, 0))
        ratio = (delivered / intended) if intended else 1.0
        series.append((idx * window, ratio))
        idx += 1
    return series


@dataclass(frozen=True, slots=True)
class AvailabilityMetrics:
    """Availability figures around a failure injection."""

    pre_failure_ratio: float
    during_failure_ratio: float
    post_failure_ratio: float
    availability: float          #: during-failure ratio / pre-failure ratio (capped at 1)
    recovery_time: float         #: seconds from the failure until recovery (inf if never)

    def as_row(self) -> dict:
        return {
            "pre_pdr": round(self.pre_failure_ratio, 3),
            "during_pdr": round(self.during_failure_ratio, 3),
            "post_pdr": round(self.post_failure_ratio, 3),
            "availability": round(self.availability, 3),
            "recovery_s": (
                round(self.recovery_time, 1) if self.recovery_time != float("inf") else "never"
            ),
        }


def _ratio_between(network: Network, start: float, end: float) -> float:
    intended = 0
    delivered = 0
    for record in network.deliveries.values():
        if start <= record.sent_at < end:
            intended += len(record.intended)
            delivered += len(record.delivered)
    return (delivered / intended) if intended else 1.0


def compute_availability(
    network: Network,
    failure_time: float,
    failure_duration: float,
    window: float = 5.0,
    recovery_threshold: float = 0.9,
) -> AvailabilityMetrics:
    """Availability metrics around a failure injected at ``failure_time``.

    * ``pre_failure_ratio`` -- delivery ratio over ``[0, failure_time)``.
    * ``during_failure_ratio`` -- over ``[failure_time, failure_time + failure_duration)``.
    * ``post_failure_ratio`` -- from the end of the failure to "now".
    * ``recovery_time`` -- the time after ``failure_time`` of the first
      window whose delivery ratio reaches ``recovery_threshold`` times the
      pre-failure ratio (``inf`` if that never happens).
    """
    pre = _ratio_between(network, 0.0, failure_time)
    during = _ratio_between(network, failure_time, failure_time + failure_duration)
    post = _ratio_between(network, failure_time + failure_duration, network.simulator.now)
    target = recovery_threshold * pre
    recovery = float("inf")
    for start, ratio in windowed_delivery_ratio(network, window):
        if start < failure_time:
            continue
        # only count windows that actually carried traffic
        carried = any(
            start <= rec.sent_at < start + window and rec.intended
            for rec in network.deliveries.values()
        )
        if carried and ratio >= target:
            recovery = start + window - failure_time
            break
    availability = min(1.0, during / pre) if pre > 0 else 1.0
    return AvailabilityMetrics(
        pre_failure_ratio=pre,
        during_failure_ratio=during,
        post_failure_ratio=post,
        availability=availability,
        recovery_time=recovery,
    )
