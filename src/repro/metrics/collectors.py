"""Assemble a full metrics report for one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.metrics.delivery import DeliveryMetrics, compute_delivery_metrics
from repro.metrics.fairness import LoadBalanceMetrics, compute_load_balance
from repro.metrics.overhead import OverheadMetrics, compute_overhead_metrics
from repro.simulation.network import Network


@dataclass
class MetricsReport:
    """Everything an experiment reports for one run."""

    protocol: str
    node_count: int
    duration: float
    delivery: DeliveryMetrics
    overhead: OverheadMetrics
    load_balance: LoadBalanceMetrics
    backbone_load_balance: Optional[LoadBalanceMetrics] = None
    protocol_stats: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dictionary for table printing."""
        row = {
            "protocol": self.protocol,
            "nodes": self.node_count,
        }
        row.update(self.delivery.as_row())
        row.update(self.overhead.as_row())
        row.update(self.load_balance.as_row())
        row.update({k: round(v, 4) if isinstance(v, float) else v for k, v in self.extras.items()})
        return row


def collect_metrics(
    network: Network,
    protocol: str,
    duration: float,
    backbone_nodes: Optional[Iterable[int]] = None,
    protocol_stats: Optional[Dict[str, int]] = None,
    group: Optional[int] = None,
) -> MetricsReport:
    """Build a :class:`MetricsReport` from a finished simulation.

    ``backbone_nodes`` (e.g. the cluster heads) adds a second load-balance
    view restricted to the backbone, which is where the paper's
    load-balancing claim applies.
    """
    return MetricsReport(
        protocol=protocol,
        node_count=len(network.nodes),
        duration=duration,
        delivery=compute_delivery_metrics(network, group=group),
        overhead=compute_overhead_metrics(network, duration),
        load_balance=compute_load_balance(network),
        backbone_load_balance=(
            compute_load_balance(network, backbone_nodes) if backbone_nodes else None
        ),
        protocol_stats=dict(protocol_stats or {}),
    )


def format_table(rows: Iterable[dict], title: Optional[str] = None) -> str:
    """Render rows (list of flat dicts) as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
