"""Assemble a full metrics report for one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.metrics.delivery import DeliveryMetrics, compute_delivery_metrics
from repro.metrics.fairness import LoadBalanceMetrics, compute_load_balance
from repro.metrics.overhead import OverheadMetrics, compute_overhead_metrics
from repro.simulation.network import Network


@dataclass
class MetricsReport:
    """Everything an experiment reports for one run."""

    protocol: str
    node_count: int
    duration: float
    delivery: DeliveryMetrics
    overhead: OverheadMetrics
    load_balance: LoadBalanceMetrics
    backbone_load_balance: Optional[LoadBalanceMetrics] = None
    protocol_stats: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat dictionary for table printing."""
        row = {
            "protocol": self.protocol,
            "nodes": self.node_count,
        }
        row.update(self.delivery.as_row())
        row.update(self.overhead.as_row())
        row.update(self.load_balance.as_row())
        row.update({k: round(v, 4) if isinstance(v, float) else v for k, v in self.extras.items()})
        return row

    def flat_row(self) -> dict:
        """Exhaustive flat dictionary of every figure in the report.

        Unlike :meth:`as_row` (curated columns for table printing), this
        includes the raw counters, the full delay distribution, the
        backbone load-balance view (``backbone_``-prefixed) and the
        protocol counters -- everything a detached worker process needs to
        report so the orchestrator never has to ship a scenario object
        across a process boundary.  All values are plain scalars, so the
        result is picklable and JSON-serialisable.
        """
        row = {
            "protocol": self.protocol,
            "nodes": self.node_count,
            "duration": self.duration,
            "packets_originated": self.delivery.packets_originated,
            "intended_deliveries": self.delivery.intended_deliveries,
            "achieved_deliveries": self.delivery.achieved_deliveries,
            "pdr": self.delivery.delivery_ratio,
            "mean_delay": self.delivery.mean_delay,
            "median_delay": self.delivery.median_delay,
            "p95_delay": self.delivery.p95_delay,
            "max_delay": self.delivery.max_delay,
            "ctrl_pkts": self.overhead.control_packets,
            "ctrl_bytes": self.overhead.control_bytes,
            "data_pkts": self.overhead.data_packets,
            "data_bytes": self.overhead.data_bytes,
            "total_tx": self.overhead.total_transmissions,
            "ctrl_per_delivery": self.overhead.control_per_delivered,
            "tx_per_delivery": self.overhead.transmissions_per_delivered,
            "ctrl_bytes_per_node_per_s": self.overhead.control_bytes_per_node_per_second,
            "jain": self.load_balance.jain,
            "cov": self.load_balance.cov,
            "peak_to_mean": self.load_balance.peak_to_mean_ratio,
            "max_load": self.load_balance.max_load,
        }
        if self.backbone_load_balance is not None:
            backbone = self.backbone_load_balance
            row.update(
                {
                    "backbone_nodes": backbone.node_count,
                    "backbone_jain": backbone.jain,
                    "backbone_cov": backbone.cov,
                    "backbone_peak_to_mean": backbone.peak_to_mean_ratio,
                    "backbone_max_load": backbone.max_load,
                }
            )
        row.update(self.protocol_stats)
        row.update(self.extras)
        return row


def collect_metrics(
    network: Network,
    protocol: str,
    duration: float,
    backbone_nodes: Optional[Iterable[int]] = None,
    protocol_stats: Optional[Dict[str, int]] = None,
    group: Optional[int] = None,
) -> MetricsReport:
    """Build a :class:`MetricsReport` from a finished simulation.

    ``backbone_nodes`` (e.g. the cluster heads) adds a second load-balance
    view restricted to the backbone, which is where the paper's
    load-balancing claim applies.
    """
    return MetricsReport(
        protocol=protocol,
        node_count=len(network.nodes),
        duration=duration,
        delivery=compute_delivery_metrics(network, group=group),
        overhead=compute_overhead_metrics(network, duration),
        load_balance=compute_load_balance(network),
        backbone_load_balance=(
            compute_load_balance(network, backbone_nodes) if backbone_nodes else None
        ),
        protocol_stats=dict(protocol_stats or {}),
    )


def format_table(rows: Iterable[dict], title: Optional[str] = None) -> str:
    """Render rows (list of flat dicts) as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(str(row.get(c, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)
