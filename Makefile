# Repo tooling. Everything runs from a source checkout (PYTHONPATH=src),
# no installation required.

PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test bench-smoke adaptive-smoke queue-smoke net-smoke store-smoke phy-smoke bench docs-check docs-links sweeps protocols protocol-coverage check ci

## tier-1 test suite (fast, deterministic) -- must stay green
test:
	$(PYTHON) -m pytest -x -q

## seconds-long end-to-end check of the experiment orchestrator:
## one tiny sweep through workers, cache and export, under pytest
bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_s0_orchestrator_smoke.py

## seconds-long end-to-end check of adaptive seed replication: the
## smoke_adaptive sweep through per-point CI stopping, plus the
## zero-executions-on-warm-cache invariant, under pytest
adaptive-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_s1_adaptive_smoke.py

## seconds-long end-to-end check of the queue executor: the smoke grid
## drained by two work-stealing worker processes (file leases over a
## shared queue directory) must produce a CSV artifact byte-identical
## to a process-executor run, with the queue fully drained
QUEUE_SMOKE_DIR := .ci/queue-smoke
queue-smoke:
	rm -rf $(QUEUE_SMOKE_DIR)
	$(PYTHON) -m repro.experiments run smoke --executor process \
	  --cache-dir $(QUEUE_SMOKE_DIR)/ref-cache --out $(QUEUE_SMOKE_DIR)/ref
	$(PYTHON) -m repro.experiments run smoke --executor queue --workers 2 \
	  --queue-dir $(QUEUE_SMOKE_DIR)/queue \
	  --cache-dir $(QUEUE_SMOKE_DIR)/queue-cache --out $(QUEUE_SMOKE_DIR)/out
	cmp $(QUEUE_SMOKE_DIR)/ref/smoke.csv $(QUEUE_SMOKE_DIR)/out/smoke.csv
	test -z "$$(ls $(QUEUE_SMOKE_DIR)/queue/tasks)"
	@echo "make queue-smoke: OK (two queue workers, byte-identical artifacts, queue drained)"

## seconds-long churn drill for the tcp executor: the smoke grid
## drained over TCP by two externally attached --connect workers, one
## of them SIGKILLed mid-sweep; the artifacts must byte-match a
## process-executor run and a warm re-run must execute nothing
net-smoke:
	$(PYTHON) scripts/net_smoke.py

## seconds-long end-to-end check of the result-store backends: the
## smoke grid run against a sqlite store must export CSV/JSON artifacts
## byte-identical to a json-store run, a warm sqlite re-run must execute
## nothing, migrate must round-trip the cache between backends, and the
## store benchmark logs the json-vs-sqlite batch-scan ratio
STORE_SMOKE_DIR := .ci/store-smoke
store-smoke:
	rm -rf $(STORE_SMOKE_DIR)
	$(PYTHON) -m repro.experiments run smoke \
	  --cache-dir $(STORE_SMOKE_DIR)/json-cache --out $(STORE_SMOKE_DIR)/json
	$(PYTHON) -m repro.experiments run smoke \
	  --cache-dir sqlite:$(STORE_SMOKE_DIR)/cache.db --out $(STORE_SMOKE_DIR)/sqlite
	cmp $(STORE_SMOKE_DIR)/json/smoke.csv $(STORE_SMOKE_DIR)/sqlite/smoke.csv
	$(PYTHON) -m repro.experiments run smoke \
	  --cache-dir sqlite:$(STORE_SMOKE_DIR)/cache.db --format none 2>&1 \
	  | grep -q "done: 12 cached + 0 executed" \
	  || { echo "store gate: warm sqlite re-run executed runs (expected 0)"; exit 1; }
	$(PYTHON) -m repro.experiments migrate \
	  --from sqlite:$(STORE_SMOKE_DIR)/cache.db --to $(STORE_SMOKE_DIR)/migrated
	$(PYTHON) -m repro.experiments export smoke \
	  --cache-dir $(STORE_SMOKE_DIR)/migrated --out $(STORE_SMOKE_DIR)/migrated-out
	cmp $(STORE_SMOKE_DIR)/sqlite/smoke.csv $(STORE_SMOKE_DIR)/migrated-out/smoke.csv
	$(PYTHON) scripts/store_bench.py
	@echo "make store-smoke: OK (byte-identical artifacts across stores, warm sqlite replay, migrate round-trip)"

## seconds-long end-to-end check of the physical layer: the phy_smoke
## sweep (one run per registered radio x MAC combination, sinr and
## csma_ca included), a warm re-run that must execute nothing, and the
## physics-fingerprint regression suite (golden metric rows, cache-key
## digests, artifact hashes)
PHY_SMOKE_DIR := .ci/phy-smoke
phy-smoke:
	rm -rf $(PHY_SMOKE_DIR)
	$(PYTHON) -m repro.experiments run phy_smoke \
	  --cache-dir $(PHY_SMOKE_DIR)/cache --out $(PHY_SMOKE_DIR)/out
	$(PYTHON) -m repro.experiments run phy_smoke \
	  --cache-dir $(PHY_SMOKE_DIR)/cache --format none 2>&1 \
	  | grep -q "+ 0 executed" \
	  || { echo "phy gate: warm re-run executed runs (expected 0)"; exit 1; }
	$(PYTHON) -m pytest -q tests/test_phy_fingerprint.py
	@echo "make phy-smoke: OK (3x3 radio/MAC grid, warm zero-exec replay, fingerprints match golden)"

## full benchmark suite regenerating the paper's evaluation (minutes)
bench:
	$(PYTHON) -m pytest -q benchmarks/

## documentation consistency: the docs suite exists, intra-repo links
## resolve, README + docs/ match the shipped CLI, quoted sweep/make
## commands reference real things, package docstrings match exports
docs-check:
	$(PYTHON) scripts/check_docs.py

## just the intra-repo link check (the dedicated CI step)
docs-links:
	$(PYTHON) scripts/check_docs.py --links

## list the registered experiment sweeps
sweeps:
	$(PYTHON) -m repro.experiments list

## list registered protocol stacks / radios / MACs / mobility models
protocols:
	$(PYTHON) -m repro.experiments protocols

## CI gate: every registered protocol must be exercised by a registered sweep
protocol-coverage:
	$(PYTHON) -m repro.experiments protocols --check-coverage

## everything a PR must keep green
check: test bench-smoke adaptive-smoke queue-smoke net-smoke store-smoke phy-smoke docs-check protocol-coverage

## reproduce the CI pipeline (.github/workflows/ci.yml) locally:
## tier-1 tests, docs consistency (links included), the smoke sweep
## split across three share-nothing shards, a merge that must
## reassemble the full grid, a wall-time diff against the committed
## baseline (loose tolerance across machines) plus a strict gate on a
## synthetic 2x regression, the adaptive smoke sweep (run + a
## warm-cache re-run that must execute zero runs), the queue-executor
## smoke (two work-stealing workers, byte-identical artifacts), the
## tcp-executor churn drill (a --connect worker SIGKILLed mid-sweep,
## byte-identical artifacts anyway), the result-store smoke (sqlite vs
## json byte-equality + migrate), the physical-layer smoke (3x3
## radio/MAC grid, warm zero-exec replay, golden fingerprints), and a
## perf-trend append judged against the trailing window
CI_DIR := .ci
ci: test docs-check protocol-coverage
	rm -rf $(CI_DIR)
	for i in 1 2 3; do \
	  $(PYTHON) -m repro.experiments run smoke --shard $$i/3 \
	    --cache-dir $(CI_DIR)/shard$$i --format none || exit 1; \
	done
	$(PYTHON) -m repro.experiments merge smoke --cache-dir $(CI_DIR)/merged \
	  --from $(CI_DIR)/shard1 --from $(CI_DIR)/shard2 --from $(CI_DIR)/shard3 \
	  --out $(CI_DIR)/artifacts
	$(PYTHON) -m repro.experiments perf smoke \
	  --baseline benchmarks/baselines/BENCH_smoke.json \
	  --current $(CI_DIR)/artifacts/smoke.json \
	  --tolerance 10 --report $(CI_DIR)/perf-report.json
	$(PYTHON) -c "import json; doc = json.load(open('$(CI_DIR)/artifacts/smoke.json')); \
	  [r.__setitem__('wall_time', r['wall_time'] * 2.0) for r in doc['results']]; \
	  json.dump(doc, open('$(CI_DIR)/artifacts/smoke-2x.json', 'w'))"
	$(PYTHON) -m repro.experiments perf smoke \
	  --baseline $(CI_DIR)/artifacts/smoke.json \
	  --current $(CI_DIR)/artifacts/smoke-2x.json --tolerance 0.5; \
	  status=$$?; if [ $$status -ne 1 ]; then \
	    echo "perf gate: expected exit 1 (regression) on the synthetic 2x slowdown, got $$status"; exit 1; fi
	$(PYTHON) -m repro.experiments run smoke_adaptive \
	  --cache-dir $(CI_DIR)/adaptive --format none
	$(PYTHON) -m repro.experiments run smoke_adaptive \
	  --cache-dir $(CI_DIR)/adaptive --format none \
	  | grep -q "; 0 executed +" \
	  || { echo "adaptive gate: warm-cache re-run executed runs (expected 0)"; exit 1; }
	$(MAKE) queue-smoke
	$(MAKE) net-smoke
	$(MAKE) store-smoke
	$(MAKE) phy-smoke
	$(PYTHON) -m repro.experiments perf smoke \
	  --current $(CI_DIR)/artifacts/smoke.json \
	  --trend $(CI_DIR)/trend.jsonl --tolerance 10
	@echo "make ci: OK (tests, docs, 3-way sharded smoke, merge, perf, adaptive, queue, net, store, phy, trend)"
