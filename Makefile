# Repo tooling. Everything runs from a source checkout (PYTHONPATH=src),
# no installation required.

PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

.PHONY: test bench-smoke bench docs-check sweeps check

## tier-1 test suite (fast, deterministic) -- must stay green
test:
	$(PYTHON) -m pytest -x -q

## seconds-long end-to-end check of the experiment orchestrator:
## one tiny sweep through workers, cache and export, under pytest
bench-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_s0_orchestrator_smoke.py

## full benchmark suite regenerating the paper's evaluation (minutes)
bench:
	$(PYTHON) -m pytest -q benchmarks/

## documentation consistency: docs exist, README matches the shipped CLI,
## every package docstring matches its actual exports
docs-check:
	$(PYTHON) scripts/check_docs.py

## list the registered experiment sweeps
sweeps:
	$(PYTHON) -m repro.experiments list

## everything a PR must keep green
check: test bench-smoke docs-check
