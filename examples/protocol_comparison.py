#!/usr/bin/env python
"""Compare HVDB against the baseline multicast protocols on one workload.

Runs the registered ``protocol_comparison`` sweep -- the same 100-node
random-waypoint scenario under HVDB, flooding, SGM-style overlay trees,
DSM-style source routing and SPBM-style hierarchical membership (see
``repro.experiments.specs``) -- on parallel workers, and prints one table
row per protocol: the qualitative picture behind the paper's Related Work
comparison (Section 2.2).

Run with::

    python examples/protocol_comparison.py

or equivalently ``python -m repro.experiments run protocol_comparison``.
"""

from __future__ import annotations

import os

from repro.experiments import get_spec, run_sweep
from repro.metrics.collectors import format_table


def main() -> None:
    spec = get_spec("protocol_comparison")
    workers = max(2, os.cpu_count() or 1)
    print(f"running {spec.run_count} protocols on {workers} workers ...")
    results = run_sweep(spec, workers=workers, progress=True)

    rows = []
    for result in results:
        metrics = result.metrics
        rows.append(
            {
                "protocol": result.params["protocol"],
                "pdr": round(metrics["pdr"], 3),
                "delay_ms": round(metrics["mean_delay"] * 1000, 1),
                "data_tx/pkt": round(
                    metrics["data_pkts"] / max(1, metrics["packets_originated"]), 1
                ),
                "ctrl_tx": metrics["ctrl_pkts"],
                "ctrlB/node/s": round(metrics["ctrl_bytes_per_node_per_s"], 1),
                "jain": round(metrics["jain"], 3),
                "peak/mean": round(metrics["peak_to_mean"], 2),
            }
        )

    print()
    print(format_table(rows, title="Protocol comparison (100 nodes, 12 receivers, 90 s of traffic)"))
    print()
    print("Reading the table:")
    print(" * flooding delivers the most but costs ~N data transmissions per packet")
    print("   and has no control plane; its cost explodes with network size.")
    print(" * DSM/SPBM pay a control plane that involves every node in the network.")
    print(" * HVDB keeps the control plane on the cluster-head backbone and spreads")
    print("   forwarding over the hypercube structure (higher Jain index / lower")
    print("   peak-to-mean than single-tree protocols at comparable delivery).")


if __name__ == "__main__":
    main()
