#!/usr/bin/env python
"""Compare HVDB against the baseline multicast protocols on one workload.

Runs the same 100-node random-waypoint scenario under HVDB, flooding,
SGM-style overlay trees, DSM-style source routing and SPBM-style
hierarchical membership, and prints one table row per protocol -- the
qualitative picture behind the paper's Related Work comparison
(Section 2.2).

Run with::

    python examples/protocol_comparison.py
"""

from __future__ import annotations

import dataclasses

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import PROTOCOLS, ScenarioConfig
from repro.metrics.collectors import format_table


def main() -> None:
    base = ScenarioConfig(
        n_nodes=100,
        area_size=1500.0,
        radio_range=250.0,
        max_speed=4.0,
        n_groups=1,
        group_size=12,
        traffic_interval=1.0,
        traffic_start=30.0,
        vc_cols=8,
        vc_rows=8,
        dimension=4,
        dsm_position_period=15.0,
        seed=31,
    )

    rows = []
    for protocol in PROTOCOLS:
        print(f"running {protocol} ...")
        result = run_scenario(dataclasses.replace(base, protocol=protocol), duration=120.0)
        report = result.report
        rows.append(
            {
                "protocol": protocol,
                "pdr": round(report.delivery.delivery_ratio, 3),
                "delay_ms": round(report.delivery.mean_delay * 1000, 1),
                "data_tx/pkt": round(
                    report.overhead.data_packets
                    / max(1, report.delivery.packets_originated),
                    1,
                ),
                "ctrl_tx": report.overhead.control_packets,
                "ctrlB/node/s": round(report.overhead.control_bytes_per_node_per_second, 1),
                "jain": round(report.load_balance.jain, 3),
                "peak/mean": round(report.load_balance.peak_to_mean_ratio, 2),
            }
        )

    print()
    print(format_table(rows, title="Protocol comparison (100 nodes, 12 receivers, 90 s of traffic)"))
    print()
    print("Reading the table:")
    print(" * flooding delivers the most but costs ~N data transmissions per packet")
    print("   and has no control plane; its cost explodes with network size.")
    print(" * DSM/SPBM pay a control plane that involves every node in the network.")
    print(" * HVDB keeps the control plane on the cluster-head backbone and spreads")
    print("   forwarding over the hypercube structure (higher Jain index / lower")
    print("   peak-to-mean than single-tree protocols at comparable delivery).")


if __name__ == "__main__":
    main()
