#!/usr/bin/env python
"""Disaster-relief scenario: cluster-head failures and HVDB fail-over.

The availability claim of the paper (Section 5): because an incomplete
hypercube still offers multiple node-disjoint logical routes, the loss of
cluster heads should barely interrupt an ongoing multicast session.  This
example runs a rescue-team network, kills a substantial fraction of the
cluster heads mid-session and reports delivery before / during / after the
failure together with the recovery time.

Unlike the other examples, this one deliberately uses the *imperative*
path -- :func:`repro.experiments.runner.run_scenario` with a
``during_run`` callable -- because the post-run analysis (the windowed
delivery timeline) needs the live network object.  For grids of runs,
declare a :class:`~repro.experiments.orchestrator.SweepSpec` instead and
let the orchestrator parallelise and cache them.

Run with::

    python examples/disaster_relief_failover.py
"""

from __future__ import annotations

from repro.core.protocol import HVDB_PROTOCOL, HVDBConfig
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig
from repro.metrics.availability import compute_availability, windowed_delivery_ratio

FAIL_FRACTION = 0.3        # fraction of cluster heads destroyed at t = 75 s
DURATION = 150.0


def kill_cluster_heads(scenario) -> None:
    """Destroy a fraction of the current backbone (invoked mid-run)."""
    backbone = scenario.stack.model.cluster_heads()
    step = max(1, int(1 / FAIL_FRACTION))
    victims = backbone[::step]
    print(f"  !! t={scenario.network.simulator.now:.0f}s: "
          f"{len(victims)} of {len(backbone)} cluster heads destroyed")
    scenario.network.fail_nodes(victims)


def main() -> None:
    config = ScenarioConfig(
        protocol=HVDB_PROTOCOL,
        n_nodes=110,
        area_size=1600.0,
        radio_range=280.0,
        max_speed=2.0,             # rescue workers on foot
        n_groups=1,
        group_size=14,
        traffic_interval=0.5,      # frequent situation updates
        traffic_start=25.0,
        hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
        seed=23,
    )

    print("Disaster-relief scenario: rescue teams, mid-session cluster-head failures")
    result = run_scenario(config, duration=DURATION, during_run=kill_cluster_heads)
    network = result.scenario.network

    availability = compute_availability(
        network,
        failure_time=DURATION / 2.0,
        failure_duration=20.0,
        window=10.0,
    )
    print()
    print(f"Delivery ratio before failure : {availability.pre_failure_ratio:.3f}")
    print(f"Delivery ratio during failure : {availability.during_failure_ratio:.3f}")
    print(f"Delivery ratio after recovery : {availability.post_failure_ratio:.3f}")
    print(f"Availability (during/before)  : {availability.availability:.3f}")
    recovery = availability.recovery_time
    print(f"Recovery time                 : "
          f"{'never' if recovery == float('inf') else f'{recovery:.0f} s'}")
    stats = result.report.protocol_stats
    print(f"Hypercube-tier fail-overs     : {stats['failovers']}")
    print(f"Cluster-head hand-overs       : {stats['cluster_head_changes']}")

    print()
    print("Delivery ratio over time (10 s windows):")
    for start, ratio in windowed_delivery_ratio(network, window=10.0, end_time=DURATION):
        marker = " <- failure" if start == DURATION / 2.0 else ""
        bar = "#" * int(ratio * 40)
        print(f"  t={start:5.0f}s  {ratio:5.2f}  {bar}{marker}")


if __name__ == "__main__":
    main()
