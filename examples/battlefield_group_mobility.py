#!/usr/bin/env python
"""Battlefield scenario: platoons under group mobility with QoS constraints.

The paper motivates HVDB with "communications in battlefield and disaster
relief scenarios" and assumes heterogeneous devices ("a mobile device
equipped on a tank can have stronger capability than the one equipped for a
foot soldier", Section 3).  This example models exactly that:

* 120 nodes organised into 6 platoons moving with Reference Point Group
  Mobility (RPGM);
* only 40% of the nodes (the "vehicle-mounted" ones) are CH-capable;
* one command multicast group spanning several platoons with a 500 ms
  delay requirement;
* delivery, delay and QoS-satisfaction figures printed at the end.

The scenario itself is a declarative
:class:`~repro.experiments.orchestrator.SweepSpec` executed by the
orchestrator; the pieces that need *code* -- the RPGM mobility, the
capability marking and the QoS-satisfaction figure -- are registered by
name (``register_mobility`` / ``register_hook`` / ``register_collector``)
so the spec stays declarative and each run can execute in a worker
process.  The mobility model is a first-class ``ScenarioConfig`` field,
so the orchestrator's content-hash cache key captures it like any other
parameter.

Run with::

    python examples/battlefield_group_mobility.py
"""

from __future__ import annotations

from repro.core.protocol import HVDB_PROTOCOL, HVDBConfig
from repro.core.qos import QoSRequirement, qos_satisfaction_ratio
from repro.experiments import (
    ScenarioConfig,
    SweepSpec,
    register_collector,
    register_hook,
    register_mobility,
    run_sweep,
)
from repro.mobility.group_mobility import ReferencePointGroupMobility


N_NODES = 120
N_PLATOONS = 6
CH_CAPABLE_FRACTION = 0.4
QOS = QoSRequirement(max_delay=0.5)          # 500 ms command-latency bound


@register_mobility("battlefield_platoons")
def platoon_mobility(config: ScenarioConfig, node_ids):
    """RPGM: each platoon follows its own moving reference point."""
    platoons = {
        pid: [n for n in node_ids if n % N_PLATOONS == pid] for pid in range(N_PLATOONS)
    }
    return ReferencePointGroupMobility(
        config.area(),
        node_ids,
        groups=platoons,
        group_speed=6.0,        # vehicles move faster than individual soldiers
        member_radius=200.0,
        member_speed=3.0,
        seed=config.seed,
    )


@register_hook("battlefield_mark_capability")
def mark_heterogeneous_capability(scenario) -> None:
    """Only vehicle-mounted nodes (2 of every 5) can serve as cluster heads."""
    for node_id, node in scenario.network.nodes.items():
        node.ch_capable = (node_id % 5) < int(5 * CH_CAPABLE_FRACTION)
    # re-run clustering so the initial backbone respects the capability flags
    scenario.stack.clustering.update()


@register_collector("qos_satisfaction_500ms")
def command_latency_satisfaction(result) -> dict:
    delays = [
        d for record in result.scenario.network.deliveries.values() for d in record.delays()
    ]
    return {"qos_satisfaction": qos_satisfaction_ratio(delays, QOS)}


SPEC = SweepSpec(
    name="battlefield",
    description="6 platoons under RPGM, 40% CH-capable nodes, 500 ms QoS bound",
    base=ScenarioConfig(
        protocol=HVDB_PROTOCOL,
        mobility="battlefield_platoons",
        n_nodes=N_NODES,
        area_size=1200.0,
        radio_range=300.0,
        n_groups=1,
        group_size=18,              # command group spread over several platoons
        sources_per_group=2,        # two concurrent commanders
        traffic_interval=1.0,
        traffic_start=30.0,
        hvdb=HVDBConfig(
            vc_cols=8,
            vc_rows=8,
            dimension=4,
            qos_requirements={1: QOS},
        ),
    ),
    grid={},
    seeds=(17,),
    duration=150.0,
    before_run="battlefield_mark_capability",
    collector="qos_satisfaction_500ms",
)


def main() -> None:
    print(f"Battlefield scenario: {N_NODES} nodes in {N_PLATOONS} platoons, "
          f"{int(CH_CAPABLE_FRACTION * 100)}% CH-capable, QoS delay bound {QOS.max_delay*1000:.0f} ms")
    (result,) = run_sweep(SPEC, progress=True)
    metrics = result.metrics

    print()
    print(f"Packets originated        : {metrics['packets_originated']}")
    print(f"Delivery ratio            : {metrics['pdr']:.3f}")
    print(f"Mean delay                : {metrics['mean_delay'] * 1000:.1f} ms")
    print(f"QoS satisfaction (<=500ms): {metrics['qos_satisfaction']:.3f}")
    if "backbone_jain" in metrics:
        print(f"Cluster heads (vehicles)  : {metrics['backbone_nodes']}")
        print(f"Backbone Jain index       : {metrics['backbone_jain']:.3f}")
    print(f"Cluster-head hand-overs   : {metrics['cluster_head_changes']}")
    print(f"Hypercube-tier fail-overs : {metrics['failovers']}")


if __name__ == "__main__":
    main()
