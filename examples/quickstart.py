#!/usr/bin/env python
"""Quickstart: run the HVDB QoS multicast protocol on a small MANET.

Executes the registered ``quickstart`` sweep (one 100-node random-waypoint
scenario with the paper's 8x8 virtual-circle grid and 4-dimensional
hypercubes -- see ``repro.experiments.specs``) through the experiment
orchestrator and prints delivery, delay, overhead and load-balance
figures.

Run with::

    python examples/quickstart.py

The same scenario is available from the command line::

    python -m repro.experiments run quickstart
"""

from __future__ import annotations

from repro.experiments import get_spec, run_sweep
from repro.metrics.collectors import format_table


def main() -> None:
    spec = get_spec("quickstart")
    print(f"Building and running the scenario ({spec.duration:.0f} simulated seconds)...")
    (result,) = run_sweep(spec, progress=True)
    metrics = result.metrics

    summary = {
        "protocol": metrics["protocol"],
        "nodes": metrics["nodes"],
        "pdr": round(metrics["pdr"], 4),
        "mean_delay_ms": round(metrics["mean_delay"] * 1000, 2),
        "ctrl_pkts": metrics["ctrl_pkts"],
        "tx_per_delivery": round(metrics["tx_per_delivery"], 2),
        "jain": round(metrics["jain"], 4),
    }
    print()
    print(format_table([summary], title="HVDB quickstart summary"))
    print()
    print(f"Multicast packets originated : {metrics['packets_originated']}")
    print(f"Delivery ratio               : {metrics['pdr']:.3f}")
    print(f"Mean end-to-end delay        : {metrics['mean_delay'] * 1000:.1f} ms")
    print(f"95th percentile delay        : {metrics['p95_delay'] * 1000:.1f} ms")
    print(f"Control packets transmitted  : {metrics['ctrl_pkts']}")
    print(f"Control bytes / node / s     : {metrics['ctrl_bytes_per_node_per_s']:.1f}")
    print(f"Transmissions per delivery   : {metrics['tx_per_delivery']:.2f}")

    if "backbone_jain" in metrics:
        print()
        print("Backbone (cluster-head) load balance:")
        print(f"  cluster heads            : {metrics['backbone_nodes']}")
        print(f"  Jain fairness index      : {metrics['backbone_jain']:.3f}")
        print(f"  peak-to-mean load ratio  : {metrics['backbone_peak_to_mean']:.2f}")

    print()
    print("Protocol activity (paper Figures 4-6):")
    print(f"  route-maintenance beacons  : {metrics['route_beacons_sent']}")
    print(f"  MNT-Summary rounds         : {metrics['mnt_summaries_sent']}")
    print(f"  HT-Summary broadcasts      : {metrics['ht_summaries_broadcast']}")
    print(f"  mesh-tier forwards         : {metrics['data_forwarded_mesh']}")
    print(f"  hypercube-tier forwards    : {metrics['data_forwarded_cube']}")
    print(f"  fail-overs taken           : {metrics['failovers']}")
    print(f"  cluster-head hand-overs    : {metrics['cluster_head_changes']}")


if __name__ == "__main__":
    main()
