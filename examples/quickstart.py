#!/usr/bin/env python
"""Quickstart: run the HVDB QoS multicast protocol on a small MANET.

Builds a 100-node mobile ad hoc network (random waypoint mobility), deploys
the HVDB stack (virtual-circle clustering, the hypercube/mesh backbone and
the three protocol algorithms of the paper), attaches one CBR multicast
source and prints delivery, delay, overhead and load-balance figures.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig
from repro.metrics.collectors import format_table


def main() -> None:
    config = ScenarioConfig(
        protocol="hvdb",        # the paper's protocol; try "flooding" or "sgm" too
        n_nodes=100,            # mobile nodes
        area_size=1500.0,       # metres (square)
        radio_range=250.0,      # metres
        max_speed=5.0,          # m/s random waypoint
        n_groups=1,
        group_size=10,          # multicast receivers
        traffic_interval=1.0,   # one 512-byte packet per second
        vc_cols=8, vc_rows=8,   # the paper's 8x8 virtual-circle grid (Figure 2)
        dimension=4,            # 4-dimensional logical hypercubes (Figure 3)
        seed=7,
    )

    print("Building and running the scenario (about 120 simulated seconds)...")
    result = run_scenario(config, duration=120.0)
    report = result.report

    print()
    print(format_table([report.as_row()], title="HVDB quickstart summary"))
    print()
    delivery = report.delivery
    overhead = report.overhead
    print(f"Multicast packets originated : {delivery.packets_originated}")
    print(f"Delivery ratio               : {delivery.delivery_ratio:.3f}")
    print(f"Mean end-to-end delay        : {delivery.mean_delay * 1000:.1f} ms")
    print(f"95th percentile delay        : {delivery.p95_delay * 1000:.1f} ms")
    print(f"Control packets transmitted  : {overhead.control_packets}")
    print(f"Control bytes / node / s     : {overhead.control_bytes_per_node_per_second:.1f}")
    print(f"Transmissions per delivery   : {overhead.transmissions_per_delivered:.2f}")

    backbone = report.backbone_load_balance
    if backbone is not None:
        print()
        print("Backbone (cluster-head) load balance:")
        print(f"  cluster heads            : {backbone.node_count}")
        print(f"  Jain fairness index      : {backbone.jain:.3f}")
        print(f"  peak-to-mean load ratio  : {backbone.peak_to_mean_ratio:.2f}")

    stats = report.protocol_stats
    print()
    print("Protocol activity (paper Figures 4-6):")
    print(f"  route-maintenance beacons  : {stats['route_beacons_sent']}")
    print(f"  MNT-Summary rounds         : {stats['mnt_summaries_sent']}")
    print(f"  HT-Summary broadcasts      : {stats['ht_summaries_broadcast']}")
    print(f"  mesh-tier forwards         : {stats['data_forwarded_mesh']}")
    print(f"  hypercube-tier forwards    : {stats['data_forwarded_cube']}")
    print(f"  fail-overs taken           : {stats['failovers']}")
    print(f"  cluster-head hand-overs    : {stats['cluster_head_changes']}")


if __name__ == "__main__":
    main()
