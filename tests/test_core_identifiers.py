"""Unit tests for logical identifiers and the Figure 2/3 mapping."""

import pytest

from repro.core.identifiers import LogicalAddressSpace
from repro.geo.area import Area
from repro.geo.geometry import Point
from repro.geo.grid import VirtualCircleGrid
from repro.hypercube.labels import bits_to_label, hamming_distance


@pytest.fixture
def space_8x8_dim4(small_area):
    """The paper's running example: 8x8 VCs split into four 4-D hypercubes."""
    return LogicalAddressSpace(VirtualCircleGrid(small_area, 8, 8), dimension=4)


class TestConstruction:
    def test_figure2_example_block_structure(self, space_8x8_dim4):
        space = space_8x8_dim4
        assert space.block_cols == 4 and space.block_rows == 4
        assert space.mesh_cols == 2 and space.mesh_rows == 2
        assert space.hypercube_count() == 4

    def test_odd_dimension_blocks(self, small_area):
        grid = VirtualCircleGrid(small_area, 8, 8)
        space = LogicalAddressSpace(grid, dimension=3)
        assert space.block_cols == 4 and space.block_rows == 2
        assert space.hypercube_count() == 8

    def test_untileable_grid_rejected(self, small_area):
        grid = VirtualCircleGrid(small_area, 6, 8)
        with pytest.raises(ValueError):
            LogicalAddressSpace(grid, dimension=4)

    def test_invalid_dimension(self, small_area):
        grid = VirtualCircleGrid(small_area, 8, 8)
        with pytest.raises(ValueError):
            LogicalAddressSpace(grid, dimension=0)


class TestFigure3Mapping:
    def test_hnid_layout_matches_paper_figure3(self, space_8x8_dim4):
        """The HNID labels of a 4x4 block reproduce Figure 3 exactly."""
        expected_rows = [
            ["0000", "0001", "0100", "0101"],
            ["0010", "0011", "0110", "0111"],
            ["1000", "1001", "1100", "1101"],
            ["1010", "1011", "1110", "1111"],
        ]
        for row_idx, row in enumerate(expected_rows):
            for col_idx, bits in enumerate(row):
                hnid = space_8x8_dim4.hnid_of((col_idx, row_idx))
                assert hnid == bits_to_label(bits), (
                    f"cell ({col_idx},{row_idx}) expected {bits}, got "
                    f"{space_8x8_dim4.address_of_vc((col_idx, row_idx)).bits(4)}"
                )

    def test_hnid_unique_within_block(self, space_8x8_dim4):
        labels = {space_8x8_dim4.hnid_of((c, r)) for c in range(4) for r in range(4)}
        assert labels == set(range(16))

    def test_vc_of_inverts_hnid_of(self, space_8x8_dim4):
        space = space_8x8_dim4
        for col in range(8):
            for row in range(8):
                address = space.address_of_vc((col, row))
                assert space.vc_of(address.hid, address.hnid) == (col, row)

    def test_geographically_adjacent_cells_in_same_block_are_close_in_hamming(self, space_8x8_dim4):
        # horizontally adjacent cells within a block differ in at most 2 bits
        # (they differ in the column coordinate only)
        space = space_8x8_dim4
        for row in range(4):
            for col in range(3):
                a = space.hnid_of((col, row))
                b = space.hnid_of((col + 1, row))
                assert 1 <= hamming_distance(a, b) <= 2


class TestMeshMapping:
    def test_mesh_coord_of(self, space_8x8_dim4):
        assert space_8x8_dim4.mesh_coord_of((0, 0)) == (0, 0)
        assert space_8x8_dim4.mesh_coord_of((5, 2)) == (1, 0)
        assert space_8x8_dim4.mesh_coord_of((3, 7)) == (0, 1)

    def test_hid_mnid_one_to_one(self, space_8x8_dim4):
        space = space_8x8_dim4
        seen = set()
        for mc in range(2):
            for mr in range(2):
                hid = space.hid_of_mesh((mc, mr))
                assert space.mesh_of_hid(hid) == (mc, mr)
                seen.add(hid)
        assert seen == {0, 1, 2, 3}

    def test_hid_out_of_range(self, space_8x8_dim4):
        with pytest.raises(ValueError):
            space_8x8_dim4.mesh_of_hid(4)
        with pytest.raises(ValueError):
            space_8x8_dim4.hid_of_mesh((2, 0))

    def test_vcs_of_hid(self, space_8x8_dim4):
        vcs = space_8x8_dim4.vcs_of_hid(0)
        assert len(vcs) == 16
        assert (0, 0) in vcs and (3, 3) in vcs and (4, 0) not in vcs

    def test_region_center(self, space_8x8_dim4):
        assert space_8x8_dim4.region_center(0) == Point(250.0, 250.0)
        assert space_8x8_dim4.region_center(3) == Point(750.0, 750.0)


class TestAddresses:
    def test_address_of_position(self, space_8x8_dim4):
        address = space_8x8_dim4.address_of_position(Point(10.0, 10.0), chid=42)
        assert address.vc_coord == (0, 0)
        assert address.hid == 0
        assert address.hnid == 0
        assert address.mnid == (0, 0)
        assert address.chid == 42

    def test_address_bits(self, space_8x8_dim4):
        address = space_8x8_dim4.address_of_vc((2, 2))
        assert address.bits(4) == "1100"

    def test_hnid_out_of_range_in_vc_of(self, space_8x8_dim4):
        with pytest.raises(ValueError):
            space_8x8_dim4.vc_of(0, 16)

    def test_vc_out_of_grid(self, space_8x8_dim4):
        with pytest.raises(ValueError):
            space_8x8_dim4.address_of_vc((8, 0))


class TestBorderClassification:
    def test_border_vcs_face_existing_neighbor_blocks(self, space_8x8_dim4):
        space = space_8x8_dim4
        # column 3 faces block (1, *); column 4 faces block (0, *)
        assert space.is_border_vc((3, 1))
        assert space.is_border_vc((4, 1))
        # the outer edge of the whole network is not a border
        assert not space.is_border_vc((0, 1))
        # interior of a block
        assert not space.is_border_vc((1, 1))

    def test_border_rows(self, space_8x8_dim4):
        assert space_8x8_dim4.is_border_vc((1, 3))
        assert space_8x8_dim4.is_border_vc((1, 4))
        assert not space_8x8_dim4.is_border_vc((1, 0))

    def test_corner_cell_of_inner_block_is_border(self, space_8x8_dim4):
        assert space_8x8_dim4.is_border_vc((3, 3))
        assert space_8x8_dim4.is_border_vc((4, 4))
