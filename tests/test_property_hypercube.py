"""Property-based tests (hypothesis) for the hypercube substrate.

These check the structural invariants the paper's availability and
small-diameter claims rest on, over randomly generated cubes, node pairs
and damage patterns.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypercube.labels import (
    differing_dimensions,
    gray_code,
    hamming_distance,
    label_to_bits,
    neighbors,
    subcube_members,
)
from repro.hypercube.multicast_tree import binomial_multicast_tree, greedy_multicast_tree
from repro.hypercube.paths import are_node_disjoint, node_disjoint_paths
from repro.hypercube.routing import (
    RoutingError,
    ecube_path,
    fault_tolerant_path,
    path_is_valid,
    shortest_path,
)
from repro.hypercube.topology import Hypercube, IncompleteHypercube

dimensions = st.integers(min_value=2, max_value=6)


@st.composite
def cube_and_pair(draw):
    """A dimension and two distinct labels of that cube."""
    n = draw(dimensions)
    a = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    b = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    return n, a, b


@st.composite
def damaged_cube(draw):
    """An incomplete hypercube plus two present nodes."""
    n = draw(dimensions)
    labels = list(range(1 << n))
    present = draw(
        st.sets(st.sampled_from(labels), min_size=2, max_size=len(labels))
    )
    present = sorted(present)
    a = draw(st.sampled_from(present))
    b = draw(st.sampled_from(present))
    return IncompleteHypercube(n, present), a, b


class TestLabelProperties:
    @given(cube_and_pair())
    def test_hamming_symmetry_and_triangle(self, data):
        n, a, b = data
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert 0 <= hamming_distance(a, b) <= n
        # triangle inequality via 0
        assert hamming_distance(a, b) <= hamming_distance(a, 0) + hamming_distance(0, b)

    @given(cube_and_pair())
    def test_differing_dimensions_matches_hamming(self, data):
        n, a, b = data
        dims = differing_dimensions(a, b)
        assert len(dims) == hamming_distance(a, b)
        assert dims == sorted(dims)
        assert all(0 <= d < n for d in dims)

    @given(dimensions, st.integers(min_value=0, max_value=63))
    def test_neighbors_are_at_distance_one(self, n, label):
        label %= 1 << n
        nbs = neighbors(label, n)
        assert len(set(nbs)) == n
        assert all(hamming_distance(label, nb) == 1 for nb in nbs)

    @given(dimensions)
    def test_gray_code_is_hamiltonian_path(self, n):
        code = gray_code(n)
        assert sorted(code) == list(range(1 << n))
        assert all(hamming_distance(a, b) == 1 for a, b in zip(code, code[1:]))

    @given(dimensions, st.data())
    def test_subcube_split_symmetry(self, n, data):
        # any (k+1)-pattern splits into two disjoint k-patterns (paper Section 2.1)
        pattern = data.draw(
            st.lists(st.sampled_from("01*"), min_size=n, max_size=n).map("".join)
        )
        members = subcube_members(pattern)
        if "*" in pattern:
            idx = pattern.index("*")
            half0 = subcube_members(pattern[:idx] + "0" + pattern[idx + 1:])
            half1 = subcube_members(pattern[:idx] + "1" + pattern[idx + 1:])
            assert sorted(half0 + half1) == members
            assert not set(half0) & set(half1)
        else:
            assert len(members) == 1

    @given(dimensions, st.integers(min_value=0, max_value=63))
    def test_label_bits_roundtrip(self, n, label):
        label %= 1 << n
        assert int(label_to_bits(label, n), 2) == label


class TestRoutingProperties:
    @given(cube_and_pair())
    def test_ecube_path_is_shortest(self, data):
        n, a, b = data
        path = ecube_path(a, b)
        assert len(path) - 1 == hamming_distance(a, b)
        assert all(hamming_distance(x, y) == 1 for x, y in zip(path, path[1:]))
        assert len(set(path)) == len(path)   # no repeated nodes

    @given(damaged_cube())
    def test_shortest_path_valid_or_unreachable(self, data):
        cube, a, b = data
        try:
            path = shortest_path(cube, a, b)
        except RoutingError:
            assert b not in cube.reachable_from(a)
            return
        assert path[0] == a and path[-1] == b
        assert path_is_valid(cube, path)
        # optimality: BFS distance equals path length
        assert len(path) - 1 == cube.bfs_distances(a).get(b)

    @given(damaged_cube())
    def test_fault_tolerant_path_valid_when_reachable(self, data):
        cube, a, b = data
        if b not in cube.reachable_from(a):
            return
        path = fault_tolerant_path(cube, a, b)
        assert path[0] == a and path[-1] == b
        assert path_is_valid(cube, path)


class TestDisjointPathProperties:
    @given(cube_and_pair())
    @settings(max_examples=60)
    def test_complete_cube_has_n_disjoint_paths(self, data):
        n, a, b = data
        if a == b:
            return
        paths = node_disjoint_paths(Hypercube(n), a, b)
        assert len(paths) == n
        assert are_node_disjoint(paths)
        for path in paths:
            assert path[0] == a and path[-1] == b
            assert all(hamming_distance(x, y) == 1 for x, y in zip(path, path[1:]))

    @given(damaged_cube())
    @settings(max_examples=60)
    def test_incomplete_cube_paths_disjoint_and_valid(self, data):
        cube, a, b = data
        if a == b:
            return
        paths = node_disjoint_paths(cube, a, b)
        assert are_node_disjoint(paths)
        for path in paths:
            assert path[0] == a and path[-1] == b
            assert path_is_valid(cube, path)

    @given(damaged_cube())
    @settings(max_examples=60)
    def test_path_count_bounded_by_min_degree(self, data):
        cube, a, b = data
        if a == b or b not in cube.reachable_from(a):
            return
        paths = node_disjoint_paths(cube, a, b)
        assert 1 <= len(paths) <= min(cube.degree(a), cube.degree(b))


class TestMulticastTreeProperties:
    @given(dimensions, st.data())
    @settings(max_examples=60)
    def test_binomial_tree_covers_and_is_tree(self, n, data):
        members = data.draw(
            st.sets(st.integers(min_value=0, max_value=(1 << n) - 1), max_size=1 << n)
        )
        root = data.draw(st.integers(min_value=0, max_value=(1 << n) - 1))
        tree = binomial_multicast_tree(n, root, members)
        assert tree.covers(members)
        assert tree.is_valid_tree()
        assert tree.depth() <= n
        for parent, child in tree.edges():
            assert hamming_distance(parent, child) == 1

    @given(damaged_cube(), st.data())
    @settings(max_examples=60)
    def test_greedy_tree_reaches_every_reachable_member(self, cube_data, data):
        cube, root, _ = cube_data
        members = data.draw(st.sets(st.sampled_from(sorted(cube.node_set())), max_size=8))
        tree = greedy_multicast_tree(cube, root, members)
        reachable = cube.reachable_from(root)
        for member in members:
            if member in reachable:
                assert member in tree.members
            else:
                assert member not in tree.members
        assert tree.is_valid_tree()
        for parent, child in tree.edges():
            assert cube.has_edge(parent, child)
