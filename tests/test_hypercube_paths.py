"""Unit tests for node-disjoint path construction (the availability basis)."""

import pytest

from repro.hypercube.labels import hamming_distance
from repro.hypercube.paths import (
    are_node_disjoint,
    max_disjoint_path_count,
    node_disjoint_paths,
    survives_failures,
)
from repro.hypercube.routing import path_is_valid
from repro.hypercube.topology import Hypercube, IncompleteHypercube


class TestCompleteCubePaths:
    @pytest.mark.parametrize("dimension", [2, 3, 4, 5])
    def test_n_disjoint_paths_exist(self, dimension):
        cube = Hypercube(dimension)
        paths = node_disjoint_paths(cube, 0, (1 << dimension) - 1)
        assert len(paths) == dimension
        assert are_node_disjoint(paths)

    @pytest.mark.parametrize("src,dst", [(0b0000, 0b0001), (0b0101, 0b1010), (0b0011, 0b0111)])
    def test_paths_valid_and_terminate_correctly(self, src, dst):
        cube = Hypercube(4)
        for path in node_disjoint_paths(cube, src, dst):
            assert path[0] == src
            assert path[-1] == dst
            for a, b in zip(path, path[1:]):
                assert hamming_distance(a, b) == 1

    def test_shortest_paths_have_hamming_length(self):
        cube = Hypercube(4)
        src, dst = 0b0000, 0b0110
        h = hamming_distance(src, dst)
        paths = node_disjoint_paths(cube, src, dst)
        shortest = [p for p in paths if len(p) - 1 == h]
        longer = [p for p in paths if len(p) - 1 == h + 2]
        assert len(shortest) == h
        assert len(longer) == cube.dimension - h

    def test_same_node(self):
        cube = Hypercube(3)
        assert node_disjoint_paths(cube, 5, 5) == [[5]]

    def test_max_paths_cap(self):
        cube = Hypercube(5)
        paths = node_disjoint_paths(cube, 0, 31, max_paths=2)
        assert len(paths) == 2
        assert are_node_disjoint(paths)


class TestIncompleteCubePaths:
    def test_full_incomplete_cube_gives_n_paths(self):
        cube = IncompleteHypercube(4)
        paths = node_disjoint_paths(cube, 0, 15)
        assert len(paths) == 4
        assert are_node_disjoint(paths)
        for path in paths:
            assert path_is_valid(cube, path)

    def test_missing_nodes_reduce_path_count(self):
        cube = IncompleteHypercube(3)
        cube.remove_node(1)
        cube.remove_node(2)
        paths = node_disjoint_paths(cube, 0, 7)
        assert len(paths) == 1
        assert are_node_disjoint(paths)

    def test_disconnected_pair_gives_no_paths(self):
        cube = IncompleteHypercube(3)
        for nb in (1, 2, 4):
            cube.remove_node(nb)
        assert node_disjoint_paths(cube, 0, 7) == []

    def test_missing_endpoint(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 1])
        assert node_disjoint_paths(cube, 0, 7) == []

    def test_paths_respect_removed_edges(self):
        cube = IncompleteHypercube(3)
        cube.remove_edge(0, 1)
        paths = node_disjoint_paths(cube, 0, 1)
        assert paths, "still reachable via a detour"
        for path in paths:
            assert path_is_valid(cube, path)

    def test_max_disjoint_path_count(self):
        assert max_disjoint_path_count(Hypercube(4), 0, 15) == 4
        cube = IncompleteHypercube(4)
        cube.remove_node(1)
        assert max_disjoint_path_count(cube, 0, 15) == 3


class TestSurvivability:
    def test_survives_up_to_n_minus_1_failures(self):
        # paper Section 2.1: the n-cube sustains up to n-1 node failures
        cube = Hypercube(4)
        assert survives_failures(cube, 0, 15, failed=[1, 2, 4])

    def test_endpoint_failure_not_survivable(self):
        cube = Hypercube(3)
        assert not survives_failures(cube, 0, 7, failed=[7])

    def test_partition_detected(self):
        cube = IncompleteHypercube(3)
        assert not survives_failures(cube, 0, 7, failed=[1, 2, 4])

    def test_no_failures_trivially_survives(self):
        assert survives_failures(Hypercube(3), 0, 7, failed=[])


class TestDisjointnessChecker:
    def test_shared_intermediate_detected(self):
        assert not are_node_disjoint([[0, 1, 3], [0, 1, 5]])

    def test_shared_endpoints_allowed(self):
        assert are_node_disjoint([[0, 1, 3], [0, 2, 3]])

    def test_empty_collection(self):
        assert are_node_disjoint([])
