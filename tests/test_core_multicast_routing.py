"""Unit tests for multicast tree computation and caching (paper Figure 6)."""

import pytest

from repro.core.membership import HTSummary, MTSummary
from repro.core.multicast_routing import (
    MulticastForwardingState,
    compute_hypercube_tree,
    compute_mesh_tree,
)
from repro.hypercube.mesh import MeshGrid
from repro.hypercube.topology import IncompleteHypercube


def mt_summary_with(group, coords):
    mt = MTSummary()
    for coord in coords:
        mt.update_from_ht(HTSummary(0, {group: {0}}), mesh_coord=coord)
    return mt


class TestComputeMeshTree:
    def test_tree_covers_mt_summary_mesh_nodes(self):
        mesh = MeshGrid(3, 3)
        mt = mt_summary_with(1, [(2, 2), (0, 2)])
        tree = compute_mesh_tree(mesh, (0, 0), mt, group=1)
        assert tree.covers({(2, 2), (0, 2)})
        assert tree.root == (0, 0)

    def test_root_always_included(self):
        mesh = MeshGrid(2, 2)
        tree = compute_mesh_tree(mesh, (1, 1), MTSummary(), group=1)
        assert tree.root == (1, 1)
        assert (1, 1) in tree.members

    def test_group_isolation(self):
        mesh = MeshGrid(2, 2)
        mt = mt_summary_with(1, [(1, 0)])
        tree = compute_mesh_tree(mesh, (0, 0), mt, group=2)
        assert (1, 0) not in tree.members


class TestComputeHypercubeTree:
    def test_tree_covers_ht_summary_hnids(self):
        cube = IncompleteHypercube(4)
        ht = HTSummary(0, {1: {3, 7, 12}})
        tree = compute_hypercube_tree(cube, 0, ht, group=1)
        assert tree.covers({3, 7, 12})

    def test_absent_members_skipped(self):
        cube = IncompleteHypercube(3, present_nodes=[0, 1, 3])
        ht = HTSummary(0, {1: {3, 6}})
        tree = compute_hypercube_tree(cube, 0, ht, group=1)
        assert 3 in tree.members
        assert 6 not in tree.members


class TestForwardingStateCache:
    def test_mesh_tree_cache_hit_on_same_members(self):
        state = MulticastForwardingState()
        mesh = MeshGrid(3, 3)
        mt = mt_summary_with(1, [(2, 2)])
        t1 = state.mesh_tree(mesh, (0, 0), mt, group=1)
        t2 = state.mesh_tree(mesh, (0, 0), mt, group=1)
        assert t1 is t2
        assert state.mesh_tree_hits == 1
        assert state.mesh_tree_misses == 1

    def test_mesh_tree_cache_miss_on_membership_change(self):
        state = MulticastForwardingState()
        mesh = MeshGrid(3, 3)
        t1 = state.mesh_tree(mesh, (0, 0), mt_summary_with(1, [(2, 2)]), group=1)
        t2 = state.mesh_tree(mesh, (0, 0), mt_summary_with(1, [(2, 2), (0, 2)]), group=1)
        assert t1 is not t2
        assert state.mesh_tree_misses == 2

    def test_mesh_tree_cache_miss_on_root_change(self):
        state = MulticastForwardingState()
        mesh = MeshGrid(3, 3)
        mt = mt_summary_with(1, [(2, 2)])
        state.mesh_tree(mesh, (0, 0), mt, group=1)
        state.mesh_tree(mesh, (1, 1), mt, group=1)
        assert state.mesh_tree_misses == 2

    def test_cube_tree_cache_keyed_by_group_and_root(self):
        state = MulticastForwardingState()
        cube = IncompleteHypercube(4)
        ht = HTSummary(0, {1: {5}, 2: {7}})
        a = state.hypercube_tree(cube, 0, ht, group=1)
        b = state.hypercube_tree(cube, 0, ht, group=1)
        c = state.hypercube_tree(cube, 3, ht, group=1)
        d = state.hypercube_tree(cube, 0, ht, group=2)
        assert a is b
        assert a is not c
        assert a is not d
        assert state.cube_tree_hits == 1
        assert state.cube_tree_misses == 3

    def test_invalidate_group(self):
        state = MulticastForwardingState()
        mesh = MeshGrid(2, 2)
        cube = IncompleteHypercube(3)
        ht = HTSummary(0, {1: {3}})
        mt = mt_summary_with(1, [(1, 1)])
        state.mesh_tree(mesh, (0, 0), mt, group=1)
        state.hypercube_tree(cube, 0, ht, group=1)
        state.invalidate_group(1)
        assert state.mesh_trees == {}
        assert state.cube_trees == {}

    def test_invalidate_group_keeps_other_groups(self):
        state = MulticastForwardingState()
        mesh = MeshGrid(2, 2)
        state.mesh_tree(mesh, (0, 0), mt_summary_with(1, [(1, 1)]), group=1)
        state.mesh_tree(mesh, (0, 0), mt_summary_with(2, [(0, 1)]), group=2)
        state.invalidate_group(1)
        assert 2 in state.mesh_trees
        assert 1 not in state.mesh_trees

    def test_invalidate_all(self):
        state = MulticastForwardingState()
        mesh = MeshGrid(2, 2)
        state.mesh_tree(mesh, (0, 0), mt_summary_with(1, [(1, 1)]), group=1)
        state.invalidate_all()
        assert state.mesh_trees == {}
