"""Edge-case tests: agent base class defaults, baseline corner cases,
geo-unicast safety limits."""

import pytest

from repro.baselines.dsm import DSM_PROTOCOL, DsmAgent
from repro.baselines.sgm import SGM_PROTOCOL, SgmAgent
from repro.baselines.spbm import SPBM_PROTOCOL, SpbmAgent
from repro.geo.geometry import Point
from repro.simulation.agent import ProtocolAgent
from repro.simulation.packet import Packet, PacketKind, data_packet
from repro.unicast.router import GEO_PROTOCOL, GeoUnicastAgent

from tests.conftest import make_static_network


class MinimalAgent(ProtocolAgent):
    protocol_name = "minimal"

    def on_packet(self, packet, from_node):
        pass


class TestProtocolAgentDefaults:
    def test_send_multicast_not_implemented_by_default(self):
        net = make_static_network({0: Point(10, 10)})
        agent = MinimalAgent()
        net.node(0).attach_agent(agent)
        with pytest.raises(NotImplementedError):
            agent.send_multicast(1, "x")

    def test_bound_agent_exposes_node_and_time(self):
        net = make_static_network({0: Point(10, 10)})
        agent = MinimalAgent()
        net.node(0).attach_agent(agent)
        assert agent.node_id == 0
        assert agent.now == 0.0
        assert agent.simulator is net.simulator

    def test_group_hooks_are_noops_by_default(self):
        net = make_static_network({0: Point(10, 10)})
        agent = MinimalAgent()
        net.node(0).attach_agent(agent)
        net.node(0).join_group(3)     # must not raise
        net.node(0).leave_group(3)


class TestGeoUnicastSafety:
    def test_visited_cap_drops_wandering_packets(self):
        # a long chain with max_visited smaller than the hop count
        positions = {i: Point(100.0 * i + 10.0, 500.0) for i in range(8)}
        net = make_static_network(positions, radio_range=150.0)
        for node in net.nodes.values():
            node.attach_agent(GeoUnicastAgent(max_visited=3))
            node.attach_agent(MinimalAgent())
        inner = Packet(
            kind=PacketKind.DATA, protocol="minimal", msg_type="data", source=0, created_at=0.0
        )
        net.node(0).agent(GEO_PROTOCOL).send(inner, dest_node=7)
        net.simulator.run(2.0)
        drops = sum(
            n.agent(GEO_PROTOCOL).dropped_no_route for n in net.nodes.values()
        )
        assert drops >= 1

    def test_ignores_unrelated_messages(self):
        net = make_static_network({0: Point(10, 10), 1: Point(100, 10)})
        geo = GeoUnicastAgent()
        net.node(0).attach_agent(geo)
        other = data_packet("someone", 1, 1, None, 10, 0.0)
        geo.on_packet(other, from_node=1)   # must not raise or forward
        assert geo.forwarded == 0


class TestDsmEdgeCases:
    def build(self):
        positions = {i: Point(150.0 * i + 20.0, 300.0) for i in range(5)}
        net = make_static_network(positions, radio_range=200.0)
        for node in net.nodes.values():
            node.attach_agent(DsmAgent(position_update_period=5.0))
        return net

    def test_tree_without_snapshot_reaches_nobody(self):
        net = self.build()
        agent = net.node(0).agent(DSM_PROTOCOL)
        # no position floods have happened: the snapshot only contains the
        # sender itself, so the tree is empty and nothing is transmitted
        tree = agent._compute_source_tree([4])
        assert tree == {}

    def test_stale_snapshot_member_not_reached_registers_as_loss(self):
        net = self.build()
        net.node(4).join_group(1)
        agent = net.node(0).agent(DSM_PROTOCOL)
        agent.send_multicast(1, "x")
        net.simulator.run(5.0)
        record = list(net.deliveries.values())[0]
        assert record.delivery_ratio == 0.0

    def test_duplicate_data_not_reforwarded(self):
        net = self.build()
        net.start()
        net.simulator.run(12.0)
        agent = net.node(2).agent(DSM_PROTOCOL)
        packet = data_packet(DSM_PROTOCOL, 0, 1, None, 64, 0.0, headers={"tree": {}})
        before = net.stats.transmissions
        agent.on_packet(packet, from_node=1)
        agent.on_packet(packet, from_node=1)
        # second reception is suppressed: no extra transmissions either time
        assert net.stats.transmissions == before


class TestSgmEdgeCases:
    def test_dead_destinations_skipped(self):
        positions = {i: Point(150.0 * i + 20.0, 300.0) for i in range(4)}
        net = make_static_network(positions, radio_range=200.0)
        for node in net.nodes.values():
            node.attach_agent(GeoUnicastAgent())
            node.attach_agent(SgmAgent())
        net.node(3).join_group(1)
        net.node(3).fail()
        net.node(0).agent(SGM_PROTOCOL).send_multicast(1, "x")
        net.simulator.run(3.0)
        # nothing delivered, but no crash and no runaway forwarding
        assert list(net.deliveries.values())[0].delivered == {}

    def test_split_single_destination(self):
        positions = {0: Point(10, 10), 1: Point(200, 10)}
        net = make_static_network(positions)
        for node in net.nodes.values():
            node.attach_agent(GeoUnicastAgent())
            node.attach_agent(SgmAgent(fanout=3))
        agent = net.node(0).agent(SGM_PROTOCOL)
        assert agent._geographic_split([1], 3) == [[1]]


class TestSpbmEdgeCases:
    def test_no_membership_knowledge_falls_back_to_broadcast(self):
        positions = {0: Point(100, 100), 1: Point(250, 100)}
        net = make_static_network(positions, radio_range=200.0)
        for node in net.nodes.values():
            node.attach_agent(GeoUnicastAgent())
            node.attach_agent(SpbmAgent())
        net.node(1).join_group(1)
        # send before any membership announcements have circulated
        net.node(0).agent(SPBM_PROTOCOL).send_multicast(1, "x")
        net.simulator.run(2.0)
        record = list(net.deliveries.values())[0]
        # the fallback local broadcast still reaches the in-range member
        assert 1 in record.delivered

    def test_target_squares_only_level_zero(self):
        positions = {0: Point(100, 100)}
        net = make_static_network(positions)
        net.node(0).attach_agent(GeoUnicastAgent())
        agent = SpbmAgent(levels=3)
        net.node(0).attach_agent(agent)
        agent.square_members[(0, 0, 0)] = {1}
        agent.square_members[(2, 0, 0)] = {1}
        assert agent._target_squares(1) == [(0, 0, 0)]
