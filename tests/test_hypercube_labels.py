"""Unit tests for hypercube label algebra (paper Section 2.1)."""

import pytest

from repro.hypercube.labels import (
    all_labels,
    bits_to_label,
    canonical_subcube,
    differing_dimensions,
    flip_bit,
    gray_code,
    hamming_distance,
    is_valid_label,
    label_to_bits,
    neighbors,
    subcube_members,
    weight,
)


class TestHamming:
    def test_identity(self):
        assert hamming_distance(5, 5) == 0

    def test_single_bit(self):
        assert hamming_distance(0b1000, 0b1001) == 1

    def test_paper_example(self):
        # 1000 -> 1101 differ in two bits (the 2-logical-hop example of Section 4.1)
        assert hamming_distance(bits_to_label("1000"), bits_to_label("1101")) == 2

    def test_symmetry(self):
        assert hamming_distance(3, 12) == hamming_distance(12, 3)

    def test_differing_dimensions(self):
        assert differing_dimensions(0b0000, 0b1010) == [1, 3]
        assert differing_dimensions(7, 7) == []


class TestLabels:
    def test_is_valid_label(self):
        assert is_valid_label(0, 3)
        assert is_valid_label(7, 3)
        assert not is_valid_label(8, 3)
        assert not is_valid_label(-1, 3)

    def test_flip_bit(self):
        assert flip_bit(0b0000, 2) == 0b0100
        assert flip_bit(0b0100, 2) == 0b0000

    def test_flip_bit_negative_dimension(self):
        with pytest.raises(ValueError):
            flip_bit(0, -1)

    def test_neighbors_count_and_distance(self):
        nbs = neighbors(0b1010, 4)
        assert len(nbs) == 4
        assert all(hamming_distance(0b1010, nb) == 1 for nb in nbs)

    def test_neighbors_out_of_range(self):
        with pytest.raises(ValueError):
            neighbors(16, 4)

    def test_all_labels(self):
        assert list(all_labels(3)) == list(range(8))
        assert len(list(all_labels(0))) == 1

    def test_label_bits_roundtrip(self):
        for label in all_labels(5):
            assert bits_to_label(label_to_bits(label, 5)) == label

    def test_label_to_bits_matches_paper_notation(self):
        assert label_to_bits(8, 4) == "1000"
        assert label_to_bits(13, 4) == "1101"

    def test_bits_to_label_invalid(self):
        with pytest.raises(ValueError):
            bits_to_label("10x0")
        with pytest.raises(ValueError):
            bits_to_label("")

    def test_weight(self):
        assert weight(0) == 0
        assert weight(0b1011) == 3


class TestSubcubes:
    def test_full_wildcard_is_whole_cube(self):
        assert subcube_members("**") == [0, 1, 2, 3]

    def test_fixed_pattern_single_member(self):
        assert subcube_members("101") == [5]

    def test_mixed_pattern(self):
        # "1**0": bit3=1, bit0=0, bits 1-2 free -> {8, 10, 12, 14}
        assert subcube_members("1**0") == [8, 10, 12, 14]

    def test_symmetry_property_split(self):
        # a (k+1)-dimensional subcube consists of two k-dimensional subcubes
        parent = set(subcube_members("*1*"))
        half0 = set(subcube_members("01*"))
        half1 = set(subcube_members("11*"))
        assert parent == half0 | half1
        assert not half0 & half1

    def test_invalid_pattern(self):
        with pytest.raises(ValueError):
            subcube_members("1a0")

    def test_canonical_subcube(self):
        assert canonical_subcube([0b1000, 0b1010], 4) == "10*0"
        assert canonical_subcube([5], 3) == "101"

    def test_canonical_subcube_contains_all(self):
        labels = [1, 3, 9]
        pattern = canonical_subcube(labels, 4)
        members = set(subcube_members(pattern))
        assert set(labels) <= members

    def test_canonical_subcube_empty_raises(self):
        with pytest.raises(ValueError):
            canonical_subcube([], 3)


class TestGrayCode:
    def test_length(self):
        assert len(gray_code(4)) == 16

    def test_adjacent_entries_differ_by_one_bit(self):
        code = gray_code(5)
        for a, b in zip(code, code[1:]):
            assert hamming_distance(a, b) == 1

    def test_is_permutation(self):
        assert sorted(gray_code(4)) == list(range(16))

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            gray_code(-1)
