"""Tests of wall-time perf-regression tracking (`repro.experiments.perf`).

The comparisons run on synthetic RunResult lists -- no simulation needed
-- plus one CLI pass over exported artifacts checking the exit-code
contract CI relies on: 0 ok/improved, 1 regressed, 2 missing baseline.
"""

import dataclasses
import json

import pytest

from repro.experiments.orchestrator import (
    ResultCache,
    RunResult,
    expand_spec,
    export_json,
)
from repro.experiments.perf import (
    compare_wall_times,
    load_results,
    mann_whitney_p,
    point_label,
    wall_time_groups,
)


def fake_result(params, seed, wall_time):
    return RunResult(
        run_id=f"fake/{point_label(params)}/seed={seed}",
        params=dict(params),
        seed=seed,
        duration=10.0,
        metrics={"pdr": 0.5},
        wall_time=wall_time,
    )


def result_set(wall_times_by_point):
    """{point-params-tuple: [wall_times]} -> list of RunResults."""
    results = []
    for params, wall_times in wall_times_by_point.items():
        for seed, wall_time in enumerate(wall_times, start=1):
            results.append(fake_result(dict(params), seed, wall_time))
    return results


class TestGrouping:
    def test_point_label_excludes_seed_and_sorts(self):
        assert point_label({"b": 2, "a": 1, "seed": 9}) == "a=1,b=2"
        assert point_label({}) == "base"

    def test_wall_time_groups(self):
        results = result_set({(("n", 10),): [1.0, 2.0], (("n", 20),): [3.0]})
        groups = wall_time_groups(results)
        assert groups == {"n=10": [1.0, 2.0], "n=20": [3.0]}


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        assert mann_whitney_p([1.0, 1.0, 1.0, 1.0], [1.0, 1.0, 1.0, 1.0]) > 0.5

    def test_clearly_shifted_samples_significant(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        b = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02]
        assert mann_whitney_p(a, b) < 0.05

    def test_empty_side_is_inconclusive(self):
        assert mann_whitney_p([], [1.0]) == 1.0


class TestCompare:
    def test_within_tolerance_is_ok(self):
        base = result_set({(("n", 10),): [1.0, 1.0, 1.0]})
        cur = result_set({(("n", 10),): [1.1, 1.1, 1.1]})
        report = compare_wall_times(base, cur, tolerance=0.25)
        assert [p.status for p in report.points] == ["ok"]
        assert not report.regressed

    def test_synthetic_2x_regression_is_flagged(self):
        base = result_set({(("n", 10),): [1.0, 1.05, 0.95, 1.0, 1.02]})
        cur = result_set({(("n", 10),): [2.0, 2.1, 1.9, 2.0, 2.05]})
        report = compare_wall_times(base, cur, tolerance=0.5)
        (point,) = report.points
        assert point.status == "regressed"
        assert point.ratio == pytest.approx(2.0, rel=0.1)
        assert point.p_value is not None and point.p_value < 0.05
        assert report.regressed

    def test_noisy_single_point_needs_significance(self):
        # median ratio above tolerance but overlapping distributions:
        # the Mann-Whitney gate keeps one noisy machine from failing CI
        base = result_set({(("n", 10),): [1.0, 3.0, 1.1, 2.9]})
        cur = result_set({(("n", 10),): [2.8, 1.05, 3.1, 1.2]})
        report = compare_wall_times(base, cur, tolerance=0.25)
        assert [p.status for p in report.points] == ["ok"]

    def test_improvement_is_reported_not_failed(self):
        base = result_set({(("n", 10),): [2.0, 2.0]})
        cur = result_set({(("n", 10),): [1.0, 1.0]})
        report = compare_wall_times(base, cur, tolerance=0.25)
        assert [p.status for p in report.points] == ["improved"]
        assert not report.regressed

    def test_missing_points_are_classified(self):
        base = result_set({(("n", 10),): [1.0], (("n", 20),): [1.0]})
        cur = result_set({(("n", 20),): [1.0], (("n", 30),): [1.0]})
        report = compare_wall_times(base, cur)
        by_point = {p.point: p.status for p in report.points}
        assert by_point == {
            "n=10": "missing-current",
            "n=20": "ok",
            "n=30": "missing-baseline",
        }

    def test_report_serialises(self):
        base = result_set({(("n", 10),): [1.0]})
        report = compare_wall_times(base, base, sweep="demo")
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["sweep"] == "demo"
        assert doc["regressed"] is False
        assert doc["counts"] == {"ok": 1}

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_wall_times([], [], tolerance=-0.1)


class TestLoadResults:
    def test_loads_json_artifact(self, tmp_path):
        results = result_set({(("n", 10),): [1.0, 2.0]})
        path = str(tmp_path / "out.json")
        export_json(results, path)
        loaded = load_results(path)
        assert [r.wall_time for r in loaded] == [1.0, 2.0]

    def test_cache_dir_requires_spec(self, tmp_path):
        with pytest.raises(ValueError, match="cache directory"):
            load_results(str(tmp_path))

    def test_loads_cache_dir_via_spec_and_version(self, tmp_path):
        from repro.experiments.orchestrator import SweepSpec
        from repro.experiments.scenarios import ScenarioConfig

        spec = SweepSpec(
            name="tiny",
            base=ScenarioConfig(protocol="flooding", n_nodes=12),
            grid={"n_nodes": [10, 14]},
            seeds=(1,),
            duration=10.0,
        )
        cache = ResultCache(str(tmp_path))
        runs = expand_spec(spec)
        for i, run in enumerate(runs):
            # stamp entries under CACHE_VERSION generation 99 only
            cache.put(run.cache_key(version=99), fake_result(run.params, run.seed, float(i + 1)))
        assert load_results(str(tmp_path), spec) == []
        loaded = load_results(str(tmp_path), spec, cache_version=99)
        assert [r.wall_time for r in loaded] == [1.0, 2.0]
        # run ids are re-labelled under the requesting spec
        assert [r.run_id for r in loaded] == [r.run_id for r in runs]


class TestPerfCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        base = result_set({(("n_nodes", 10),): [1.0, 1.0, 1.0, 1.0, 1.0]})
        fast = result_set({(("n_nodes", 10),): [0.5, 0.5, 0.5, 0.5, 0.5]})
        slow = result_set({(("n_nodes", 10),): [2.0, 2.0, 2.0, 2.0, 2.0]})
        paths = {}
        for name, results in (("base", base), ("fast", fast), ("slow", slow)):
            paths[name] = str(tmp_path / f"{name}.json")
            export_json(results, paths[name])
        return paths

    def test_exit_codes(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        report = str(tmp_path / "report.json")
        improved = main(
            ["perf", "smoke", "--baseline", artifacts["base"],
             "--current", artifacts["fast"], "--report", report]
        )
        assert improved == 0
        with open(report, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["counts"] == {"improved": 1}

        regressed = main(
            ["perf", "smoke", "--baseline", artifacts["base"],
             "--current", artifacts["slow"], "--tolerance", "0.5"]
        )
        assert regressed == 1

        missing = main(
            ["perf", "smoke", "--baseline", str(tmp_path / "nope.json"),
             "--current", artifacts["slow"]]
        )
        assert missing == 2
        assert "does not exist" in capsys.readouterr().err

    def test_missing_current_points_are_exit_2(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        # baseline covers two grid points, current only one: the gate
        # must not report "no regression" for the vanished point
        base = result_set(
            {(("n_nodes", 10),): [1.0, 1.0], (("n_nodes", 20),): [1.0, 1.0]}
        )
        wide = str(tmp_path / "wide.json")
        export_json(base, wide)
        code = main(["perf", "smoke", "--baseline", wide, "--current", artifacts["base"]])
        assert code == 2
        assert "no current results" in capsys.readouterr().err

    def test_cache_version_flag_rejected_for_json_artifacts(
        self, artifacts, capsys
    ):
        from repro.experiments.__main__ import main

        code = main(
            ["perf", "smoke", "--baseline", artifacts["base"],
             "--current", artifacts["slow"], "--baseline-cache-version", "1"]
        )
        assert code == 2
        assert "not a cache directory" in capsys.readouterr().err

    def test_empty_baseline_is_exit_2(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        empty = str(tmp_path / "empty.json")
        export_json([], empty)
        code = main(
            ["perf", "smoke", "--baseline", empty, "--current", artifacts["slow"]]
        )
        assert code == 2
        assert "holds no results" in capsys.readouterr().err
