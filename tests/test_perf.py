"""Tests of wall-time perf-regression tracking (`repro.experiments.perf`).

The comparisons run on synthetic RunResult lists -- no simulation needed
-- plus one CLI pass over exported artifacts checking the exit-code
contract CI relies on: 0 ok/improved, 1 regressed, 2 missing baseline.
"""

import dataclasses
import json

import pytest

from repro.experiments.orchestrator import (
    ResultCache,
    RunResult,
    expand_spec,
    export_json,
)
from repro.experiments.perf import (
    compare_wall_times,
    load_results,
    mann_whitney_p,
    point_label,
    wall_time_groups,
)


def fake_result(params, seed, wall_time):
    return RunResult(
        run_id=f"fake/{point_label(params)}/seed={seed}",
        params=dict(params),
        seed=seed,
        duration=10.0,
        metrics={"pdr": 0.5},
        wall_time=wall_time,
    )


def result_set(wall_times_by_point):
    """{point-params-tuple: [wall_times]} -> list of RunResults."""
    results = []
    for params, wall_times in wall_times_by_point.items():
        for seed, wall_time in enumerate(wall_times, start=1):
            results.append(fake_result(dict(params), seed, wall_time))
    return results


class TestGrouping:
    def test_point_label_excludes_seed_and_sorts(self):
        assert point_label({"b": 2, "a": 1, "seed": 9}) == "a=1,b=2"
        assert point_label({}) == "base"

    def test_wall_time_groups(self):
        results = result_set({(("n", 10),): [1.0, 2.0], (("n", 20),): [3.0]})
        groups = wall_time_groups(results)
        assert groups == {"n=10": [1.0, 2.0], "n=20": [3.0]}


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        assert mann_whitney_p([1.0, 1.0, 1.0, 1.0], [1.0, 1.0, 1.0, 1.0]) > 0.5

    def test_clearly_shifted_samples_significant(self):
        a = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        b = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02]
        assert mann_whitney_p(a, b) < 0.05

    def test_empty_side_is_inconclusive(self):
        assert mann_whitney_p([], [1.0]) == 1.0


class TestCompare:
    def test_within_tolerance_is_ok(self):
        base = result_set({(("n", 10),): [1.0, 1.0, 1.0]})
        cur = result_set({(("n", 10),): [1.1, 1.1, 1.1]})
        report = compare_wall_times(base, cur, tolerance=0.25)
        assert [p.status for p in report.points] == ["ok"]
        assert not report.regressed

    def test_synthetic_2x_regression_is_flagged(self):
        base = result_set({(("n", 10),): [1.0, 1.05, 0.95, 1.0, 1.02]})
        cur = result_set({(("n", 10),): [2.0, 2.1, 1.9, 2.0, 2.05]})
        report = compare_wall_times(base, cur, tolerance=0.5)
        (point,) = report.points
        assert point.status == "regressed"
        assert point.ratio == pytest.approx(2.0, rel=0.1)
        assert point.p_value is not None and point.p_value < 0.05
        assert report.regressed

    def test_noisy_single_point_needs_significance(self):
        # median ratio above tolerance but overlapping distributions:
        # the Mann-Whitney gate keeps one noisy machine from failing CI
        base = result_set({(("n", 10),): [1.0, 3.0, 1.1, 2.9]})
        cur = result_set({(("n", 10),): [2.8, 1.05, 3.1, 1.2]})
        report = compare_wall_times(base, cur, tolerance=0.25)
        assert [p.status for p in report.points] == ["ok"]

    def test_improvement_is_reported_not_failed(self):
        base = result_set({(("n", 10),): [2.0, 2.0]})
        cur = result_set({(("n", 10),): [1.0, 1.0]})
        report = compare_wall_times(base, cur, tolerance=0.25)
        assert [p.status for p in report.points] == ["improved"]
        assert not report.regressed

    def test_missing_points_are_classified(self):
        base = result_set({(("n", 10),): [1.0], (("n", 20),): [1.0]})
        cur = result_set({(("n", 20),): [1.0], (("n", 30),): [1.0]})
        report = compare_wall_times(base, cur)
        by_point = {p.point: p.status for p in report.points}
        assert by_point == {
            "n=10": "missing-current",
            "n=20": "ok",
            "n=30": "missing-baseline",
        }

    def test_report_serialises(self):
        base = result_set({(("n", 10),): [1.0]})
        report = compare_wall_times(base, base, sweep="demo")
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["sweep"] == "demo"
        assert doc["regressed"] is False
        assert doc["counts"] == {"ok": 1}

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_wall_times([], [], tolerance=-0.1)


class TestLoadResults:
    def test_loads_json_artifact(self, tmp_path):
        results = result_set({(("n", 10),): [1.0, 2.0]})
        path = str(tmp_path / "out.json")
        export_json(results, path)
        loaded = load_results(path)
        assert [r.wall_time for r in loaded] == [1.0, 2.0]

    def test_cache_dir_requires_spec(self, tmp_path):
        with pytest.raises(ValueError, match="cache directory"):
            load_results(str(tmp_path))

    def test_loads_cache_dir_via_spec_and_version(self, tmp_path):
        from repro.experiments.orchestrator import SweepSpec
        from repro.experiments.scenarios import ScenarioConfig

        spec = SweepSpec(
            name="tiny",
            base=ScenarioConfig(protocol="flooding", n_nodes=12),
            grid={"n_nodes": [10, 14]},
            seeds=(1,),
            duration=10.0,
        )
        cache = ResultCache(str(tmp_path))
        runs = expand_spec(spec)
        for i, run in enumerate(runs):
            # stamp entries under CACHE_VERSION generation 99 only
            cache.put(run.cache_key(version=99), fake_result(run.params, run.seed, float(i + 1)))
        assert load_results(str(tmp_path), spec) == []
        loaded = load_results(str(tmp_path), spec, cache_version=99)
        assert [r.wall_time for r in loaded] == [1.0, 2.0]
        # run ids are re-labelled under the requesting spec
        assert [r.run_id for r in loaded] == [r.run_id for r in runs]


class TestPerfCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        base = result_set({(("n_nodes", 10),): [1.0, 1.0, 1.0, 1.0, 1.0]})
        fast = result_set({(("n_nodes", 10),): [0.5, 0.5, 0.5, 0.5, 0.5]})
        slow = result_set({(("n_nodes", 10),): [2.0, 2.0, 2.0, 2.0, 2.0]})
        paths = {}
        for name, results in (("base", base), ("fast", fast), ("slow", slow)):
            paths[name] = str(tmp_path / f"{name}.json")
            export_json(results, paths[name])
        return paths

    def test_exit_codes(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        report = str(tmp_path / "report.json")
        improved = main(
            ["perf", "smoke", "--baseline", artifacts["base"],
             "--current", artifacts["fast"], "--report", report]
        )
        assert improved == 0
        with open(report, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["counts"] == {"improved": 1}

        regressed = main(
            ["perf", "smoke", "--baseline", artifacts["base"],
             "--current", artifacts["slow"], "--tolerance", "0.5"]
        )
        assert regressed == 1

        missing = main(
            ["perf", "smoke", "--baseline", str(tmp_path / "nope.json"),
             "--current", artifacts["slow"]]
        )
        assert missing == 2
        assert "does not exist" in capsys.readouterr().err

    def test_missing_current_points_are_exit_2(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        # baseline covers two grid points, current only one: the gate
        # must not report "no regression" for the vanished point
        base = result_set(
            {(("n_nodes", 10),): [1.0, 1.0], (("n_nodes", 20),): [1.0, 1.0]}
        )
        wide = str(tmp_path / "wide.json")
        export_json(base, wide)
        code = main(["perf", "smoke", "--baseline", wide, "--current", artifacts["base"]])
        assert code == 2
        assert "no current results" in capsys.readouterr().err

    def test_cache_version_flag_rejected_for_json_artifacts(
        self, artifacts, capsys
    ):
        from repro.experiments.__main__ import main

        code = main(
            ["perf", "smoke", "--baseline", artifacts["base"],
             "--current", artifacts["slow"], "--baseline-cache-version", "1"]
        )
        assert code == 2
        assert "not a cache directory" in capsys.readouterr().err

    def test_empty_baseline_is_exit_2(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        empty = str(tmp_path / "empty.json")
        export_json([], empty)
        code = main(
            ["perf", "smoke", "--baseline", empty, "--current", artifacts["slow"]]
        )
        assert code == 2
        assert "holds no results" in capsys.readouterr().err


class TestTrend:
    @staticmethod
    def entry(medians, accepted=False, sweep="tiny", recorded_at="2026-01-01T00:00:00+00:00"):
        from repro.experiments.perf import TrendEntry

        return TrendEntry(
            sweep=sweep,
            recorded_at=recorded_at,
            commit="abc123",
            store="json",
            executor="",
            n_runs=sum(1 for _ in medians),
            medians=dict(medians),
            accepted=accepted,
        )

    def test_trend_entry_from_results(self):
        from repro.experiments.perf import trend_entry

        results = result_set(
            {(("n", 10),): [1.0, 3.0, 2.0], (("n", 20),): [4.0]}
        )
        entry = trend_entry("tiny", results, store="sqlite", executor="queue")
        assert entry.sweep == "tiny"
        assert entry.medians == {"n=10": 2.0, "n=20": 4.0}
        assert entry.n_runs == 4
        assert entry.store == "sqlite"
        assert entry.accepted is False
        assert entry.recorded_at.endswith("+00:00")

    def test_append_and_load_round_trip(self, tmp_path):
        from repro.experiments.perf import append_trend, load_trend

        path = str(tmp_path / "trend.jsonl")
        assert load_trend(path) == []
        first = self.entry({"n=10": 1.0})
        second = self.entry({"n=10": 1.1}, sweep="other")
        append_trend(path, first)
        append_trend(path, second)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{corrupt line\n")
        entries = load_trend(path)
        assert [e.sweep for e in entries] == ["tiny", "other"]
        assert [e.sweep for e in load_trend(path, sweep="tiny")] == ["tiny"]
        assert entries[0].medians == {"n=10": 1.0}

    def test_check_trend_statuses(self):
        from repro.experiments.perf import check_trend

        flat = [self.entry({"n=10": 1.0}) for _ in range(4)]
        report = check_trend(flat + [self.entry({"n=10": 1.05})], tolerance=0.25)
        assert {p.status for p in report.points} == {"ok"}
        assert not report.regressed

        report = check_trend(flat + [self.entry({"n=10": 2.0})], tolerance=0.25)
        assert [p.status for p in report.points] == ["regressed"]
        assert report.regressed
        assert report.points[0].ratio == pytest.approx(2.0)

        report = check_trend(flat + [self.entry({"n=10": 0.5})], tolerance=0.25)
        assert [p.status for p in report.points] == ["improved"]
        assert not report.regressed

    def test_check_trend_first_entry_has_no_history(self):
        from repro.experiments.perf import check_trend

        report = check_trend([self.entry({"n=10": 1.0})])
        assert [p.status for p in report.points] == ["no-history"]
        assert report.entries == 0

    def test_check_trend_new_point_is_informational(self):
        from repro.experiments.perf import check_trend

        entries = [
            self.entry({"n=10": 1.0}),
            self.entry({"n=10": 1.0, "n=20": 9.0}),
        ]
        report = check_trend(entries, tolerance=0.25)
        statuses = {p.point: p.status for p in report.points}
        assert statuses == {"n=10": "ok", "n=20": "new-point"}
        assert not report.regressed

    def test_check_trend_accept_resets_reference(self):
        from repro.experiments.perf import check_trend

        entries = [
            self.entry({"n=10": 1.0}),
            self.entry({"n=10": 1.0}),
            self.entry({"n=10": 2.0}, accepted=True),  # blessed slowdown
            self.entry({"n=10": 2.1}),
        ]
        report = check_trend(entries, tolerance=0.25)
        assert [p.status for p in report.points] == ["ok"]
        assert report.entries == 1  # history truncated at the accepted entry

    def test_check_trend_window_limits_history(self):
        from repro.experiments.perf import check_trend

        old = [self.entry({"n=10": 9.0}) for _ in range(5)]
        recent = [self.entry({"n=10": 1.0}) for _ in range(6)]
        report = check_trend(
            old + recent + [self.entry({"n=10": 1.1})], window=5
        )
        assert [p.status for p in report.points] == ["ok"]
        assert report.entries == 5

    def test_check_trend_empty_raises(self):
        from repro.experiments.orchestrator import SpecError
        from repro.experiments.perf import check_trend

        with pytest.raises(SpecError):
            check_trend([])

    def test_median_noise_tolerated(self):
        from repro.experiments.perf import check_trend

        history = [
            self.entry({"n=10": m}) for m in (1.0, 1.0, 5.0, 1.0, 1.0)
        ]  # one noisy CI machine in the window
        report = check_trend(history + [self.entry({"n=10": 1.1})])
        assert [p.status for p in report.points] == ["ok"]


class TestTrendCli:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        base = result_set({(("n_nodes", 10),): [1.0, 1.0, 1.0, 1.0, 1.0]})
        slow = result_set({(("n_nodes", 10),): [4.0, 4.0, 4.0, 4.0, 4.0]})
        paths = {}
        for name, results in (("base", base), ("slow", slow)):
            paths[name] = str(tmp_path / f"{name}.json")
            export_json(results, paths[name])
        return paths

    def test_requires_baseline_or_trend(self, artifacts, capsys):
        from repro.experiments.__main__ import main

        code = main(["perf", "smoke", "--current", artifacts["base"]])
        assert code == 2
        assert "nothing to compare" in capsys.readouterr().err

    def test_trend_append_then_regression(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main
        from repro.experiments.perf import load_trend

        trend = str(tmp_path / "trend.jsonl")
        for _ in range(3):
            assert main(
                ["perf", "smoke", "--current", artifacts["base"], "--trend", trend]
            ) == 0
        capsys.readouterr()
        code = main(
            ["perf", "smoke", "--current", artifacts["slow"], "--trend", trend]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out
        assert len(load_trend(trend)) == 4  # the regressing entry is recorded

    def test_accept_blesses_slowdown_and_refreshes_baseline(
        self, artifacts, tmp_path, capsys
    ):
        from repro.experiments.__main__ import main
        from repro.experiments.perf import load_results, load_trend

        trend = str(tmp_path / "trend.jsonl")
        for _ in range(2):
            main(["perf", "smoke", "--current", artifacts["base"], "--trend", trend])
        code = main(
            ["perf", "smoke", "--current", artifacts["slow"], "--trend", trend,
             "--baseline", artifacts["base"], "--accept"]
        )
        assert code == 0
        assert load_trend(trend)[-1].accepted is True
        # the baseline artifact now holds the accepted (slow) results
        refreshed = load_results(artifacts["base"])
        assert [r.wall_time for r in refreshed] == [4.0] * 5
        # the next run compares against the accepted entry: no regression
        capsys.readouterr()
        assert main(
            ["perf", "smoke", "--current", artifacts["slow"], "--trend", trend]
        ) == 0

    def test_accept_refuses_store_baseline(self, artifacts, tmp_path, capsys):
        from repro.experiments.__main__ import main

        store_dir = tmp_path / "cache"
        store_dir.mkdir()
        code = main(
            ["perf", "smoke", "--current", artifacts["base"],
             "--trend", str(tmp_path / "trend.jsonl"),
             "--baseline", str(store_dir), "--accept"]
        )
        assert code == 2
        assert "result store" in capsys.readouterr().err

    def test_trend_report_file_carries_both_sections(
        self, artifacts, tmp_path
    ):
        from repro.experiments.__main__ import main

        trend = str(tmp_path / "trend.jsonl")
        report = str(tmp_path / "report.json")
        code = main(
            ["perf", "smoke", "--current", artifacts["base"],
             "--baseline", artifacts["base"], "--trend", trend,
             "--report", report]
        )
        assert code == 0
        with open(report, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert set(doc) == {"comparison", "trend"}
        assert doc["trend"]["points"][0]["status"] == "no-history"
