"""Physics-fingerprint regression suite.

Locks the physical layer down three ways against the golden capture in
``tests/data/phy_fingerprints.json`` (recorded before the transmit path
became interference-aware, then extended with the new ``sinr`` /
``csma_ca`` components):

* **Metric fingerprints** -- one small seeded scenario per registered
  (radio, MAC) combination; every metric in ``MetricsReport.flat_row()``
  must match the golden value exactly.  Any change to propagation, MAC
  arithmetic, rng-draw order or the transmit path shows up here.
* **Cache keys** -- for every spec captured in the golden, the full
  sequence of run cache keys must hash to the recorded digest.  Adding
  the phy config sections must not re-key (and therefore re-run) any
  pre-existing sweep.
* **Artifact bytes** -- a tiny sweep's exported CSV and its canonical
  config blob must hash to the recorded values, proving artifacts stay
  byte-identical, not merely numerically equal.

Regenerate deliberately (after an intended physics change) with::

    PYTHONPATH=src python tests/test_phy_fingerprint.py

and review the golden diff like source code.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.experiments.orchestrator import (
    SweepSpec,
    canonical_config,
    expand_spec,
    export_csv,
    run_sweep,
)
from repro.experiments.runner import run_scenario
from repro.experiments.scenarios import ScenarioConfig
from repro.experiments.specs import get_spec
from repro.registry import MACS, RADIOS

GOLDEN_PATH = Path(__file__).parent / "data" / "phy_fingerprints.json"

#: duration of the per-combination fingerprint scenario (simulated s)
FINGERPRINT_DURATION = 15.0


def fingerprint_config(radio: str, mac: str) -> ScenarioConfig:
    """The one small seeded scenario fingerprinting a (radio, MAC) pair."""
    return ScenarioConfig(
        protocol="flooding",
        radio=radio,
        mac=mac,
        n_nodes=20,
        area_size=600.0,
        radio_range=250.0,
        max_speed=2.0,
        group_size=6,
        traffic_interval=0.5,
        traffic_start=5.0,
        seed=7,
    )


def artifact_spec() -> SweepSpec:
    """The tiny sweep whose exported CSV bytes the golden pins down."""
    return SweepSpec(
        name="phy_fingerprint_artifact",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=16,
            area_size=500.0,
            group_size=5,
            traffic_start=5.0,
            max_speed=2.0,
        ),
        grid={"n_nodes": [12, 16]},
        seeds=(3,),
        duration=10.0,
    )


def load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


GOLDEN = load_golden()


def combo_fingerprint(radio: str, mac: str) -> dict:
    result = run_scenario(
        fingerprint_config(radio, mac), duration=GOLDEN["duration"]
    )
    return result.report.flat_row()


def spec_key_digest(name: str) -> dict:
    runs = expand_spec(get_spec(name))
    joined = "\n".join(run.cache_key() for run in runs)
    return {
        "n_runs": len(runs),
        "sha256": hashlib.sha256(joined.encode()).hexdigest(),
        "first": runs[0].cache_key(),
    }


def artifact_csv_sha256() -> str:
    results = run_sweep(artifact_spec(), workers=1, executor="serial")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "artifact.csv")
        export_csv(results, path)
        with open(path, "rb") as fh:
            return hashlib.sha256(fh.read()).hexdigest()


def base_canonical_sha256() -> str:
    blob = json.dumps(
        canonical_config(artifact_spec().base),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def test_golden_covers_every_registered_combo():
    """Every registered (radio, MAC) pair must have a golden fingerprint.

    Registering a new component without recording its fingerprint fails
    here, so the suite's coverage cannot silently rot.
    """
    expected = {f"{r}+{m}" for r in RADIOS.names() for m in MACS.names()}
    assert set(GOLDEN["combos"]) == expected


@pytest.mark.parametrize("combo", sorted(GOLDEN["combos"]))
def test_combo_metrics_match_golden(combo):
    radio, mac = combo.split("+")
    row = combo_fingerprint(radio, mac)
    golden_row = GOLDEN["combos"][combo]
    assert set(row) == set(golden_row), "metric column set drifted"
    mismatches = {
        key: (row[key], golden_row[key])
        for key in golden_row
        if row[key] != golden_row[key]
    }
    assert not mismatches, (
        f"physics fingerprint drifted for {combo}: {mismatches} -- if the "
        "change is intentional, regenerate the golden (see module docstring)"
    )


@pytest.mark.parametrize("spec_name", sorted(GOLDEN["cache_keys"]))
def test_spec_cache_keys_match_golden(spec_name):
    """Every captured spec's full run-key sequence hashes identically.

    This is the "existing specs must not change cache keys" guarantee:
    a drifted digest means previously cached results would all re-run.
    """
    assert spec_key_digest(spec_name) == GOLDEN["cache_keys"][spec_name]


def test_artifact_csv_bytes_match_golden():
    assert artifact_csv_sha256() == GOLDEN["artifact_csv_sha256"]


def test_base_canonicalisation_matches_golden():
    """The canonical config blob for a classic scenario is byte-stable.

    ``canonical_config`` must keep dropping the inactive phy sections;
    if one leaks in, this hash (and every cache key built on it) moves.
    """
    assert base_canonical_sha256() == GOLDEN["base_canonical_sha256"]


def test_inactive_phy_sections_dropped_from_canonical_config():
    classic = canonical_config(artifact_spec().base)
    assert "sinr" not in classic and "csma_ca" not in classic
    active = canonical_config(
        dataclasses.replace(artifact_spec().base, radio="sinr", mac="csma_ca")
    )
    assert "sinr" in active and "csma_ca" in active


def regenerate() -> None:
    """Recompute every fingerprint and rewrite the golden JSON."""
    doc = {"duration": FINGERPRINT_DURATION, "combos": {}, "cache_keys": {}}
    for radio in RADIOS.names():
        for mac in MACS.names():
            doc["combos"][f"{radio}+{mac}"] = combo_fingerprint(radio, mac)
    for name in sorted(GOLDEN["cache_keys"]):
        doc["cache_keys"][name] = spec_key_digest(name)
    doc["artifact_csv_sha256"] = artifact_csv_sha256()
    doc["base_canonical_sha256"] = base_canonical_sha256()
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"regenerated {GOLDEN_PATH} ({len(doc['combos'])} combos)")


if __name__ == "__main__":
    regenerate()
