"""Unit tests for the HVDB model construction (paper Figure 1 / Section 3)."""

import pytest

from repro.clustering.service import ClusterSnapshot
from repro.core.hvdb import ClusterHeadRole, HVDBModel
from repro.core.identifiers import LogicalAddressSpace
from repro.geo.area import Area
from repro.geo.geometry import Point
from repro.geo.grid import VirtualCircleGrid


def make_space(cols=8, rows=8, dimension=4):
    return LogicalAddressSpace(VirtualCircleGrid(Area(1000.0, 1000.0), cols, rows), dimension)


def snapshot_from_heads(heads):
    """Build a minimal ClusterSnapshot: one CH per listed VC."""
    return ClusterSnapshot(
        time=0.0,
        heads=dict(heads),
        members={coord: {ch} for coord, ch in heads.items()},
        node_home={ch: coord for coord, ch in heads.items()},
    )


class TestModelConstruction:
    def test_full_backbone(self):
        space = make_space()
        heads = {}
        ch = 0
        for col in range(8):
            for row in range(8):
                heads[(col, row)] = ch
                ch += 1
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert len(model.cluster_heads()) == 64
        assert model.actual_hypercube_ids() == [0, 1, 2, 3]
        for hid in range(4):
            cube = model.hypercube(hid)
            assert len(cube) == 16
            assert cube.is_connected()
        assert len(model.mesh()) == 4
        assert model.mesh().is_connected()

    def test_partial_backbone(self):
        space = make_space()
        heads = {(0, 0): 10, (1, 0): 11, (5, 5): 12}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert model.cluster_heads() == [10, 11, 12]
        assert sorted(model.actual_hypercube_ids()) == [0, 3]
        assert len(model.hypercube(0)) == 2
        assert len(model.hypercube(1)) == 0
        assert len(model.mesh()) == 2

    def test_empty_backbone(self):
        space = make_space()
        model = HVDBModel(space, snapshot_from_heads({}))
        assert model.cluster_heads() == []
        assert model.actual_hypercube_ids() == []
        assert len(model.mesh()) == 0

    def test_chid_hnid_one_to_one(self):
        space = make_space()
        heads = {(0, 0): 10, (1, 0): 11, (2, 1): 12}
        model = HVDBModel(space, snapshot_from_heads(heads))
        seen_hnids = set()
        for ch in model.cluster_heads():
            address = model.address_of_ch(ch)
            assert model.chid_at(address.hid, address.hnid) == ch
            seen_hnids.add((address.hid, address.hnid))
        assert len(seen_hnids) == 3

    def test_is_cluster_head_and_vc_roundtrip(self):
        space = make_space()
        heads = {(3, 4): 77}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert model.is_cluster_head(77)
        assert not model.is_cluster_head(1)
        assert model.vc_of_ch(77) == (3, 4)
        assert model.ch_of_vc((3, 4)) == 77
        assert model.ch_of_vc((0, 0)) is None

    def test_address_of_non_ch_raises(self):
        space = make_space()
        model = HVDBModel(space, snapshot_from_heads({(0, 0): 1}))
        with pytest.raises(KeyError):
            model.address_of_ch(99)


class TestRoles:
    def test_border_and_inner_classification(self):
        space = make_space()
        heads = {(1, 1): 1, (3, 1): 2, (4, 1): 3}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert model.role_of(1) is ClusterHeadRole.INNER
        assert model.role_of(2) is ClusterHeadRole.BORDER
        assert model.role_of(3) is ClusterHeadRole.BORDER
        assert model.role_of(42) is ClusterHeadRole.NOT_CLUSTER_HEAD
        assert model.border_cluster_heads() == [2, 3]
        assert model.inner_cluster_heads() == [1]

    def test_role_filters_by_hypercube(self):
        space = make_space()
        heads = {(3, 1): 2, (4, 1): 3}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert model.border_cluster_heads(hid=0) == [2]
        assert model.border_cluster_heads(hid=1) == [3]


class TestLogicalNeighbors:
    def test_logical_neighbors_are_hypercube_adjacent_chs(self):
        space = make_space()
        # VCs (0,0)=HNID 0000, (1,0)=0001, (0,1)=0010, (1,1)=0011 in hypercube 0
        heads = {(0, 0): 1, (1, 0): 2, (0, 1): 3, (1, 1): 4}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert sorted(model.logical_neighbors_of_ch(1)) == [2, 3]
        assert sorted(model.logical_neighbors_of_ch(4)) == [2, 3]

    def test_no_neighbors_when_alone(self):
        space = make_space()
        model = HVDBModel(space, snapshot_from_heads({(0, 0): 1}))
        assert model.logical_neighbors_of_ch(1) == []

    def test_chs_in_hypercube(self):
        space = make_space()
        heads = {(0, 0): 1, (1, 0): 2, (4, 0): 3}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert model.chs_in_hypercube(0) == [1, 2]
        assert model.chs_in_hypercube(1) == [3]
        assert model.chs_in_hypercube(2) == []


class TestEntryCh:
    def test_entry_prefers_border_ch_closest_to_reference(self):
        space = make_space()
        heads = {(4, 0): 10, (7, 0): 11, (5, 1): 12}
        # hid 1 spans VC columns 4-7; (4,0) and... (7,0) faces no block to the
        # east so only (4,0) is a border VC; (5,1) is inner.
        model = HVDBModel(space, snapshot_from_heads(heads))
        entry = model.entry_ch(1, towards=Point(0.0, 0.0))
        assert entry == 10

    def test_entry_falls_back_to_any_ch(self):
        space = make_space()
        heads = {(5, 1): 12}
        model = HVDBModel(space, snapshot_from_heads(heads))
        assert model.entry_ch(1) == 12

    def test_entry_none_for_empty_hypercube(self):
        space = make_space()
        model = HVDBModel(space, snapshot_from_heads({(0, 0): 1}))
        assert model.entry_ch(3) is None


class TestBackboneSummary:
    def test_summary_fields(self):
        space = make_space()
        heads = {(0, 0): 1, (1, 0): 2, (4, 4): 3}
        model = HVDBModel(space, snapshot_from_heads(heads))
        summary = model.backbone_summary()
        assert summary["cluster_heads"] == 3.0
        assert summary["actual_hypercubes"] == 2.0
        assert summary["possible_hypercubes"] == 4.0
        assert 0.0 < summary["hypercube_occupancy"] < 1.0
        assert summary["mesh_nodes"] == 2.0
        assert summary["connected_hypercube_fraction"] == 1.0
