"""Tests of the networked (``tcp``) executor: protocol, leases, churn.

Covers the wire layer (frame round-trips, fuzzed-garbage and oversize
rejection, version negotiation refusing mismatched workers with the
reason on the wire), the shared lease state machine in
:mod:`repro.experiments.leases`, and the coordinator/worker protocol
end to end over real sockets: a worker killed mid-run has its lease
reclaimed and the run re-executed exactly once, a silent worker's lease
goes stale and its late result is dropped (exactly-once recording), two
workers never double-execute, tcp sweeps produce artifacts
byte-identical to the process pool, and a warm cache replays with zero
executions without the coordinator ever binding a socket.
"""

import io
import random
import socket
import threading
import time

import pytest

from repro.experiments.executors import EXECUTORS, Executor, make_executor
from repro.experiments.leases import (
    DEFAULT_STALE_AFTER,
    ExecutorStats,
    LeaseLost,
    LeaseTable,
    is_stale,
)
from repro.experiments.net import protocol
from repro.experiments.net.coordinator import Coordinator, TcpExecutor
from repro.experiments.net.protocol import (
    FrameConnection,
    ProtocolError,
    pack_frame,
    recv_frame,
)
from repro.experiments.net.worker import (
    NetWorkerError,
    parse_address,
    run_net_worker,
)
from repro.experiments.orchestrator import (
    RunResult,
    SweepError,
    SweepSpec,
    expand_spec,
    export_csv,
    register_hook,
    run_sweep,
)
from repro.experiments.scenarios import ScenarioConfig


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=12,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=4,
            traffic_start=3.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [10, 14]},
        seeds=(1, 2),
        duration=10.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


def stub_result(run, pdr=1.0) -> RunResult:
    return RunResult(
        run_id=run.run_id,
        params=dict(run.params),
        seed=run.seed,
        duration=run.duration,
        metrics={"pdr": pdr},
        cache_key=run.cache_key(),
    )


def wait_until(predicate, timeout=15.0, message="condition never held"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(message)


def connect_raw(port, worker="raw-worker"):
    """A hand-driven worker connection, handshake already done."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=15)
    conn = FrameConnection(sock)
    conn.send(protocol.FRAME_HELLO, protocol.hello_payload(worker))
    kind, payload = conn.recv()
    assert kind == protocol.FRAME_HELLO
    return conn, payload


def run_with_tcp(spec, n_workers=2, **sweep_kwargs):
    """Drive ``spec`` through the tcp backend with in-thread net workers.

    The tcp analogue of ``run_with_queue``: the backend binds an
    ephemeral port, plain ``run_net_worker`` loops in background threads
    stand in for `python -m repro.experiments worker --connect` processes
    and detach when the coordinator closes.
    """
    backend = TcpExecutor(port=0, poll_interval=0.02)
    port = backend.start()
    threads = [
        threading.Thread(
            target=run_net_worker,
            args=(("127.0.0.1", port),),
            kwargs=dict(worker_id=f"nw{i}", poll_interval=0.02, max_retries=2),
        )
        for i in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    try:
        return run_sweep(spec, workers=0, executor=backend, **sweep_kwargs)
    finally:
        backend.close()  # idempotent; run_sweep already closed on its way out
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads)


class TestFrames:
    @pytest.mark.parametrize(
        "kind",
        [
            protocol.FRAME_HELLO,
            protocol.FRAME_LEASE,
            protocol.FRAME_HEARTBEAT,
            protocol.FRAME_RESULT,
            protocol.FRAME_ERROR,
            protocol.FRAME_DRAIN,
            protocol.FRAME_CLOSE,
        ],
    )
    def test_every_kind_round_trips(self, kind):
        payload = {"task_id": "t1", "n": 3, "nested": {"pdr": 0.5}}
        kind_back, payload_back = recv_frame(io.BytesIO(pack_frame(kind, payload)))
        assert kind_back == kind
        assert payload_back == payload

    def test_empty_payload_round_trips_as_empty_dict(self):
        assert recv_frame(io.BytesIO(pack_frame(protocol.FRAME_DRAIN))) == (
            protocol.FRAME_DRAIN,
            {},
        )

    def test_payload_key_order_is_preserved(self):
        # CSV column order is derived from metrics dict insertion order;
        # the wire must never re-sort it or tcp artifacts diverge
        metrics = {"zeta": 1.0, "alpha": 2.0, "mid": 3.0}
        _, back = recv_frame(
            io.BytesIO(pack_frame(protocol.FRAME_RESULT, {"metrics": metrics}))
        )
        assert list(back["metrics"]) == ["zeta", "alpha", "mid"]

    def test_unknown_kind_is_refused_on_send(self):
        with pytest.raises(ProtocolError, match="unknown frame kind"):
            pack_frame("gossip", {})

    def test_oversize_payload_is_refused_on_send(self):
        with pytest.raises(ProtocolError, match="cap"):
            pack_frame(protocol.FRAME_RESULT, {"blob": "x" * 64}, max_payload=32)

    def test_oversize_length_prefix_is_refused_on_receive(self):
        # a corrupt length must be rejected before any allocation
        header = protocol._HEADER.pack(2**31, 4)
        with pytest.raises(ProtocolError, match="exceeds cap"):
            recv_frame(io.BytesIO(header))

    def test_unknown_type_byte_is_refused(self):
        with pytest.raises(ProtocolError, match="unknown frame type"):
            recv_frame(io.BytesIO(protocol._HEADER.pack(0, 99)))

    def test_truncated_payload_is_a_protocol_error(self):
        frame = pack_frame(protocol.FRAME_HELLO, {"version": 1, "worker": "w"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(io.BytesIO(frame[:-3]))

    def test_truncated_header_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(io.BytesIO(b"\x00\x00"))

    def test_clean_eof_returns_none(self):
        assert recv_frame(io.BytesIO(b"")) is None

    def test_non_json_payload_is_a_protocol_error(self):
        frame = protocol._HEADER.pack(4, 1) + b"\xff\xfe\xfd\xfc"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            recv_frame(io.BytesIO(frame))

    def test_non_object_json_payload_is_a_protocol_error(self):
        body = b"[1,2]"
        frame = protocol._HEADER.pack(len(body), 1) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            recv_frame(io.BytesIO(frame))

    def test_fuzzed_garbage_never_escapes_protocol_error(self):
        # deterministic fuzz: whatever bytes arrive, the reader returns a
        # frame, a clean EOF, or ProtocolError -- never another exception
        rng = random.Random(0xC0FFEE)
        for _ in range(300):
            blob = rng.randbytes(rng.randint(0, 96))
            reader = io.BytesIO(blob)
            try:
                while recv_frame(reader, max_payload=1024) is not None:
                    pass
            except ProtocolError:
                pass

    def test_run_spec_round_trips_through_lease_encoding(self):
        (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
        back = protocol.decode_run(protocol.encode_run(run))
        assert back.run_id == run.run_id
        assert back.cache_key() == run.cache_key()

    def test_undecodable_lease_payload_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="undecodable run"):
            protocol.decode_run("!!! not base64 pickle !!!")

    def test_result_round_trips_through_result_encoding(self):
        (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
        result = stub_result(run, pdr=0.75)
        back = protocol.decode_result(protocol.encode_result(result))
        assert back.to_dict() == result.to_dict()

    def test_hello_version_mismatch_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            protocol.check_hello({"version": 999, "worker": "w"})
        with pytest.raises(ProtocolError, match="no worker id"):
            protocol.check_hello({"version": protocol.PROTOCOL_VERSION})


class TestLeaseStateMachine:
    def test_claim_is_exclusive_while_live(self):
        table = LeaseTable(stale_after=30.0)
        assert table.claim("t1", "a", now=100.0)
        assert not table.claim("t1", "b", now=110.0)
        assert table.owner("t1") == "a"

    def test_stale_incumbent_is_displaced(self):
        table = LeaseTable(stale_after=30.0)
        assert table.claim("t1", "dead", now=100.0)
        assert table.claim("t1", "rescuer", now=140.0)
        assert table.owner("t1") == "rescuer"

    def test_heartbeat_keeps_lease_alive(self):
        table = LeaseTable(stale_after=30.0)
        table.claim("t1", "busy", now=100.0)
        table.heartbeat("t1", "busy", now=125.0)
        assert not table.claim("t1", "thief", now=140.0)

    def test_heartbeat_by_dispossessed_worker_raises(self):
        table = LeaseTable(stale_after=30.0)
        table.claim("t1", "stalled", now=100.0)
        table.claim("t1", "thief", now=140.0)
        with pytest.raises(LeaseLost):
            table.heartbeat("t1", "stalled", now=141.0)

    def test_release_by_dispossessed_worker_is_a_noop(self):
        table = LeaseTable(stale_after=30.0)
        table.claim("t1", "stalled", now=100.0)
        table.claim("t1", "thief", now=140.0)
        assert not table.release("t1", "stalled")
        assert table.owner("t1") == "thief"
        assert table.release("t1", "thief")
        assert table.owner("t1") is None

    def test_touch_owner_refreshes_every_lease_it_holds(self):
        table = LeaseTable(stale_after=30.0)
        table.claim("t1", "w", now=100.0)
        table.claim("t2", "w", now=100.0)
        table.claim("t3", "other", now=100.0)
        table.touch_owner("w", now=129.0)
        assert [l.task_id for l in table.reclaim_stale(now=131.0)] == ["t3"]
        assert len(table) == 2

    def test_release_owner_drops_all_of_a_disconnected_workers_leases(self):
        table = LeaseTable(stale_after=30.0)
        table.claim("t1", "w", now=100.0)
        table.claim("t2", "w", now=100.0)
        table.claim("t3", "other", now=100.0)
        dropped = {l.task_id for l in table.release_owner("w")}
        assert dropped == {"t1", "t2"}
        assert table.owner("t3") == "other"

    def test_is_stale_matches_the_queue_rule(self):
        assert not is_stale(DEFAULT_STALE_AFTER, DEFAULT_STALE_AFTER)
        assert is_stale(DEFAULT_STALE_AFTER + 0.001, DEFAULT_STALE_AFTER)

    def test_stats_bool_add_and_describe(self):
        stats = ExecutorStats()
        assert not stats
        stats.add(ExecutorStats(leases_reclaimed=2, workers_seen=3, workers_lost=1,
                                runs_reexecuted=2))
        assert stats
        assert stats.describe() == (
            "2 lease(s) reclaimed, 2 run(s) re-executed, 3 worker(s) seen, 1 lost"
        )


class TestWorkerCli:
    def test_parse_address(self):
        assert parse_address("host.example:7653") == ("host.example", 7653)
        for bad in ("no-port", ":7653", "host:", "host:notaport", "host:70000"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_worker_connect_rejects_bad_address(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["worker", "--connect", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_executors_subcommand_lists_tcp(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["executors"]) == 0
        assert "tcp" in capsys.readouterr().out

    def test_make_executor_passes_instances_through(self):
        backend = TcpExecutor(port=0)
        assert make_executor(backend) is backend
        with pytest.raises(ValueError, match="options"):
            make_executor(backend, poll_interval=0.1)

    def test_tcp_is_registered(self):
        assert "tcp" in EXECUTORS.names()

    def test_tcp_executor_validates_options(self):
        with pytest.raises(ValueError, match="poll_interval"):
            TcpExecutor(poll_interval=0.0)
        with pytest.raises(ValueError, match="stale_after"):
            TcpExecutor(stale_after=-1.0)
        with pytest.raises(ValueError, match="port"):
            TcpExecutor(port=99999)


class TestCoordinatorChurn:
    """Real-socket tests of lease reclaim, refusal and exactly-once."""

    def make_coordinator(self, **kwargs):
        coord = Coordinator(port=0, **kwargs)
        coord.start()
        return coord

    def test_version_mismatch_is_refused_with_the_reason_on_the_wire(self):
        coord = self.make_coordinator()
        try:
            sock = socket.create_connection(("127.0.0.1", coord.port), timeout=15)
            conn = FrameConnection(sock)
            conn.send(protocol.FRAME_HELLO, {"version": 999, "worker": "old"})
            kind, payload = conn.recv()
            assert kind == protocol.FRAME_ERROR
            assert payload["fatal"] is True
            assert "version mismatch" in payload["error"]
            assert conn.recv() is None  # refused connections are dropped
            conn.close()

            # the coordinator survives and still serves a good worker
            (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
            coord.submit(run.cache_key(), run)
            executed = run_net_worker(
                ("127.0.0.1", coord.port),
                worker_id="good",
                poll_interval=0.02,
                execute=stub_result,
                max_tasks=1,
                max_retries=2,
            )
            assert executed == 1
        finally:
            coord.close(grace=0.2)

    def test_mismatched_worker_fails_loudly_instead_of_retrying(self, monkeypatch):
        coord = self.make_coordinator()
        try:
            monkeypatch.setattr(
                protocol, "hello_payload",
                lambda wid: {"version": 999, "worker": wid},
            )
            with pytest.raises(NetWorkerError, match="refused"):
                run_net_worker(
                    ("127.0.0.1", coord.port),
                    worker_id="old",
                    poll_interval=0.02,
                    max_retries=2,
                )
        finally:
            coord.close(grace=0.2)

    def test_malformed_frame_kills_the_connection_not_the_coordinator(self):
        coord = self.make_coordinator()
        try:
            # garbage straight onto the socket: a corrupt length prefix
            sock = socket.create_connection(("127.0.0.1", coord.port), timeout=15)
            sock.sendall(b"\xff" * 64)
            reader = sock.makefile("rb")
            assert reader.read(1) == b""  # connection killed
            sock.close()

            (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
            coord.submit(run.cache_key(), run)
            executed = run_net_worker(
                ("127.0.0.1", coord.port),
                worker_id="good",
                poll_interval=0.02,
                execute=stub_result,
                max_tasks=1,
                max_retries=2,
            )
            assert executed == 1
        finally:
            coord.close(grace=0.2)

    def test_killed_worker_lease_is_reclaimed_and_reexecuted_exactly_once(self):
        # the in-pytest stand-in for `kill -9` mid-run: a worker takes a
        # lease then its socket dies without a close frame
        coord = self.make_coordinator(stale_after=30.0)
        try:
            (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
            task_id = run.cache_key()
            coord.submit(task_id, run)

            conn, _hello = connect_raw(coord.port, worker="doomed")
            conn.send(protocol.FRAME_DRAIN, {})
            kind, payload = conn.recv()
            assert kind == protocol.FRAME_LEASE and payload["task_id"] == task_id
            conn.close()  # abrupt: no close frame, mid-run

            wait_until(
                lambda: coord.stats().leases_reclaimed >= 1,
                message="disconnect never reclaimed the lease",
            )
            executed = run_net_worker(
                ("127.0.0.1", coord.port),
                worker_id="rescuer",
                poll_interval=0.02,
                execute=stub_result,
                max_tasks=1,
                max_retries=2,
            )
            assert executed == 1
            results, errors = coord.drain(timeout=5.0)
            assert errors == {}
            assert list(results) == [task_id]  # recorded exactly once
            stats = coord.stats()
            assert stats.leases_reclaimed == 1
            assert stats.workers_lost == 1
            assert stats.runs_reexecuted == 1
            assert stats.workers_seen == 2
        finally:
            coord.close(grace=0.2)

    def test_silent_workers_late_result_is_dropped(self):
        # a worker that stays connected but never heartbeats loses its
        # lease to the poll loop; its late result must not overwrite the
        # rescuer's (exactly-once recording)
        coord = self.make_coordinator(stale_after=0.2)
        try:
            (run,) = expand_spec(tiny_spec(grid={}, seeds=(1,)))
            task_id = run.cache_key()
            coord.submit(task_id, run)

            conn, _hello = connect_raw(coord.port, worker="silent")
            conn.send(protocol.FRAME_DRAIN, {})
            kind, payload = conn.recv()
            assert kind == protocol.FRAME_LEASE
            time.sleep(0.5)  # well past stale_after, no heartbeat
            assert coord.reclaim_stale() == 1

            executed = run_net_worker(
                ("127.0.0.1", coord.port),
                worker_id="rescuer",
                poll_interval=0.02,
                execute=stub_result,
                max_tasks=1,
                max_retries=2,
            )
            assert executed == 1

            # now the dispossessed worker finishes late
            late = stub_result(run, pdr=-999.0)
            conn.send(
                protocol.FRAME_RESULT,
                {"task_id": task_id, "result": protocol.encode_result(late)},
            )
            kind, _payload = conn.recv()
            assert kind == protocol.FRAME_RESULT  # still acked, but dropped
            conn.send(protocol.FRAME_CLOSE, {})
            conn.close()

            results, errors = coord.drain(timeout=5.0)
            assert errors == {}
            assert list(results) == [task_id]
            assert results[task_id].metrics["pdr"] != -999.0
            stats = coord.stats()
            assert stats.leases_reclaimed == 1
            assert stats.runs_reexecuted == 1
        finally:
            coord.close(grace=0.2)

    def test_two_workers_never_double_execute(self):
        coord = self.make_coordinator(stale_after=30.0)
        try:
            runs = expand_spec(tiny_spec(grid={"n_nodes": [10, 12, 14]}, seeds=(1, 2)))
            for run in runs:
                coord.submit(run.cache_key(), run)

            counts = {}
            lock = threading.Lock()

            def counting_execute(run):
                with lock:
                    counts[run.run_id] = counts.get(run.run_id, 0) + 1
                time.sleep(0.01)  # widen the lease/execute race window
                return stub_result(run)

            threads = [
                threading.Thread(
                    target=run_net_worker,
                    args=(("127.0.0.1", coord.port),),
                    kwargs=dict(
                        worker_id=f"w{i}",
                        poll_interval=0.01,
                        execute=counting_execute,
                        max_retries=2,
                    ),
                )
                for i in (1, 2)
            ]
            for thread in threads:
                thread.start()
            completed = {}
            deadline = time.monotonic() + 30.0
            while len(completed) < len(runs) and time.monotonic() < deadline:
                results, errors = coord.drain(timeout=0.2)
                assert errors == {}
                completed.update(results)
        finally:
            coord.close(grace=2.0)
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert len(completed) == len(runs)
        assert counts == {run.run_id: 1 for run in runs}


class _ChurnyExecutor(Executor):
    """Serial execution that pretends it survived worker churn."""

    name = "churny"

    def map_runs(self, pending, execute, record, fail, *, workers, label,
                 progress, fresh=False):
        for key, run in pending:
            record(key, execute(run))

    def stats(self):
        return ExecutorStats(
            leases_reclaimed=2, workers_seen=3, workers_lost=1, runs_reexecuted=2
        )


class TestTcpSweeps:
    def test_tcp_sweep_is_byte_identical_to_process(self, tmp_path):
        spec = tiny_spec()
        reference = run_sweep(
            spec, workers=2, cache_dir=str(tmp_path / "cache-ref"),
            executor="process",
        )
        over_tcp = run_with_tcp(spec, cache_dir=str(tmp_path / "cache-tcp"))
        assert all(not r.from_cache for r in over_tcp)
        ref_csv, tcp_csv = str(tmp_path / "ref.csv"), str(tmp_path / "tcp.csv")
        export_csv(reference, ref_csv)
        export_csv(over_tcp, tcp_csv)
        with open(ref_csv, "rb") as fh:
            ref_bytes = fh.read()
        with open(tcp_csv, "rb") as fh:
            assert fh.read() == ref_bytes

    def test_warm_cache_replays_without_ever_binding_a_socket(self, tmp_path):
        spec = tiny_spec()
        cache_dir = str(tmp_path / "cache")
        reference = run_sweep(spec, workers=1, cache_dir=cache_dir, executor="serial")
        backend = TcpExecutor(port=0)
        replay = run_sweep(spec, workers=0, cache_dir=cache_dir, executor=backend)
        assert all(r.from_cache for r in replay)
        assert [r.metrics for r in replay] == [r.metrics for r in reference]
        # zero cache misses: the coordinator never started listening
        assert backend.coordinator._server is None
        assert backend.coordinator.port == 0

    def test_remote_failure_is_reported(self, tmp_path):
        @register_hook("tcp_explode")
        def _explode(scenario):
            raise RuntimeError("boom over tcp")

        spec = tiny_spec(seeds=(1,), grid={}, during_run="tcp_explode")
        with pytest.raises(SweepError, match="boom over tcp"):
            run_with_tcp(spec, n_workers=1, cache_dir=str(tmp_path / "cache"))

    def test_churn_counters_surface_in_the_run_summary(self, capsys):
        run_sweep(tiny_spec(seeds=(1,), grid={}), executor=_ChurnyExecutor(),
                  progress=True)
        err = capsys.readouterr().err
        assert (
            "[tiny] churn: 2 lease(s) reclaimed, 2 run(s) re-executed, "
            "3 worker(s) seen, 1 lost" in err
        )

    def test_quiet_backends_log_no_churn_line(self, capsys):
        run_sweep(tiny_spec(seeds=(1,), grid={}), executor="serial", progress=True)
        assert "churn" not in capsys.readouterr().err
