"""Focused unit tests for HVDB protocol-agent internals.

The end-to-end behaviour is covered in ``test_core_protocol.py``; these
tests pin down the smaller decision functions (fail-over target selection,
fallback CH choice, packet handling rules) in isolation.
"""

import pytest

from repro.core.hvdb import HVDBModel
from repro.core.protocol import HVDB_PROTOCOL, HVDBParameters
from repro.geo.geometry import Point
from repro.hypercube.multicast_tree import MulticastTree
from repro.simulation.packet import Packet, PacketKind

from tests.test_core_protocol import build_hvdb_network, dense_grid_positions


class TestAgentRoleTracking:
    def test_agent_knows_whether_it_is_cluster_head(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        # every node sits alone in its VC, so every node is a CH
        for node_id, agent in stack.agents.items():
            assert agent.is_cluster_head()

    def test_non_capable_node_is_not_cluster_head(self):
        positions = dense_grid_positions()
        positions[99] = Point(140.0, 140.0)
        network, stack = build_hvdb_network(positions, non_ch_nodes={99})
        assert not stack.agents[99].is_cluster_head()
        assert stack.agents[99]._my_ch() is not None

    def test_route_table_created_lazily_with_own_hnid(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        agent = stack.agents[0]
        table = agent._ensure_route_table()
        assert table.own_hnid == stack.model.address_of_ch(0).hnid
        # calling again returns the same table
        assert agent._ensure_route_table() is table

    def test_model_update_invalidates_tree_caches(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        agent = stack.agents[0]
        agent.forwarding.mesh_trees[1] = "sentinel"      # type: ignore[assignment]
        agent.on_model_update()
        assert agent.forwarding.mesh_trees == {}


class TestFailoverTarget:
    def test_failover_picks_present_ch_serving_orphaned_member(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        agent = stack.agents[0]
        address = stack.model.address_of_ch(0)
        cube = stack.model.hypercube(address.hid)
        present = sorted(cube.nodes())
        assert len(present) >= 3
        missing = present[1]
        member = present[2]
        tree = MulticastTree(
            root=address.hnid,
            children={address.hnid: [missing], missing: [member]},
            members={member, missing},
        )
        target = agent._failover_target(address.hid, missing, tree, group=1)
        assert target == stack.model.chid_at(address.hid, member)

    def test_failover_returns_none_when_no_orphaned_members_present(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        agent = stack.agents[0]
        address = stack.model.address_of_ch(0)
        missing = 15  # a label with no CH in the sparse test cube, if absent
        tree = MulticastTree(root=address.hnid, children={}, members={address.hnid})
        assert agent._failover_target(address.hid, missing, tree, group=1) is None


class TestSourceFallbacks:
    def test_nearest_backbone_ch_is_geographically_closest(self):
        positions = dense_grid_positions()
        positions[99] = Point(140.0, 140.0)
        network, stack = build_hvdb_network(positions, non_ch_nodes={99})
        agent = stack.agents[99]
        nearest = agent._nearest_backbone_ch()
        # node 0 sits in the same VC corner -> it is the closest CH
        assert nearest == 0

    def test_send_multicast_registers_intended_members(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        network.node(5).join_group(4)
        network.node(9).join_group(4)
        stack.start()
        network.simulator.run(5.0)
        stack.agents[0].send_multicast(4, payload="x", size_bytes=64)
        record = list(network.deliveries.values())[0]
        assert record.intended == {5, 9}
        assert record.group == 4

    def test_source_that_is_member_delivers_to_itself(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        network.node(0).join_group(4)
        network.node(9).join_group(4)
        stack.start()
        network.simulator.run(5.0)
        stack.agents[0].send_multicast(4, payload="x", size_bytes=64)
        assert network.node(0).stats.delivered_to_application >= 1
        # the ledger never counts the source as an intended receiver
        record = list(network.deliveries.values())[0]
        assert 0 not in record.intended


class TestPacketHandlingRules:
    def test_foreign_protocol_packets_ignored(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        agent = stack.agents[0]
        foreign = Packet(
            kind=PacketKind.DATA,
            protocol="someone-else",
            msg_type="data",
            source=1,
            group=1,
            created_at=0.0,
        )
        agent.on_packet(foreign, from_node=1)   # must not raise nor deliver
        assert network.node(0).stats.delivered_to_application == 0

    def test_member_overhearing_data_delivers_once(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        network.node(0).join_group(2)
        network.node(9).join_group(2)
        stack.start()
        network.simulator.run(5.0)
        data = Packet(
            kind=PacketKind.DATA,
            protocol=HVDB_PROTOCOL,
            msg_type="data",
            source=9,
            group=2,
            headers={"stage": "local"},
            created_at=network.simulator.now,
        )
        network.register_data_packet(data, [0, 9])
        agent = stack.agents[0]
        agent.on_packet(data, from_node=9)
        agent.on_packet(data, from_node=9)
        record = network.deliveries[data.uid]
        # duplicate receptions of the same packet count as one delivery
        assert list(record.delivered.keys()) == [0]

    def test_non_member_does_not_deliver(self):
        network, stack = build_hvdb_network(dense_grid_positions())
        data = Packet(
            kind=PacketKind.DATA,
            protocol=HVDB_PROTOCOL,
            msg_type="data",
            source=9,
            group=2,
            headers={"stage": "local"},
            created_at=0.0,
        )
        stack.agents[0]._maybe_deliver_locally(data)
        assert network.node(0).stats.delivered_to_application == 0


class TestParameters:
    def test_default_parameters_sane(self):
        params = HVDBParameters()
        assert params.local_membership_period < params.mnt_summary_period
        assert params.mnt_summary_period < params.ht_summary_period
        assert params.max_logical_hops >= 1
        assert params.routes_per_destination >= 1

    def test_stack_uses_supplied_parameters(self):
        custom = HVDBParameters(route_beacon_period=9.0)
        network, stack = build_hvdb_network(dense_grid_positions(), params=custom)
        assert stack.params.route_beacon_period == 9.0
        assert stack.agents[0].params.route_beacon_period == 9.0
