"""Tests of the parallel sweep orchestrator.

Covers the guarantees the experiment substrate rests on: grid expansion,
deterministic per-run seeding (same spec + seed => identical results),
cache hit/miss behaviour, CSV/JSON export round-trips, aggregation, and
the ``python -m repro.experiments`` CLI.
"""

import copy
import dataclasses
import os

import pytest

from repro.experiments.orchestrator import (
    ResultCache,
    RunResult,
    SweepError,
    SweepSpec,
    register_collector,
    execute_run,
    expand_spec,
    export_csv,
    export_json,
    load_csv,
    load_json,
    mean_ci95,
    run_sweep,
    summarize,
)
from repro.experiments.scenarios import ScenarioConfig


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=12,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=4,
            traffic_start=3.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [10, 14]},
        seeds=(1, 2),
        duration=10.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestExpansion:
    def test_cross_product_of_axes_and_seeds(self):
        spec = tiny_spec(grid={"n_nodes": [10, 14], "group_size": [3, 5]}, seeds=(1, 2, 3))
        runs = spec.expand()
        assert len(runs) == spec.run_count == 2 * 2 * 3
        combos = {(r.config.n_nodes, r.config.group_size, r.seed) for r in runs}
        assert len(combos) == 12

    def test_seed_applied_to_config(self):
        runs = expand_spec(tiny_spec(seeds=(5, 9)))
        assert {r.config.seed for r in runs} == {5, 9}
        for run in runs:
            assert run.seed == run.config.seed

    def test_dict_axis_overrides_coupled_fields(self):
        spec = tiny_spec(
            grid={"n_nodes": [{"n_nodes": 10, "area_size": 400.0}]}, seeds=(1,)
        )
        (run,) = expand_spec(spec)
        assert run.config.n_nodes == 10
        assert run.config.area_size == 400.0
        assert run.params == {"n_nodes": 10, "area_size": 400.0}

    def test_empty_grid_is_single_run_per_seed(self):
        spec = tiny_spec(grid={}, seeds=(1, 2))
        runs = expand_spec(spec)
        assert [r.seed for r in runs] == [1, 2]
        assert all(r.params == {} for r in runs)

    def test_run_ids_are_unique_and_stable(self):
        runs = expand_spec(tiny_spec())
        assert len({r.run_id for r in runs}) == len(runs)
        assert runs == expand_spec(tiny_spec())

    def test_seed_axis_replaces_replication_seeds(self):
        # sweeping the seed itself must not collide with spec.seeds
        runs = expand_spec(tiny_spec(grid={"seed": [3, 4]}, seeds=(1, 2)))
        assert [r.seed for r in runs] == [3, 4]
        assert [r.config.seed for r in runs] == [3, 4]
        assert len({r.run_id for r in runs}) == 2

    def test_runner_sweep_over_seed_parameter(self):
        from repro.experiments.runner import sweep

        config = tiny_spec().base
        results = sweep(config, parameter="seed", values=[1, 2], duration=8.0)
        assert [r.config.seed for r in results] == [1, 2]


class TestCacheKey:
    def test_same_inputs_same_key(self):
        a, b = expand_spec(tiny_spec())[0], expand_spec(tiny_spec())[0]
        assert a.cache_key() == b.cache_key()

    def test_key_ignores_sweep_name(self):
        a = expand_spec(tiny_spec())[0]
        b = expand_spec(tiny_spec(name="other"))[0]
        assert a.cache_key() == b.cache_key()

    def test_key_changes_with_config_seed_and_duration(self):
        base = expand_spec(tiny_spec())[0]
        keys = {
            base.cache_key(),
            expand_spec(tiny_spec(seeds=(3,)))[0].cache_key(),
            expand_spec(tiny_spec(duration=11.0))[0].cache_key(),
            expand_spec(tiny_spec(base=dataclasses.replace(tiny_spec().base, max_speed=3.0)))[
                0
            ].cache_key(),
        }
        assert len(keys) == 4


class TestDeterminism:
    def test_same_spec_same_results(self):
        first = run_sweep(tiny_spec(), workers=1)
        second = run_sweep(tiny_spec(), workers=1)
        assert [r.metrics for r in first] == [r.metrics for r in second]

    def test_workers_do_not_change_results(self):
        serial = run_sweep(tiny_spec(), workers=1)
        parallel = run_sweep(tiny_spec(), workers=2)
        assert [r.run_id for r in serial] == [r.run_id for r in parallel]
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_different_seeds_differ(self):
        spec = tiny_spec(grid={}, seeds=(1, 2))
        a, b = run_sweep(spec, workers=1)
        assert a.metrics != b.metrics


class TestCache:
    def test_second_run_is_all_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = run_sweep(tiny_spec(), workers=1, cache_dir=cache_dir)
        assert all(not r.from_cache for r in first)
        second = run_sweep(tiny_spec(), workers=1, cache_dir=cache_dir)
        assert all(r.from_cache for r in second)
        assert [r.metrics for r in first] == [r.metrics for r in second]

    def test_partial_cache_executes_only_misses(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(tiny_spec(seeds=(1,)), workers=1, cache_dir=cache_dir)
        results = run_sweep(tiny_spec(seeds=(1, 2)), workers=1, cache_dir=cache_dir)
        assert [r.from_cache for r in results] == [True, False, True, False]

    def test_force_reexecutes(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(tiny_spec(), workers=1, cache_dir=cache_dir)
        forced = run_sweep(tiny_spec(), workers=1, cache_dir=cache_dir, force=True)
        assert all(not r.from_cache for r in forced)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_sweep(tiny_spec(seeds=(1,), grid={}), workers=1, cache_dir=cache_dir)
        (entry,) = [p for p in os.listdir(cache_dir) if p.endswith(".json")]
        with open(os.path.join(cache_dir, entry), "w") as fh:
            fh.write("{not json")
        results = run_sweep(tiny_spec(seeds=(1,), grid={}), workers=1, cache_dir=cache_dir)
        assert [r.from_cache for r in results] == [False]

    def test_cache_counts_hits_and_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        run = expand_spec(tiny_spec(seeds=(1,), grid={}))[0]
        key = run.cache_key()
        assert cache.get(key) is None
        result = execute_run(run)
        cache.put(key, result)
        assert cache.get(key).metrics == result.metrics
        assert (cache.hits, cache.misses) == (1, 1)


class TestExport:
    def test_json_round_trip(self, tmp_path):
        spec = tiny_spec()
        results = run_sweep(spec, workers=1)
        path = str(tmp_path / "out.json")
        export_json(results, path, spec=spec)
        loaded = load_json(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in results]

    def test_csv_round_trip(self, tmp_path):
        results = run_sweep(tiny_spec(), workers=1)
        path = str(tmp_path / "out.csv")
        export_csv(results, path)
        rows = load_csv(path)
        assert len(rows) == len(results)
        for row, result in zip(rows, results):
            assert int(row["seed"]) == result.seed
            assert int(row["n_nodes"]) == result.params["n_nodes"]
            assert float(row["pdr"]) == pytest.approx(result.metrics["pdr"])

    def test_row_puts_params_first(self):
        result = RunResult(
            run_id="x", params={"n_nodes": 5}, seed=1, duration=1.0,
            metrics={"pdr": 0.5, "n_nodes": 999},
        )
        row = result.row()
        assert list(row)[:2] == ["n_nodes", "seed"]
        assert row["n_nodes"] == 5  # the swept value wins over a metric collision


class TestAggregation:
    def test_mean_ci95(self):
        mean, ci = mean_ci95([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert ci == pytest.approx(4.303 * 1.0 / 3**0.5, rel=1e-3)
        assert mean_ci95([5.0]) == (5.0, 0.0)
        assert mean_ci95([]) == (0.0, 0.0)

    def test_t95_critical_values(self):
        from repro.experiments.orchestrator import _t95

        # no degrees of freedom -> no half-width contribution at all
        assert _t95(0) == 0.0
        assert _t95(-3) == 0.0
        # the tabulated Student-t endpoints, then the normal approximation
        assert _t95(1) == pytest.approx(12.706)
        assert _t95(30) == pytest.approx(2.042)
        assert _t95(31) == pytest.approx(1.96)
        assert _t95(10_000) == pytest.approx(1.96)

    def test_mean_ci95_single_sample_has_no_half_width(self):
        # n=1: the mean is the sample, the CI half-width is undefined --
        # reported as 0.0, which is why adaptive policies require
        # min_seeds >= 2 before trusting a convergence test
        assert mean_ci95([7.25]) == (7.25, 0.0)

    def test_mean_ci95_zero_variance(self):
        mean, ci = mean_ci95([0.4, 0.4, 0.4, 0.4])
        assert mean == pytest.approx(0.4)
        assert ci == 0.0

    def test_summarize_groups_by_params(self):
        def fake(params, seed, pdr):
            return RunResult(
                run_id="r", params=params, seed=seed, duration=1.0, metrics={"pdr": pdr}
            )

        results = [
            fake({"n_nodes": 10}, 1, 0.4),
            fake({"n_nodes": 10}, 2, 0.6),
            fake({"n_nodes": 20}, 1, 1.0),
        ]
        rows = summarize(results, metrics=["pdr"])
        by_nodes = {r["n_nodes"]: r for r in rows}
        assert by_nodes[10]["n_seeds"] == 2
        assert by_nodes[10]["pdr_mean"] == pytest.approx(0.5)
        assert by_nodes[20]["pdr_mean"] == pytest.approx(1.0)
        assert by_nodes[20]["pdr_ci95"] == 0.0

    def test_summarize_single_seed_and_zero_variance_groups(self):
        def fake(params, seed, pdr):
            return RunResult(
                run_id="r", params=params, seed=seed, duration=1.0, metrics={"pdr": pdr}
            )

        rows = summarize(
            [
                fake({"n_nodes": 10}, 1, 0.7),                       # n=1
                fake({"n_nodes": 20}, 1, 0.9),                       # zero variance
                fake({"n_nodes": 20}, 2, 0.9),
                fake({"n_nodes": 20}, 3, 0.9),
            ],
            metrics=["pdr"],
        )
        by_nodes = {r["n_nodes"]: r for r in rows}
        assert by_nodes[10] == {
            "n_nodes": 10, "n_seeds": 1, "pdr_mean": 0.7, "pdr_ci95": 0.0,
        }
        assert by_nodes[20]["n_seeds"] == 3
        assert by_nodes[20]["pdr_mean"] == pytest.approx(0.9)
        assert by_nodes[20]["pdr_ci95"] == 0.0


class TestFailureHandling:
    @pytest.fixture()
    def failing_spec(self):
        @register_collector("fail_on_n14")
        def fail_on_n14(result):
            if result.config.n_nodes == 14:
                raise RuntimeError("boom at n_nodes=14")
            return {}

        return tiny_spec(seeds=(1,), collector="fail_on_n14")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_failure_reports_and_keeps_completed_runs(
        self, tmp_path, workers, failing_spec
    ):
        cache_dir = str(tmp_path / "cache")
        with pytest.raises(SweepError, match="1 of 2 runs failed.*n_nodes=14"):
            run_sweep(failing_spec, workers=workers, cache_dir=cache_dir)
        # the successful run was recorded and cached before the raise
        cached = [p for p in os.listdir(cache_dir) if p.endswith(".json")]
        assert len(cached) == 1


class TestCollectors:
    def test_e7_collector_adds_qos_metric(self):
        from repro.experiments.specs import get_spec

        spec = copy.deepcopy(get_spec("e7_qos_load"))
        spec.base = dataclasses.replace(
            spec.base, n_nodes=15, area_size=500.0, traffic_start=3.0
        )
        spec.grid = {"sources_per_group": [1]}
        spec.duration = 10.0
        (result,) = run_sweep(spec, workers=1)
        assert 0.0 <= result.metrics["qos_satisfaction"] <= 1.0


class TestCli:
    def test_list_names_every_spec(self, capsys):
        from repro.experiments.__main__ import main
        from repro.experiments.specs import SPECS

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SPECS:
            assert name in out

    def test_run_and_resume_smoke(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.__main__ import main
        from repro.experiments import specs

        monkeypatch.setitem(
            specs.SPECS, "smoke", dataclasses.replace(
                specs.get_spec("smoke"), grid={"n_nodes": [10]}, seeds=(1,), duration=8.0
            )
        )
        cache = str(tmp_path / "cache")
        out = str(tmp_path / "artifacts")
        args = ["smoke", "--cache-dir", cache, "--out", out, "--workers", "2"]
        assert main(["run"] + args) == 0
        assert os.path.exists(os.path.join(out, "smoke.csv"))
        assert os.path.exists(os.path.join(out, "smoke.json"))
        capsys.readouterr()

        assert main(["resume"] + args) == 0
        err = capsys.readouterr().err
        assert "1 cache hits" in err

        assert main(["export"] + args[:5]) == 0

    def test_resume_refuses_cold_cache(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        code = main(
            ["resume", "smoke", "--cache-dir", str(tmp_path / "nope"), "--out", str(tmp_path)]
        )
        assert code == 2
