"""End-to-end integration tests: full scenarios with mobility, traffic,
failures and baselines, exercising the public API exactly the way the
benchmarks and examples do."""

import dataclasses

import pytest

from repro.core.protocol import HVDB_PROTOCOL, HVDBConfig
from repro.core.qos import QoSRequirement
from repro.experiments.runner import run_scenario, sweep
from repro.experiments.scenarios import ScenarioConfig, build_scenario
from repro.metrics.availability import compute_availability
from repro.metrics.delivery import compute_delivery_metrics
from repro.metrics.fairness import compute_load_balance


BASE = ScenarioConfig(
    protocol=HVDB_PROTOCOL,
    n_nodes=70,
    area_size=1200.0,
    radio_range=250.0,
    max_speed=3.0,
    group_size=8,
    traffic_start=25.0,
    traffic_interval=1.0,
    hvdb=HVDBConfig(vc_cols=8, vc_rows=8, dimension=4),
    seed=11,
)


class TestHvdbEndToEnd:
    def test_hvdb_delivers_majority_of_packets(self):
        result = run_scenario(BASE, duration=80.0)
        delivery = result.report.delivery
        assert delivery.packets_originated >= 40
        assert delivery.delivery_ratio > 0.6
        assert 0.0 < delivery.mean_delay < 2.0

    def test_protocol_stats_are_consistent(self):
        result = run_scenario(BASE, duration=80.0)
        stats = result.report.protocol_stats
        assert stats["data_originated"] == result.report.delivery.packets_originated
        assert stats["local_membership_sent"] > 0
        assert stats["mnt_summaries_sent"] > 0
        assert stats["route_beacons_sent"] > 0
        assert stats["ht_summaries_broadcast"] > 0

    def test_backbone_carries_load_without_single_hotspot(self):
        result = run_scenario(BASE, duration=80.0)
        backbone = result.report.backbone_load_balance
        assert backbone is not None and backbone.node_count > 5
        # the paper's load-balancing claim: no single CH dominates
        assert backbone.jain > 0.3
        assert backbone.peak_to_mean_ratio < 8.0

    def test_flooding_vs_hvdb_data_transmissions(self):
        hvdb = run_scenario(BASE, duration=80.0)
        flood = run_scenario(
            dataclasses.replace(BASE, protocol="flooding"), duration=80.0
        )
        # flooding must transmit each packet once per node; HVDB's data-plane
        # cost per originated packet is far below that
        hvdb_cost = (
            hvdb.report.overhead.data_packets / hvdb.report.delivery.packets_originated
        )
        flood_cost = (
            flood.report.overhead.data_packets / flood.report.delivery.packets_originated
        )
        assert flood_cost > 0.8 * BASE.n_nodes
        assert hvdb_cost < 0.7 * flood_cost

    def test_qos_requirement_mostly_satisfied_in_modest_network(self):
        config = dataclasses.replace(
            BASE,
            hvdb=dataclasses.replace(
                BASE.hvdb, qos_requirements={1: QoSRequirement(max_delay=1.0)}
            ),
        )
        result = run_scenario(config, duration=80.0)
        delivery = result.report.delivery
        assert delivery.p95_delay < 1.0


class TestFailureInjection:
    def test_delivery_survives_partial_ch_failure(self):
        def kill_some_chs(scenario):
            backbone = scenario.stack.model.cluster_heads()
            victims = backbone[:: max(1, len(backbone) // 5)][:4]
            scenario.network.fail_nodes(victims)

        result = run_scenario(BASE, duration=100.0, during_run=kill_some_chs)
        availability = compute_availability(
            result.scenario.network, failure_time=50.0, failure_duration=20.0, window=10.0
        )
        # before the failure the protocol delivered something; afterwards it recovers
        assert availability.pre_failure_ratio > 0.5
        assert availability.post_failure_ratio > 0.4
        assert result.report.delivery.delivery_ratio > 0.4

    def test_clustering_replaces_failed_cluster_heads(self):
        scenario = build_scenario(BASE)
        scenario.start()
        scenario.network.simulator.run(30.0)
        before = set(scenario.stack.model.cluster_heads())
        victims = list(before)[:5]
        scenario.network.fail_nodes(victims)
        scenario.network.simulator.run(20.0)
        after = set(scenario.stack.model.cluster_heads())
        assert not (after & set(victims))
        assert after, "backbone must still exist after failures"


class TestMultiGroup:
    def test_two_groups_are_isolated(self):
        config = dataclasses.replace(BASE, n_groups=2, group_size=6, seed=21)
        result = run_scenario(config, duration=80.0)
        net = result.scenario.network
        g1 = compute_delivery_metrics(net, group=1)
        g2 = compute_delivery_metrics(net, group=2)
        assert g1.packets_originated > 0 and g2.packets_originated > 0
        # members of group 2 never appear as intended receivers of group 1 packets
        members2 = set(result.scenario.groups.members(2)) - set(
            result.scenario.groups.members(1)
        )
        for record in net.deliveries.values():
            if record.group == 1:
                assert not (record.intended & members2 - set(result.scenario.groups.members(1)))


class TestSweepsSmoke:
    def test_node_count_sweep_runs(self):
        results = sweep(
            dataclasses.replace(BASE, max_speed=0.0, traffic_interval=2.0),
            parameter="n_nodes",
            values=[40, 80],
            duration=60.0,
        )
        assert len(results) == 2
        for result in results:
            assert result.report.delivery.packets_originated > 0

    def test_dimension_sweep_runs(self):
        results = sweep(
            dataclasses.replace(BASE, traffic_interval=2.0),
            parameter="hvdb.dimension",
            values=[2, 4],
            duration=50.0,
        )
        assert [r.config.hvdb.dimension for r in results] == [2, 4]
        for result in results:
            assert 0.0 <= result.report.delivery.delivery_ratio <= 1.0
