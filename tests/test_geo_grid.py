"""Unit tests for the Virtual Circle grid (paper Figure 2)."""

import math

import pytest

from repro.geo.area import Area
from repro.geo.geometry import Point
from repro.geo.grid import VirtualCircleGrid


class TestGridConstruction:
    def test_figure2_grid_has_64_circles(self, small_area):
        grid = VirtualCircleGrid(small_area, 8, 8)
        assert len(grid) == 64
        assert len(grid.circles()) == 64

    def test_invalid_dimensions(self, small_area):
        with pytest.raises(ValueError):
            VirtualCircleGrid(small_area, 0, 8)
        with pytest.raises(ValueError):
            VirtualCircleGrid(small_area, 8, -1)

    def test_invalid_overlap(self, small_area):
        with pytest.raises(ValueError):
            VirtualCircleGrid(small_area, 8, 8, overlap_factor=0.9)

    def test_radius_covers_cell(self, small_area):
        grid = VirtualCircleGrid(small_area, 8, 8)
        # radius is half the cell diagonal -> corners of the cell are covered
        assert grid.radius == pytest.approx(0.5 * math.hypot(125.0, 125.0))

    def test_vcc_positions(self, small_area):
        grid = VirtualCircleGrid(small_area, 4, 4)
        assert grid.vcc((0, 0)) == Point(125.0, 125.0)
        assert grid.vcc((3, 3)) == Point(875.0, 875.0)


class TestLookup:
    def test_coord_of_home_cell(self, grid_8x8):
        assert grid_8x8.coord_of(Point(10.0, 10.0)) == (0, 0)
        assert grid_8x8.coord_of(Point(999.0, 999.0)) == (7, 7)
        assert grid_8x8.coord_of(Point(130.0, 260.0)) == (1, 2)

    def test_coord_of_clamps_outside_points(self, grid_8x8):
        assert grid_8x8.coord_of(Point(-50.0, 2000.0)) == (0, 7)

    def test_home_circle_contains_point(self, grid_8x8):
        p = Point(312.0, 440.0)
        assert grid_8x8.home_circle(p).contains(p)

    def test_every_point_covered_by_home_circle(self, grid_8x8):
        # sample a lattice of points; full coverage is the invariant that
        # lets every MN determine "the circle where it resides"
        for ix in range(0, 1001, 125):
            for iy in range(0, 1001, 125):
                p = Point(float(min(ix, 1000)), float(min(iy, 1000)))
                assert grid_8x8.home_circle(p).contains(p)

    def test_covering_coords_includes_home(self, grid_8x8):
        p = Point(437.0, 562.0)
        covering = grid_8x8.covering_coords(p)
        assert grid_8x8.coord_of(p) in covering

    def test_overlap_region_has_multiple_covering_circles(self, grid_8x8):
        # a point on a cell boundary lies in the overlap of several circles
        boundary_point = Point(125.0, 125.0)
        assert len(grid_8x8.covering_coords(boundary_point)) >= 2

    def test_circle_center_far_point_not_contained(self, grid_8x8):
        circle = grid_8x8.circle((0, 0))
        assert not circle.contains(Point(900.0, 900.0))


class TestNeighbors:
    def test_interior_four_neighbors(self, grid_8x8):
        assert sorted(grid_8x8.neighbors((3, 3))) == [(2, 3), (3, 2), (3, 4), (4, 3)]

    def test_corner_two_neighbors(self, grid_8x8):
        assert sorted(grid_8x8.neighbors((0, 0))) == [(0, 1), (1, 0)]

    def test_diagonal_neighbors(self, grid_8x8):
        assert len(grid_8x8.neighbors((3, 3), diagonal=True)) == 8
        assert len(grid_8x8.neighbors((0, 0), diagonal=True)) == 3

    def test_neighbors_outside_raises(self, grid_8x8):
        with pytest.raises(KeyError):
            grid_8x8.neighbors((8, 0))

    def test_manhattan(self, grid_8x8):
        assert grid_8x8.manhattan((0, 0), (3, 4)) == 7
        assert grid_8x8.manhattan((5, 5), (5, 5)) == 0


class TestSpatialHash:
    def test_candidates_cover_everything_within_cell_radius(self):
        import random

        from repro.geo.geometry import distance
        from repro.geo.grid import SpatialHash

        rng = random.Random(7)
        points = {i: Point(rng.uniform(0, 100), rng.uniform(0, 100)) for i in range(200)}
        index = SpatialHash(12.0)
        for i, p in points.items():
            index.insert(i, p)
        assert len(index) == 200
        for i, p in points.items():
            candidates = set(index.candidates(p))
            assert i in candidates  # own cell is probed
            for j, q in points.items():
                if distance(p, q) < 12.0:
                    assert j in candidates

    def test_candidate_order_is_deterministic(self):
        from repro.geo.grid import SpatialHash

        def build():
            index = SpatialHash(10.0)
            for i, p in enumerate(
                [Point(1, 1), Point(2, 2), Point(15, 1), Point(3, 3)]
            ):
                index.insert(i, p)
            return list(index.candidates(Point(2, 2)))

        first = build()
        assert first == build()
        # bucket contents come back in insertion order
        assert [i for i in first if i in (0, 1, 3)] == [0, 1, 3]

    def test_zero_cell_size_is_floored(self):
        from repro.geo.grid import SpatialHash

        index = SpatialHash(0.0)
        index.insert("a", Point(0.5, 0.5))
        assert index.cell > 0
        assert list(index.candidates(Point(0.5, 0.5))) == ["a"]

    def test_negative_coordinates_bin_correctly(self):
        from repro.geo.grid import SpatialHash

        index = SpatialHash(10.0)
        index.insert("neg", Point(-5.0, -5.0))
        index.insert("origin", Point(1.0, 1.0))
        assert set(index.candidates(Point(-1.0, -1.0))) == {"neg", "origin"}
