"""Unit tests for the GPS-like location service."""

import random

import pytest

from repro.geo.geometry import Point, Vector
from repro.geo.location_service import LocationError, LocationService


class TestLocationService:
    def test_query_without_record_raises(self):
        service = LocationService()
        with pytest.raises(LocationError):
            service.query(0.0)

    def test_ground_truth_reported(self):
        service = LocationService()
        service.record(Point(10.0, 20.0), Vector(1.0, 0.0), now=5.0)
        sample = service.query(now=5.0)
        assert sample.position == Point(10.0, 20.0)
        assert sample.velocity == Vector(1.0, 0.0)
        assert sample.timestamp == 5.0

    def test_last_known(self):
        service = LocationService()
        assert service.last_known() is None
        service.record(Point(1.0, 1.0), Vector(0.0, 0.0), now=1.0)
        service.record(Point(2.0, 2.0), Vector(0.0, 0.0), now=2.0)
        assert service.last_known().position == Point(2.0, 2.0)

    def test_staleness_returns_old_fix(self):
        service = LocationService(staleness=5.0)
        service.record(Point(0.0, 0.0), Vector(1.0, 0.0), now=0.0)
        service.record(Point(10.0, 0.0), Vector(1.0, 0.0), now=10.0)
        sample = service.query(now=12.0)
        # 12 - 5 = 7 -> most recent sample not newer than t=7 is the t=0 one
        assert sample.position == Point(0.0, 0.0)

    def test_staleness_before_history_returns_oldest(self):
        service = LocationService(staleness=100.0)
        service.record(Point(3.0, 3.0), Vector(0.0, 0.0), now=10.0)
        assert service.query(now=20.0).position == Point(3.0, 3.0)

    def test_gaussian_error_applied(self):
        rng = random.Random(0)
        service = LocationService(position_error_std=5.0, rng=rng)
        service.record(Point(100.0, 100.0), Vector(0.0, 0.0), now=0.0)
        samples = [service.query(0.0).position for _ in range(200)]
        xs = [p.x for p in samples]
        # errors average out near the true position but individual samples differ
        assert abs(sum(xs) / len(xs) - 100.0) < 2.0
        assert any(abs(x - 100.0) > 1.0 for x in xs)

    def test_error_requires_rng(self):
        with pytest.raises(ValueError):
            LocationService(position_error_std=1.0)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            LocationService(position_error_std=-1.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            LocationService(staleness=-0.5)

    def test_history_bounded(self):
        service = LocationService()
        for i in range(500):
            service.record(Point(float(i), 0.0), Vector(0.0, 0.0), now=float(i))
        assert len(service._history) <= 64
        assert service.query(now=499.0).position == Point(499.0, 0.0)
