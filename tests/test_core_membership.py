"""Unit tests for summary-based membership update (paper Figure 5)."""

import pytest

from repro.core.membership import (
    BroadcasterCriterion,
    HTSummary,
    LocalMembership,
    MNTSummary,
    MTSummary,
    select_designated_broadcaster,
)


class TestLocalMembership:
    def test_join_leave(self):
        lm = LocalMembership(5)
        lm.join(1)
        lm.join(2)
        lm.leave(1)
        assert lm.groups == {2}
        assert lm.is_member(2)
        assert not lm.is_member(1)

    def test_leave_nonmember_noop(self):
        lm = LocalMembership(5, {1})
        lm.leave(9)
        assert lm.groups == {1}

    def test_serialized_size_grows_with_groups(self):
        small = LocalMembership(5, {1})
        large = LocalMembership(5, {1, 2, 3, 4})
        assert large.serialized_size() > small.serialized_size()

    def test_payload(self):
        lm = LocalMembership(5, {3, 1})
        assert lm.as_payload() == {"node": 5, "groups": [1, 3]}


class TestMNTSummary:
    def test_from_local_reports_counts_members(self):
        reports = [
            LocalMembership(1, {10, 20}),
            LocalMembership(2, {10}),
            LocalMembership(3, set()),
        ]
        summary = MNTSummary.from_local_reports(99, hnid=5, hid=1, reports=reports)
        assert summary.counts == {10: 2, 20: 1}
        assert summary.groups() == {10, 20}
        assert summary.member_total() == 3
        assert summary.has_members(10)
        assert not summary.has_members(99)

    def test_empty_reports(self):
        summary = MNTSummary.from_local_reports(99, 5, 1, [])
        assert summary.counts == {}
        assert summary.groups() == set()
        assert summary.member_total() == 0

    def test_payload_roundtrip(self):
        summary = MNTSummary(ch_node_id=7, hnid=3, hid=2, counts={1: 4, 9: 1})
        restored = MNTSummary.from_payload(summary.as_payload())
        assert restored.ch_node_id == 7
        assert restored.hnid == 3
        assert restored.hid == 2
        assert restored.counts == {1: 4, 9: 1}

    def test_serialized_size(self):
        a = MNTSummary(1, 0, 0, counts={})
        b = MNTSummary(1, 0, 0, counts={1: 1, 2: 1, 3: 1})
        assert b.serialized_size() > a.serialized_size()


class TestHTSummary:
    def test_from_mnt_summaries(self):
        summaries = [
            MNTSummary(1, hnid=0, hid=0, counts={10: 2}),
            MNTSummary(2, hnid=3, hid=0, counts={10: 1, 20: 1}),
            MNTSummary(3, hnid=5, hid=1, counts={30: 1}),   # different hypercube, ignored
        ]
        ht = HTSummary.from_mnt_summaries(0, summaries)
        assert ht.hnids_for(10) == {0, 3}
        assert ht.hnids_for(20) == {3}
        assert ht.hnids_for(30) == set()
        assert ht.groups() == {10, 20}
        assert ht.has_group(10)
        assert not ht.has_group(30)

    def test_zero_count_groups_excluded(self):
        summaries = [MNTSummary(1, hnid=0, hid=0, counts={10: 0})]
        ht = HTSummary.from_mnt_summaries(0, summaries)
        assert ht.groups() == set()

    def test_merge_union(self):
        a = HTSummary(0, {1: {0, 2}})
        b = HTSummary(0, {1: {3}, 2: {5}})
        merged = a.merge(b)
        assert merged.hnids_for(1) == {0, 2, 3}
        assert merged.hnids_for(2) == {5}
        # merge does not mutate the operands
        assert a.hnids_for(1) == {0, 2}

    def test_merge_is_idempotent(self):
        a = HTSummary(0, {1: {0, 2}})
        merged = a.merge(a)
        assert merged.members_by_group == a.members_by_group

    def test_merge_different_hids_rejected(self):
        with pytest.raises(ValueError):
            HTSummary(0).merge(HTSummary(1))

    def test_payload_roundtrip(self):
        ht = HTSummary(2, {7: {1, 3}, 9: {0}})
        restored = HTSummary.from_payload(ht.as_payload())
        assert restored.hid == 2
        assert restored.hnids_for(7) == {1, 3}
        assert restored.hnids_for(9) == {0}

    def test_serialized_size(self):
        small = HTSummary(0, {1: {0}})
        large = HTSummary(0, {1: {0}, 2: {1}, 3: {2}})
        assert large.serialized_size() > small.serialized_size()


class TestMTSummary:
    def test_update_from_ht_adds_mesh_nodes(self):
        mt = MTSummary()
        mt.update_from_ht(HTSummary(0, {1: {0, 3}}), mesh_coord=(0, 0))
        mt.update_from_ht(HTSummary(1, {1: {5}, 2: {7}}), mesh_coord=(1, 0))
        assert mt.mesh_nodes_for(1) == {(0, 0), (1, 0)}
        assert mt.mesh_nodes_for(2) == {(1, 0)}
        assert mt.groups() == {1, 2}

    def test_update_replaces_stale_entry(self):
        mt = MTSummary()
        mt.update_from_ht(HTSummary(0, {1: {0}}), mesh_coord=(0, 0))
        # a newer HT-Summary from the same hypercube no longer lists group 1
        mt.update_from_ht(HTSummary(0, {2: {3}}), mesh_coord=(0, 0))
        assert mt.mesh_nodes_for(1) == set()
        assert mt.mesh_nodes_for(2) == {(0, 0)}
        assert mt.groups() == {2}

    def test_update_keeps_other_mesh_nodes(self):
        mt = MTSummary()
        mt.update_from_ht(HTSummary(0, {1: {0}}), mesh_coord=(0, 0))
        mt.update_from_ht(HTSummary(1, {1: {2}}), mesh_coord=(1, 0))
        mt.update_from_ht(HTSummary(0, {}), mesh_coord=(0, 0))
        assert mt.mesh_nodes_for(1) == {(1, 0)}

    def test_serialized_size(self):
        mt = MTSummary()
        empty_size = mt.serialized_size()
        mt.update_from_ht(HTSummary(0, {1: {0}, 2: {1}}), mesh_coord=(0, 0))
        assert mt.serialized_size() > empty_size


class TestDesignatedBroadcaster:
    def summaries(self):
        return {
            0: MNTSummary(10, hnid=0, hid=0, counts={1: 1}),
            1: MNTSummary(11, hnid=1, hid=0, counts={1: 3, 2: 1}),
            3: MNTSummary(13, hnid=3, hid=0, counts={2: 2}),
        }

    def test_fixed_criterion_smallest_hnid(self):
        assert select_designated_broadcaster(self.summaries(), BroadcasterCriterion.FIXED) == 0

    def test_most_groups(self):
        assert (
            select_designated_broadcaster(self.summaries(), BroadcasterCriterion.MOST_GROUPS) == 1
        )

    def test_most_members(self):
        assert (
            select_designated_broadcaster(self.summaries(), BroadcasterCriterion.MOST_MEMBERS) == 1
        )

    def test_neighborhood_members(self):
        neighbors = {0: [1, 3], 1: [0, 3], 3: [0, 1]}
        # every CH sees the same totals here, so the smallest HNID wins the tie;
        # with an asymmetric neighbourhood the criterion differentiates
        assert (
            select_designated_broadcaster(
                self.summaries(), BroadcasterCriterion.NEIGHBORHOOD_MEMBERS, neighbors
            )
            == 0
        )
        sparse_neighbors = {0: [], 1: [3], 3: [1]}
        assert (
            select_designated_broadcaster(
                self.summaries(), BroadcasterCriterion.NEIGHBORHOOD_MEMBERS, sparse_neighbors
            )
            == 1
        )

    def test_neighborhood_requires_neighbor_map(self):
        with pytest.raises(ValueError):
            select_designated_broadcaster(
                self.summaries(), BroadcasterCriterion.NEIGHBORHOOD_MEMBERS
            )

    def test_empty_summaries(self):
        assert select_designated_broadcaster({}, BroadcasterCriterion.FIXED) is None

    def test_deterministic_tiebreak(self):
        summaries = {
            2: MNTSummary(1, hnid=2, hid=0, counts={1: 1}),
            5: MNTSummary(2, hnid=5, hid=0, counts={2: 1}),
        }
        assert (
            select_designated_broadcaster(summaries, BroadcasterCriterion.MOST_MEMBERS) == 2
        )
