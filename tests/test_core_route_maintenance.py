"""Unit tests for proactive local logical route maintenance (paper Figure 4)."""

import pytest

from repro.core.route_maintenance import LinkQoS, LogicalRoute, LogicalRouteTable


def qos(delay=0.01, bandwidth=1e6, at=0.0):
    return LinkQoS(delay=delay, bandwidth=bandwidth, measured_at=at)


class TestLinkQoS:
    def test_combination_adds_delay_takes_min_bandwidth(self):
        combined = qos(0.01, 2e6, at=5.0).combined_with(qos(0.02, 1e6, at=3.0))
        assert combined.delay == pytest.approx(0.03)
        assert combined.bandwidth == pytest.approx(1e6)
        assert combined.measured_at == 3.0


class TestLogicalRoute:
    def test_destination_and_hops(self):
        route = LogicalRoute(path=(0, 1, 3), qos=qos())
        assert route.destination == 3
        assert route.logical_hops == 2

    def test_extended(self):
        route = LogicalRoute(path=(0, 1), qos=qos(0.01, 2e6))
        longer = route.extended(3, qos(0.02, 1e6))
        assert longer.path == (0, 1, 3)
        assert longer.qos.delay == pytest.approx(0.03)
        assert longer.qos.bandwidth == pytest.approx(1e6)


class TestRouteTable:
    def test_direct_neighbor_creates_one_hop_route(self):
        table = LogicalRouteTable(own_hnid=0)
        table.update_neighbor(1, qos())
        best = table.best_route(1)
        assert best is not None
        assert best.path == (0, 1)
        assert best.logical_hops == 1

    def test_self_neighbor_rejected(self):
        table = LogicalRouteTable(own_hnid=0)
        with pytest.raises(ValueError):
            table.update_neighbor(0, qos())

    def test_advertisement_integration_builds_multihop_routes(self):
        # the paper's example: routes of CH 1000 include the 2-logical-hop
        # route 1000 -> 1100 -> 1101
        table = LogicalRouteTable(own_hnid=0b1000)
        table.update_neighbor(0b1100, qos(0.01))
        advertised = [LogicalRoute(path=(0b1100, 0b1101), qos=qos(0.02))]
        accepted = table.integrate_advertisement(0b1100, advertised, now=0.0)
        assert accepted == 1
        route = table.best_route(0b1101)
        assert route.path == (0b1000, 0b1100, 0b1101)
        assert route.logical_hops == 2
        assert route.qos.delay == pytest.approx(0.03)

    def test_advertisement_from_unknown_neighbor_ignored(self):
        table = LogicalRouteTable(own_hnid=0)
        accepted = table.integrate_advertisement(
            1, [LogicalRoute(path=(1, 3), qos=qos())], now=0.0
        )
        assert accepted == 0
        assert table.destinations() == []

    def test_looping_routes_rejected(self):
        table = LogicalRouteTable(own_hnid=0)
        table.update_neighbor(1, qos())
        looping = [LogicalRoute(path=(1, 0), qos=qos()), LogicalRoute(path=(1, 3, 0), qos=qos())]
        assert table.integrate_advertisement(1, looping, now=0.0) == 0

    def test_hop_bound_enforced(self):
        table = LogicalRouteTable(own_hnid=0, max_logical_hops=2)
        table.update_neighbor(1, qos())
        too_long = [LogicalRoute(path=(1, 3, 7), qos=qos())]   # would be 3 hops from 0
        assert table.integrate_advertisement(1, too_long, now=0.0) == 0
        ok = [LogicalRoute(path=(1, 3), qos=qos())]
        assert table.integrate_advertisement(1, ok, now=0.0) == 1

    def test_multiple_routes_per_destination_kept_sorted(self):
        table = LogicalRouteTable(own_hnid=0, routes_per_destination=2)
        table.update_neighbor(1, qos(0.01))
        table.update_neighbor(2, qos(0.02))
        table.integrate_advertisement(1, [LogicalRoute(path=(1, 3), qos=qos(0.01))], now=0.0)
        table.integrate_advertisement(2, [LogicalRoute(path=(2, 3), qos=qos(0.05))], now=0.0)
        routes = table.routes_to(3)
        assert len(routes) == 2
        assert routes[0].qos.delay <= routes[1].qos.delay
        # the two routes are node-disjoint alternatives through different neighbours
        assert {r.path[1] for r in routes} == {1, 2}

    def test_routes_per_destination_cap(self):
        table = LogicalRouteTable(own_hnid=0, routes_per_destination=1)
        table.update_neighbor(1, qos(0.01))
        table.update_neighbor(2, qos(0.02))
        table.integrate_advertisement(1, [LogicalRoute(path=(1, 3), qos=qos(0.01))], now=0.0)
        table.integrate_advertisement(2, [LogicalRoute(path=(2, 3), qos=qos(0.05))], now=0.0)
        assert len(table.routes_to(3)) == 1

    def test_refresh_replaces_same_path(self):
        table = LogicalRouteTable(own_hnid=0)
        table.update_neighbor(1, qos(0.01, at=0.0))
        table.update_neighbor(1, qos(0.05, at=10.0))
        routes = table.routes_to(1)
        assert len(routes) == 1
        assert routes[0].qos.delay == pytest.approx(0.05)

    def test_remove_neighbor_drops_dependent_routes(self):
        table = LogicalRouteTable(own_hnid=0)
        table.update_neighbor(1, qos())
        table.update_neighbor(2, qos())
        table.integrate_advertisement(1, [LogicalRoute(path=(1, 3), qos=qos())], now=0.0)
        table.integrate_advertisement(2, [LogicalRoute(path=(2, 3), qos=qos())], now=0.0)
        table.remove_neighbor(1)
        assert table.neighbor_hnids() == [2]
        remaining = table.routes_to(3)
        assert all(r.path[1] == 2 for r in remaining)
        assert table.best_route(1) is None

    def test_prune_expired(self):
        table = LogicalRouteTable(own_hnid=0, expiry=5.0)
        table.update_neighbor(1, qos(at=0.0))
        assert table.prune_expired(now=10.0) == 1
        assert table.best_route(1) is None

    def test_advertisement_one_route_per_destination(self):
        table = LogicalRouteTable(own_hnid=0, routes_per_destination=3)
        table.update_neighbor(1, qos(0.01))
        table.update_neighbor(2, qos(0.02))
        table.integrate_advertisement(1, [LogicalRoute(path=(1, 3), qos=qos())], now=0.0)
        table.integrate_advertisement(2, [LogicalRoute(path=(2, 3), qos=qos())], now=0.0)
        adv = table.advertisement()
        destinations = [r.destination for r in adv]
        assert len(destinations) == len(set(destinations))
        assert set(destinations) == {1, 2, 3}

    def test_next_hop_chid(self):
        table = LogicalRouteTable(own_hnid=0)
        table.update_neighbor(1, qos())
        table.integrate_advertisement(1, [LogicalRoute(path=(1, 3), qos=qos())], now=0.0)
        chid_lookup = {1: 101, 3: 103}
        assert table.next_hop_chid(3, chid_lookup) == 101
        assert table.next_hop_chid(9, chid_lookup) is None

    def test_route_count_and_all_routes(self):
        table = LogicalRouteTable(own_hnid=0)
        table.update_neighbor(1, qos())
        table.update_neighbor(2, qos())
        assert table.route_count() == 2
        assert len(table.all_routes()) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LogicalRouteTable(own_hnid=0, max_logical_hops=0)
        with pytest.raises(ValueError):
            LogicalRouteTable(own_hnid=0, routes_per_destination=0)
