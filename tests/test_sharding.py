"""Tests of sweep-level sharding, spec validation and cache merging.

Covers the invariants CI sharding rests on: every run lands in exactly
one shard, the shards' union is the full stable expansion order, a merged
shard cache reproduces an unsharded run byte-for-byte, merging is
idempotent, and misconfigured specs/shards fail loudly instead of
expanding to a silent empty grid.
"""

import dataclasses
import os

import pytest

from repro.core.protocol import HVDBParameters
from repro.experiments.orchestrator import (
    SpecError,
    SweepSpec,
    expand_spec,
    merge_caches,
    parse_shard,
    run_sweep,
    shard_runs,
)
from repro.experiments.scenarios import ScenarioConfig


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        base=ScenarioConfig(
            protocol="flooding",
            n_nodes=12,
            area_size=500.0,
            radio_range=250.0,
            max_speed=2.0,
            group_size=4,
            traffic_start=3.0,
            traffic_interval=2.0,
        ),
        grid={"n_nodes": [10, 14]},
        seeds=(1, 2),
        duration=10.0,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestParseShard:
    def test_valid(self):
        assert parse_shard("1/1") == (1, 1)
        assert parse_shard("2/3") == (2, 3)
        assert parse_shard(" 3 / 3 ") == (3, 3)

    @pytest.mark.parametrize("text", ["", "2", "2/", "/3", "a/b", "2-3", "1/2/3"])
    def test_malformed(self, text):
        with pytest.raises(SpecError, match="INDEX/COUNT"):
            parse_shard(text)

    @pytest.mark.parametrize("text", ["0/3", "4/3", "1/0"])
    def test_out_of_range(self, text):
        with pytest.raises(SpecError):
            parse_shard(text)


class TestShardPartitioning:
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 20])
    def test_every_run_in_exactly_one_shard(self, count):
        runs = expand_spec(tiny_spec(grid={"n_nodes": [10, 12, 14]}, seeds=(1, 2)))
        shards = [shard_runs(runs, i, count) for i in range(1, count + 1)]
        ids = [r.run_id for shard in shards for r in shard]
        assert sorted(ids) == sorted(r.run_id for r in runs)
        assert len(ids) == len(set(ids)) == len(runs)

    def test_union_preserves_expansion_order(self):
        runs = expand_spec(tiny_spec(grid={"n_nodes": [10, 12, 14]}, seeds=(1, 2)))
        count = 3
        shards = [shard_runs(runs, i, count) for i in range(1, count + 1)]
        # round-robin: run j sits at position j // count of shard j % count + 1
        for j, run in enumerate(runs):
            assert shards[j % count][j // count] is run

    def test_shards_are_deterministic(self):
        a = shard_runs(expand_spec(tiny_spec()), 2, 3)
        b = shard_runs(expand_spec(tiny_spec()), 2, 3)
        assert [r.run_id for r in a] == [r.run_id for r in b]

    def test_count_beyond_runs_gives_empty_tail_shards(self):
        runs = expand_spec(tiny_spec(seeds=(1,)))  # 2 runs
        assert shard_runs(runs, 3, 5) == []
        all_ids = [r.run_id for i in range(1, 6) for r in shard_runs(runs, i, 5)]
        assert sorted(all_ids) == sorted(r.run_id for r in runs)

    def test_index_out_of_range_raises(self):
        runs = expand_spec(tiny_spec())
        with pytest.raises(SpecError, match="out of range"):
            shard_runs(runs, 4, 3)
        with pytest.raises(SpecError, match="out of range"):
            shard_runs(runs, 0, 3)


class TestSpecValidation:
    def test_empty_axis_raises(self):
        with pytest.raises(SpecError, match="axis 'n_nodes' of sweep 'tiny' has no values"):
            expand_spec(tiny_spec(grid={"n_nodes": []}))

    def test_empty_seeds_raises(self):
        with pytest.raises(SpecError, match="no replication seeds"):
            expand_spec(tiny_spec(seeds=()))

    def test_unknown_axis_raises(self):
        with pytest.raises(SpecError, match="'n_node'"):
            expand_spec(tiny_spec(grid={"n_node": [10]}))

    def test_unknown_override_key_in_dict_axis_raises(self):
        with pytest.raises(SpecError, match="'radio_rnge'"):
            expand_spec(
                tiny_spec(grid={"n_nodes": [{"n_nodes": 10, "radio_rnge": 9.0}]})
            )

    def test_runner_sweep_rejects_empty_values(self):
        from repro.experiments.runner import sweep

        with pytest.raises(SpecError, match="no values"):
            sweep(tiny_spec().base, parameter="n_nodes", values=[])

    def test_run_sweep_surfaces_spec_errors(self):
        with pytest.raises(SpecError):
            run_sweep(tiny_spec(grid={"n_nodes": []}))

    def test_run_sweep_rejects_unregistered_hooks_eagerly(self, tmp_path):
        # a typo'd hook must fail before any run executes, not per-run
        # inside the workers after the rest of the grid burned its budget
        cache_dir = str(tmp_path / "cache")
        spec = tiny_spec(seeds=(1,), during_run="no_such_hook")
        with pytest.raises(SpecError, match="no_such_hook"):
            run_sweep(spec, workers=1, cache_dir=cache_dir)
        # validation fires before the cache is even created, let alone written
        assert not os.path.exists(cache_dir)

    def test_run_sweep_rejects_unregistered_hook_axis_value(self):
        spec = tiny_spec(grid={"during_run": ["also_missing"]}, seeds=(1,))
        with pytest.raises(SpecError, match="also_missing"):
            run_sweep(spec, workers=1)


class TestHookAndLabelAxes:
    def test_hook_axis_overrides_runspec_hook(self):
        spec = tiny_spec(grid={"during_run": ["hook_a", "hook_b"]}, seeds=(1,))
        runs = expand_spec(spec)
        assert [r.during_run for r in runs] == ["hook_a", "hook_b"]
        assert [r.params for r in runs] == [
            {"during_run": "hook_a"},
            {"during_run": "hook_b"},
        ]
        # the hook is part of the outcome, so the cache must distinguish
        assert runs[0].cache_key() != runs[1].cache_key()

    def test_hook_axis_defaults_to_spec_level_hook(self):
        spec = tiny_spec(before_run="warmup", seeds=(1,))
        (run_a, ) = expand_spec(dataclasses.replace(spec, grid={}))
        assert run_a.before_run == "warmup"

    def test_label_axis_records_only_the_label(self):
        params_obj = HVDBParameters(max_logical_hops=2)
        spec = tiny_spec(
            grid={"variant": [{"variant": "k2", "hvdb.params": params_obj}]},
            seeds=(1,),
        )
        (run,) = expand_spec(spec)
        assert run.params == {"variant": "k2"}
        assert run.config.hvdb.params is params_obj
        assert run.run_id == "tiny/variant=k2/seed=1"

    def test_label_axis_distinguishes_cache_keys(self):
        spec = tiny_spec(
            grid={
                "variant": [
                    {"variant": "k2", "hvdb.params": HVDBParameters(max_logical_hops=2)},
                    {"variant": "k6", "hvdb.params": HVDBParameters(max_logical_hops=6)},
                ]
            },
            seeds=(1,),
        )
        a, b = expand_spec(spec)
        assert a.cache_key() != b.cache_key()

    def test_coupled_config_axis_keeps_all_params(self):
        # pre-existing behaviour: no label key -> every override is a param
        spec = tiny_spec(
            grid={"n_nodes": [{"n_nodes": 10, "area_size": 400.0}]}, seeds=(1,)
        )
        (run,) = expand_spec(spec)
        assert run.params == {"n_nodes": 10, "area_size": 400.0}


class TestShardedExecution:
    def test_shards_cover_grid_once_and_merge_matches_unsharded(self, tmp_path):
        spec = tiny_spec()
        reference = run_sweep(spec, workers=1)

        shard_dirs = []
        executed = 0
        for index in (1, 2, 3):
            shard_dir = str(tmp_path / f"shard{index}")
            shard_dirs.append(shard_dir)
            results = run_sweep(spec, workers=1, cache_dir=shard_dir, shard=(index, 3))
            assert all(not r.from_cache for r in results)
            executed += len(results)
        assert executed == spec.run_count

        merged_dir = str(tmp_path / "merged")
        copied, skipped = merge_caches(shard_dirs, merged_dir)
        assert (copied, skipped) == (spec.run_count, 0)

        merged = run_sweep(spec, workers=1, cache_dir=merged_dir)
        assert all(r.from_cache for r in merged)
        assert [r.run_id for r in merged] == [r.run_id for r in reference]
        assert [r.metrics for r in merged] == [r.metrics for r in reference]

    def test_merge_is_idempotent(self, tmp_path):
        spec = tiny_spec(seeds=(1,))
        shard_dir = str(tmp_path / "shard")
        run_sweep(spec, workers=1, cache_dir=shard_dir, shard=(1, 1))
        merged_dir = str(tmp_path / "merged")
        first = merge_caches([shard_dir], merged_dir)
        assert first == (spec.run_count, 0)
        again = merge_caches([shard_dir], merged_dir)
        assert again == (0, spec.run_count)

    def test_merge_missing_source_raises(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            merge_caches([str(tmp_path / "nope")], str(tmp_path / "merged"))


class TestCliSharding:
    @pytest.fixture()
    def tiny_smoke(self, monkeypatch):
        from repro.experiments import specs

        monkeypatch.setitem(
            specs.SPECS,
            "smoke",
            dataclasses.replace(
                specs.get_spec("smoke"), grid={"n_nodes": [10, 12]}, seeds=(1,), duration=8.0
            ),
        )
        return specs.get_spec("smoke")

    def test_sharded_cli_runs_merge_to_identical_artifacts(
        self, tmp_path, capsys, tiny_smoke
    ):
        from repro.experiments.__main__ import main

        ref_out = str(tmp_path / "ref")
        assert (
            main(
                ["run", "smoke", "--cache-dir", str(tmp_path / "ref-cache"),
                 "--out", ref_out, "--workers", "1"]
            )
            == 0
        )
        shard_dirs = []
        for index in (1, 2):
            shard_dir = str(tmp_path / f"shard{index}")
            shard_dirs.append(shard_dir)
            code = main(
                ["run", "smoke", "--shard", f"{index}/2", "--cache-dir", shard_dir,
                 "--out", str(tmp_path / "s"), "--format", "none", "--workers", "1"]
            )
            assert code == 0
        merged_out = str(tmp_path / "merged-out")
        args = ["merge", "smoke", "--cache-dir", str(tmp_path / "merged"),
                "--out", merged_out]
        for shard_dir in shard_dirs:
            args += ["--from", shard_dir]
        assert main(args) == 0
        capsys.readouterr()

        with open(os.path.join(ref_out, "smoke.csv"), "rb") as fh:
            reference_csv = fh.read()
        with open(os.path.join(merged_out, "smoke.csv"), "rb") as fh:
            merged_csv = fh.read()
        assert reference_csv == merged_csv

        # merging again changes nothing
        assert main(args) == 0
        capsys.readouterr()
        with open(os.path.join(merged_out, "smoke.csv"), "rb") as fh:
            assert fh.read() == merged_csv

    def test_cli_merge_incomplete_cache_fails(self, tmp_path, capsys, tiny_smoke):
        from repro.experiments.__main__ import main

        shard_dir = str(tmp_path / "shard1")
        assert (
            main(
                ["run", "smoke", "--shard", "1/2", "--cache-dir", shard_dir,
                 "--out", str(tmp_path / "s"), "--format", "none", "--workers", "1"]
            )
            == 0
        )
        code = main(
            ["merge", "smoke", "--cache-dir", str(tmp_path / "merged"),
             "--from", shard_dir, "--out", str(tmp_path / "m")]
        )
        assert code == 1
        assert "missing" in capsys.readouterr().err

    def test_cli_rejects_bad_shard(self, tiny_smoke, capsys):
        from repro.experiments.__main__ import main

        assert main(["run", "smoke", "--shard", "4/3", "--format", "none"]) == 2
        assert "out of range" in capsys.readouterr().err
